"""Repo-specific static analysis: paper-level contracts as lint rules.

The engine's CI gates compare *operation counts* and rest on conventions
nothing in the language enforces: every tuple loop must charge an
:class:`~repro.joins.instrumentation.OperationCounter`, every dispatch
axis must reach the plan-cache key, semirings must honor the ring
protocol IVM deletes depend on, the layer DAG must stay acyclic, and
observability must stay a null-object pattern.  This package turns those
conventions into machine-checked invariants: one AST parse per file,
checkers as visitor plugins, inline suppressions with a required reason,
a baseline file for grandfathered findings, and human/JSON output with
stable exit codes.

Run it as ``python -m tools.analysis`` from the repository root.
"""

from tools.analysis.core import (  # noqa: F401
    AnalysisDriver,
    Checker,
    FileContext,
    Finding,
    Project,
    load_baseline,
)
