"""Rule ``layering``: the import DAG of src/repro, on two axes.

**Internal axis** — a module may import only from its own layer or lower
ones (``layers.toml`` lists layers lowest-first; longest module prefix
wins).  Upward imports are findings even when lazy (inside a function):
a lazy upward edge is sometimes the right call — the engine's
``subscribe`` pulls in :mod:`repro.ivm` lazily because subscriptions
re-enter ``execute`` — but each such edge must carry an inline
suppression with its reason, so the DAG's exceptions stay enumerable.

**Numeric axis** — only layers flagged ``numeric = true`` may import
numpy/scipy, on any line.  This is the static half of the no-numpy-in-
core contract; the runtime half (``tools/check_no_numpy_in_core.py``)
stays, because only it proves the lazy imports are never *executed* on
the core paths.

Imports under ``if TYPE_CHECKING:`` are exempt on both axes: they are
erased at runtime and exist for the type checker.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.analysis.core import Checker, FileContext, Finding
from tools.analysis.layers import LayerConfig

#: Top-level third-party packages the numeric axis polices.
NUMERIC_STACK = ("numpy", "scipy")


class LayeringChecker(Checker):
    rule = "import-layering"
    contract = ("imports follow the layer DAG in layers.toml; "
                "numpy/scipy only in numeric layers")

    def __init__(self, config: LayerConfig,
                 internal_root: str = "repro") -> None:
        self.config = config
        self.internal_root = internal_root

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        source_layer = self.config.layer_of(ctx.module_name)
        if source_layer is None:
            return  # outside the DAG (tools, tests, fixtures)
        lazy_lines = ctx.lazy_import_lines()
        type_checking = _type_checking_lines(ctx.tree)

        for node, target in self._import_targets(ctx):
            if node.lineno in type_checking:
                continue
            lazy = node.lineno in lazy_lines
            tag = " (lazy)" if lazy else ""

            root = target.split(".", 1)[0]
            if root in NUMERIC_STACK:
                if not source_layer.numeric:
                    yield Finding(
                        rule=self.rule, path=ctx.relpath, line=node.lineno,
                        message=(f"layer '{source_layer.name}' imports "
                                 f"{target}{tag}; the numeric stack is "
                                 "allowed only in numeric layers"),
                    )
                continue
            if root != self.internal_root:
                continue

            target_layer = self.config.layer_of(target)
            if target_layer is None:
                yield Finding(
                    rule=self.rule, path=ctx.relpath, line=node.lineno,
                    message=(f"imports {target}, which is assigned to no "
                             "layer in layers.toml"),
                )
            elif target_layer.rank > source_layer.rank:
                yield Finding(
                    rule=self.rule, path=ctx.relpath, line=node.lineno,
                    message=(f"layer '{source_layer.name}' imports {target} "
                             f"from higher layer '{target_layer.name}'"
                             f"{tag}"),
                )

    def _import_targets(self, ctx: FileContext
                        ) -> Iterator[tuple[ast.stmt, str]]:
        """(node, dotted target module) for every import statement.

        ``from X import y`` refines to ``X.y`` when the config assigns
        ``X.y`` more specifically than ``X`` — that is what lets
        ``repro.joins.instrumentation`` live below ``repro.joins``.
        """
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(ctx, node)
                if base is None:
                    continue
                base_layer = self.config.layer_of(base)
                refined = False
                for alias in node.names:
                    candidate = f"{base}.{alias.name}"
                    cand_layer = self.config.layer_of(candidate)
                    if (cand_layer is not None
                            and cand_layer is not base_layer):
                        yield node, candidate
                        refined = True
                if not refined:
                    yield node, base

    def _resolve_from(self, ctx: FileContext,
                      node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        # Relative import: climb from the importing module's package.
        parts = ctx.module_name.split(".")
        if not ctx.relpath.endswith("__init__.py"):
            parts = parts[:-1]
        climb = node.level - 1
        if climb:
            parts = parts[:-climb] if climb < len(parts) else []
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None


def _type_checking_lines(tree: ast.AST) -> set[int]:
    """Lines of imports guarded by ``if TYPE_CHECKING:``."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_guard = (isinstance(test, ast.Name)
                    and test.id == "TYPE_CHECKING") or (
                        isinstance(test, ast.Attribute)
                        and test.attr == "TYPE_CHECKING")
        if not is_guard:
            continue
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Import, ast.ImportFrom)):
                lines.add(sub.lineno)
    return lines
