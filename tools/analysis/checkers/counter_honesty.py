"""Rule ``counter-honesty``: tuple loops in the measured packages charge.

The benchmark gates (`bench_hybrid_skew`, `bench_faq_factorization`,
`bench_ivm_delta`, ...) compare **operation counts**, the same series
Ngo's survey states its results in.  Those counts are only as honest as
the charging convention: every loop that walks relation tuples inside
``repro.joins`` and ``repro.columnar`` must charge an
:class:`~repro.joins.instrumentation.OperationCounter` *on its path* —
one uncharged loop silently deflates a strategy's measured work and
inflates its gate ratio.

A ``for`` statement or comprehension is *tuple-iterating* when its
iterable reads a recognizable tuple source: a ``.tuples``/``.rows``
attribute, a name like ``rows``/``left_rows``/``relation``, a subscript
of a ``relations`` container, or such an expression behind ``sorted`` /
``enumerate``-style wrappers.  The loop satisfies the rule when

* a ``charge(...)`` call appears in the loop body, or
* the enclosing function charges in bulk, referencing the iterable
  (``counter.charge(tuples_scanned=len(rows))`` before/after the loop)
  or a collection the loop builds (``len(out)`` after an append loop).

``attribute(...)``/``phase(...)`` do **not** satisfy the rule: breakdown
entries re-slice work, they are excluded from ``total()``.

The columnar backend's folds are loops in disguise: a segment reduction
(``np.add.reduceat``, ``np.bincount``) walks every frontier row exactly
like the python eliminator's per-tuple ⊕ calls.  Calls to those fold
primitives are therefore held to the same rule — the enclosing function
must charge referencing one of the arrays the fold reads.

Purely structural walks (building an index keyed by tuples already
charged elsewhere) that genuinely must not double-charge get an inline
``# lint: disable=counter-honesty -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.analysis.core import Checker, FileContext, Finding

#: Attribute names that read tuple storage.
TUPLE_ATTRS = frozenset({"tuples"})

#: Variable names (exact, or as ``*_<name>`` suffix) holding tuple
#: sequences or Relation objects.
TUPLE_NAMES = frozenset({"tuples", "rows", "relation"})

#: Containers whose subscript yields a Relation / tuple sequence.
TUPLE_CONTAINERS = frozenset({"relations"})

#: Builtins that pass tuple-ness through to their arguments.
TRANSPARENT_WRAPPERS = frozenset({
    "sorted", "list", "tuple", "set", "enumerate", "reversed", "iter",
    "zip",
})

#: Vectorized segment-fold primitives: one call = one pass over tuples.
VECTORIZED_FOLDS = frozenset({"reduceat", "bincount"})

_LOOPS = (ast.For, ast.ListComp, ast.SetComp, ast.GeneratorExp,
          ast.DictComp)
_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


class CounterHonestyChecker(Checker):
    rule = "counter-honesty"
    contract = ("every relation-tuple loop in repro.joins / repro.columnar "
                "charges an OperationCounter on its path")

    def __init__(self, prefixes: tuple[str, ...] = ("repro.joins",
                                                    "repro.columnar")) -> None:
        self.prefixes = prefixes

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not any(ctx.module_name == p or ctx.module_name.startswith(p + ".")
                   for p in self.prefixes):
            return
        # Instrumentation defines the counters; it has no join loops.
        if ctx.module_name.endswith(".instrumentation"):
            return
        for func in self._functions(ctx.tree):
            charged_names = _names_charged_in(func)
            has_any_charge = _contains_charge(func)
            comp_targets = _comprehension_targets(func)
            for loop, iterable in self._tuple_loops(func):
                if _contains_charge(loop):
                    continue
                roots = _read_names(iterable)
                built = _built_collections(loop)
                built |= comp_targets.get(id(loop), set())
                if has_any_charge and (roots & charged_names
                                       or built & charged_names):
                    continue
                yield Finding(
                    rule=self.rule, path=ctx.relpath, line=loop.lineno,
                    message=(f"{func.name}: loop over relation tuples "
                             f"({ast.unparse(iterable)}) never charges an "
                             "OperationCounter on its path"),
                )
            for call in self._vectorized_folds(func):
                reads = _read_names(call) - VECTORIZED_FOLDS - {"np", "numpy"}
                if has_any_charge and reads & charged_names:
                    continue
                yield Finding(
                    rule=self.rule, path=ctx.relpath, line=call.lineno,
                    message=(f"{func.name}: vectorized fold "
                             f"({ast.unparse(call.func)}) walks every "
                             "frontier row but never charges an "
                             "OperationCounter on its path"),
                )

    def _functions(self, tree: ast.AST):
        for node in ast.walk(tree):
            if isinstance(node, _FUNCS):
                yield node

    def _tuple_loops(self, func: ast.AST):
        """Tuple-iterating loops belonging directly to ``func`` (loops in
        nested functions are reported against the nested function)."""
        for node in _walk_same_function(func):
            if isinstance(node, ast.For):
                if _is_tuple_source(node.iter):
                    yield node, node.iter
            elif isinstance(node, _LOOPS):
                for gen in node.generators:
                    if _is_tuple_source(gen.iter):
                        yield node, gen.iter
                        break

    def _vectorized_folds(self, func: ast.AST):
        for node in _walk_same_function(func):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in VECTORIZED_FOLDS:
                yield node


def _walk_same_function(func: ast.AST):
    """Walk ``func``'s body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCS):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_tuple_source(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Attribute):
        return (expr.attr in TUPLE_ATTRS
                or _name_is_tuple_like(expr.attr))
    if isinstance(expr, ast.Name):
        return _name_is_tuple_like(expr.id)
    if isinstance(expr, ast.Subscript):
        value = expr.value
        if isinstance(value, ast.Name) and value.id in TUPLE_CONTAINERS:
            return True
        if isinstance(value, ast.Attribute) and value.attr in TUPLE_CONTAINERS:
            return True
        return False
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in TRANSPARENT_WRAPPERS:
            return any(_is_tuple_source(a) for a in expr.args)
        return False
    if isinstance(expr, ast.IfExp):
        return _is_tuple_source(expr.body) or _is_tuple_source(expr.orelse)
    if isinstance(expr, ast.BoolOp):
        return any(_is_tuple_source(v) for v in expr.values)
    return False


def _name_is_tuple_like(name: str) -> bool:
    if name in TUPLE_NAMES:
        return True
    return any(name.endswith("_" + t) for t in TUPLE_NAMES)


def _contains_charge(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr == "charge":
                return True
            if isinstance(func, ast.Name) and func.id == "charge":
                return True
    return False


def _names_charged_in(func: ast.AST) -> set[str]:
    """Names referenced inside the arguments of charge calls in ``func``."""
    names: set[str] = set()
    for sub in _walk_same_function(func):
        if not isinstance(sub, ast.Call):
            continue
        f = sub.func
        is_charge = (isinstance(f, ast.Attribute) and f.attr == "charge") or \
                    (isinstance(f, ast.Name) and f.id == "charge")
        if not is_charge:
            continue
        for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
            names |= _read_names(arg)
    return names


def _read_names(expr: ast.AST) -> set[str]:
    """All terminal identifiers read by an expression (attr chains bottom
    out at their root name; ``len(rows)`` contributes ``rows``)."""
    names: set[str] = set()
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    names -= TRANSPARENT_WRAPPERS | {"len"}
    return names


def _comprehension_targets(func: ast.AST) -> dict[int, set[str]]:
    """Map comprehension node ids to the names their results are bound to
    (``out = [... for t in rows]`` makes a later ``len(out)`` charge count
    for that comprehension)."""
    targets: dict[int, set[str]] = {}
    for sub in _walk_same_function(func):
        if not isinstance(sub, ast.Assign):
            continue
        names = {t.id for t in sub.targets if isinstance(t, ast.Name)}
        if not names:
            continue
        for comp in ast.walk(sub.value):
            if isinstance(comp, _LOOPS):
                targets.setdefault(id(comp), set()).update(names)
    return targets


def _built_collections(loop: ast.AST) -> set[str]:
    """Names of collections a loop visibly builds (append/add/update or
    subscript assignment) — a bulk charge on those counts as the loop's
    charge."""
    built: set[str] = set()
    for sub in ast.walk(loop):
        if isinstance(sub, ast.Call):
            f = sub.func
            if isinstance(f, ast.Attribute) and f.attr in ("append", "add",
                                                           "update",
                                                           "extend"):
                built |= _read_names(f.value)
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for tgt in targets:
                if isinstance(tgt, ast.Subscript):
                    built |= _read_names(tgt.value)
    return built
