"""Rule ``tracer-discipline``: the tracer is a null object, not an option.

The observability layer's overhead gate (``bench_trace_overhead``, CI
bound: disabled tracing costs <5%) holds because an untraced session
carries :data:`repro.obs.trace.NULL_TRACER` and every hot-path site pays
exactly one attribute read — ``if tracer.enabled:``.  Identity tests
(``tracer is None``) or type tests (``isinstance(tracer, Tracer)``)
reintroduce the optional-tracer style: they invite ``None`` back into
the field, fork the guard idiom across call sites, and make the
overhead bound depend on which guard a site happened to use.

The single allowed seam is ``__init__``, where a constructor maps the
user-facing ``tracer=None`` default onto the null object.  The tracer's
own module is exempt: it defines the null object.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.analysis.core import Checker, FileContext, Finding


def _tracer_like(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Name):
        return "tracer" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "tracer" in expr.attr.lower()
    return False


class TracerDisciplineChecker(Checker):
    rule = "tracer-discipline"
    contract = ("hot paths guard tracing with tracer.enabled attribute "
                "reads, never is-None or isinstance branches")

    def __init__(self, prefixes: tuple[str, ...] = ("repro",),
                 exempt_modules: tuple[str, ...] = ("repro.obs.trace",)
                 ) -> None:
        self.prefixes = prefixes
        self.exempt_modules = exempt_modules

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not any(ctx.module_name == p or ctx.module_name.startswith(p + ".")
                   for p in self.prefixes):
            return
        if ctx.module_name in self.exempt_modules:
            return
        init_spans = _init_line_spans(ctx.tree)
        for node in ast.walk(ctx.tree):
            line = getattr(node, "lineno", None)
            if line is not None and any(a <= line <= b
                                        for a, b in init_spans):
                continue
            if isinstance(node, ast.Compare):
                if any(isinstance(op, (ast.Is, ast.IsNot))
                       for op in node.ops):
                    operands = [node.left] + list(node.comparators)
                    if any(_tracer_like(o) for o in operands):
                        yield Finding(
                            rule=self.rule, path=ctx.relpath,
                            line=node.lineno,
                            message=("identity test on a tracer outside "
                                     "__init__; guard with tracer.enabled "
                                     "(null-object discipline)"),
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "isinstance" \
                        and node.args and (_tracer_like(node.args[0])
                                           or _mentions_tracer_type(node)):
                    yield Finding(
                        rule=self.rule, path=ctx.relpath, line=node.lineno,
                        message=("isinstance test on a tracer outside "
                                 "__init__; guard with tracer.enabled "
                                 "(null-object discipline)"),
                    )


def _mentions_tracer_type(call: ast.Call) -> bool:
    if len(call.args) < 2:
        return False
    for sub in ast.walk(call.args[1]):
        if isinstance(sub, ast.Name) and "tracer" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "tracer" in sub.attr.lower():
            return True
    return False


def _init_line_spans(tree: ast.AST) -> list[tuple[int, int]]:
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                node.name == "__init__":
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans
