"""Checker registry: one module per rule, assembled for the driver."""

from __future__ import annotations

import os

from tools.analysis.checkers.cache_key import CacheKeyChecker
from tools.analysis.checkers.counter_honesty import CounterHonestyChecker
from tools.analysis.checkers.layering import LayeringChecker
from tools.analysis.checkers.semiring_protocol import SemiringProtocolChecker
from tools.analysis.checkers.tracer_discipline import TracerDisciplineChecker
from tools.analysis.core import Checker
from tools.analysis.layers import load_layers

_HERE = os.path.dirname(os.path.abspath(__file__))
LAYERS_TOML = os.path.join(_HERE, os.pardir, "layers.toml")


def default_checkers() -> list[Checker]:
    """The full rule set, configured for this repository."""
    return [
        LayeringChecker(load_layers(LAYERS_TOML)),
        CounterHonestyChecker(),
        CacheKeyChecker(),
        SemiringProtocolChecker(),
        TracerDisciplineChecker(),
    ]


__all__ = [
    "CacheKeyChecker",
    "CounterHonestyChecker",
    "LayeringChecker",
    "SemiringProtocolChecker",
    "TracerDisciplineChecker",
    "default_checkers",
    "LAYERS_TOML",
]
