"""Rule ``semiring-protocol``: registered algebras honor the ring protocol.

PR 7's delta propagation trusts three structural facts about every
semiring that can reach it:

* **Full protocol at registration.**  Whatever is handed to
  ``register_semiring`` must be a statically visible ``Semiring(...)``
  (or ``product_semiring(...)``) construction declaring the whole fold
  monoid — ``zero``, ``plus``, ``lift``.  A dynamically assembled or
  partially constructed algebra can't be audited, and a missing monoid
  member surfaces only deep inside the elimination recursion.
* **``one`` and ``times`` travel together.**  Declaring a product
  operation without its identity (or vice versa) produces an algebra
  the Yannakakis in-pass aggregation will combine incorrectly — the
  identity annotates tuples of atoms that don't carry the aggregated
  variable.
* **``negate`` iff ``has_inverse``.**  ``has_inverse`` is derived from
  ``negate`` on the dataclass, so the hazard is subclasses overriding
  one without the other: IVM's delete path consults ``has_inverse``
  before calling ``negate``, and a disagreement turns deletes into
  either crashes or silent corruption.
* **Product absorbing rule.**  ``product_semiring`` may advertise an
  absorbing element (early-exit license for the eliminator) only when
  *every* factor declares one — derived with ``all(...)``, never
  ``any(...)``.  Same for ``negate`` and ``times``: a single
  non-invertible (or plus-only) coordinate poisons the whole tuple.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.analysis.core import Checker, FileContext, Finding

#: Positional layout of the Semiring dataclass.
_FIELD_ORDER = ("name", "zero", "plus", "lift", "needs_variable", "one",
                "times", "finalize", "absorbing", "negate")

_MONOID = ("zero", "plus", "lift")

#: These must be gated on *all* factors inside product_semiring.
_ALL_GATED = ("times", "negate", "absorbing")


class SemiringProtocolChecker(Checker):
    rule = "semiring-protocol"
    contract = ("register_semiring receives fully-declared Semiring "
                "constructions; one/times paired; product rules use all()")

    def __init__(self, prefixes: tuple[str, ...] = ("repro",)) -> None:
        self.prefixes = prefixes

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not any(ctx.module_name == p or ctx.module_name.startswith(p + ".")
                   for p in self.prefixes):
            return
        constructions = _semiring_assignments(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if _is_name_call(node, "register_semiring"):
                    yield from self._check_registration(ctx, node,
                                                        constructions)
                elif _is_name_call(node, "Semiring"):
                    yield from self._check_construction(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_subclass(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == "product_semiring":
                yield from self._check_product(ctx, node)

    # -- registration --------------------------------------------------
    def _check_registration(self, ctx: FileContext, call: ast.Call,
                            constructions: dict[str, ast.Call]
                            ) -> Iterable[Finding]:
        if len(call.args) != 1:
            yield Finding(
                rule=self.rule, path=ctx.relpath, line=call.lineno,
                message="register_semiring takes exactly one semiring",
            )
            return
        arg = call.args[0]
        if isinstance(arg, ast.Call) and (
                _is_name_call(arg, "Semiring")
                or _is_name_call(arg, "product_semiring")):
            return
        if isinstance(arg, ast.Name) and arg.id in constructions:
            return
        yield Finding(
            rule=self.rule, path=ctx.relpath, line=call.lineno,
            message=("register_semiring argument is not a statically "
                     "visible Semiring(...) or product_semiring(...) "
                     "construction; the protocol cannot be audited"),
        )

    # -- direct construction -------------------------------------------
    def _check_construction(self, ctx: FileContext,
                            call: ast.Call) -> Iterable[Finding]:
        provided: set[str] = set()
        for index, _arg in enumerate(call.args):
            if index < len(_FIELD_ORDER):
                provided.add(_FIELD_ORDER[index])
        for kw in call.keywords:
            if kw.arg is not None:
                provided.add(kw.arg)
            else:
                return  # **kwargs: not statically auditable; registration
                        # rule already flags dynamic constructions.
        missing = [f for f in _MONOID if f not in provided]
        if missing:
            yield Finding(
                rule=self.rule, path=ctx.relpath, line=call.lineno,
                message=("Semiring construction omits the fold monoid "
                         f"member(s) {', '.join(missing)}"),
            )
        if ("times" in provided) != ("one" in provided):
            present, absent = (("times", "one") if "times" in provided
                               else ("one", "times"))
            yield Finding(
                rule=self.rule, path=ctx.relpath, line=call.lineno,
                message=(f"Semiring construction declares '{present}' "
                         f"without '{absent}'; the product structure "
                         "must be declared whole"),
            )

    # -- subclass overrides --------------------------------------------
    def _check_subclass(self, ctx: FileContext,
                        node: ast.ClassDef) -> Iterable[Finding]:
        if not any(isinstance(b, ast.Name) and b.id == "Semiring"
                   or isinstance(b, ast.Attribute) and b.attr == "Semiring"
                   for b in node.bases):
            return
        defined = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                defined |= {t.id for t in stmt.targets
                            if isinstance(t, ast.Name)}
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                defined.add(stmt.target.id)
        if ("has_inverse" in defined) != ("negate" in defined):
            yield Finding(
                rule=self.rule, path=ctx.relpath, line=node.lineno,
                message=(f"{node.name} overrides "
                         f"{'has_inverse' if 'has_inverse' in defined else 'negate'}"
                         " without the other; negate must be defined iff "
                         "has_inverse reports a ring"),
            )

    # -- product semiring derivation rules ------------------------------
    def _check_product(self, ctx: FileContext,
                       func: ast.FunctionDef) -> Iterable[Finding]:
        gated: dict[str, bool] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.If):
                assigned = _assigned_or_defined(node)
                for name in _ALL_GATED:
                    if name in assigned:
                        gated[name] = gated.get(name, True) and \
                            _gate_uses_all_only(node.test)
                        if not _gate_uses_all_only(node.test):
                            yield Finding(
                                rule=self.rule, path=ctx.relpath,
                                line=node.lineno,
                                message=(f"product_semiring derives "
                                         f"'{name}' behind a gate that is "
                                         "not all(...) over the factors; "
                                         "one coordinate must not speak "
                                         "for the tuple"),
                            )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id in _ALL_GATED and \
                            _contains_call(node.value, "any"):
                        yield Finding(
                            rule=self.rule, path=ctx.relpath,
                            line=node.lineno,
                            message=(f"product_semiring derives "
                                     f"'{target.id}' with any(...); the "
                                     "product has it only when ALL "
                                     "factors do"),
                        )
                    elif isinstance(target, ast.Name) and \
                            target.id in _ALL_GATED and \
                            _contains_call(node.value, "all"):
                        gated[target.id] = True
        for name in _ALL_GATED:
            if name not in gated:
                yield Finding(
                    rule=self.rule, path=ctx.relpath, line=func.lineno,
                    message=(f"product_semiring never derives '{name}' "
                             "behind an all(...) gate over the factors"),
                )


def _semiring_assignments(tree: ast.AST) -> dict[str, ast.Call]:
    """Names bound (at any scope) to a Semiring/product_semiring call."""
    result: dict[str, ast.Call] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if isinstance(node.value, ast.Call) and (
                _is_name_call(node.value, "Semiring")
                or _is_name_call(node.value, "product_semiring")):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    result[target.id] = node.value
    return result


def _is_name_call(call: ast.Call, name: str) -> bool:
    func = call.func
    return (isinstance(func, ast.Name) and func.id == name) or \
           (isinstance(func, ast.Attribute) and func.attr == name)


def _assigned_or_defined(node: ast.If) -> set[str]:
    names: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            names |= {t.id for t in stmt.targets if isinstance(t, ast.Name)}
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
    return names


def _gate_uses_all_only(test: ast.AST) -> bool:
    return _contains_call(test, "all") and not _contains_call(test, "any")


def _contains_call(expr: ast.AST, name: str) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                and sub.func.id == name:
            return True
    return False
