"""Rule ``cache-key``: every dispatch axis reaches the plan-cache key.

The plan cache serves a cached plan whenever the key matches — so any
``Engine.execute``/``stream``/``execute_many`` parameter that changes
*which plan is right* (the strategy ``mode``, ``aggregate_mode``,
``ranked_mode``, ``backend``) must be part of the key tuple built in
``Engine._prepare``.  PR 6's counter-isolation bug was this class: an
axis that influenced execution without reaching a cache key, so two
differently-configured calls shared state they must not share.

Cross-module, the checker verifies three things for every axis
parameter (a parameter of the public execution methods that is not in
the known non-axis set — ``limit`` and ``counter`` deliberately bypass
the cache instead of keying it):

1. it is a parameter of ``_prepare``;
2. every ``self._prepare(...)`` call inside the public methods forwards
   it (an expression mentioning the parameter name);
3. it appears in the ``key = (...)`` tuple assigned in ``_prepare``.

A new axis parameter added to ``execute`` without threading it through
all three fails here before it can resurrect that bug class.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.analysis.core import Checker, Finding, Project


class CacheKeyChecker(Checker):
    rule = "cache-key"
    contract = ("every dispatch-axis parameter of Engine.execute/stream/"
                "execute_many reaches the plan-cache key in _prepare")

    def __init__(self, session_module: str = "repro.engine.session",
                 engine_class: str = "Engine",
                 methods: tuple[str, ...] = ("execute", "stream",
                                             "execute_many"),
                 prepare_method: str = "_prepare",
                 key_name: str = "key",
                 non_axis: frozenset[str] = frozenset({
                     "self", "query", "queries", "limit", "counter",
                 })) -> None:
        self.session_module = session_module
        self.engine_class = engine_class
        self.methods = methods
        self.prepare_method = prepare_method
        self.key_name = key_name
        self.non_axis = non_axis

    def finalize(self, project: Project) -> Iterable[Finding]:
        ctx = project.module(self.session_module)
        if ctx is None:
            return
        engine = self._find_class(ctx.tree)
        if engine is None:
            yield Finding(
                rule=self.rule, path=ctx.relpath, line=1,
                message=(f"class {self.engine_class} not found in "
                         f"{self.session_module}; the cache-key contract "
                         "has nothing to check"),
            )
            return
        methods = {node.name: node for node in engine.body
                   if isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))}
        prepare = methods.get(self.prepare_method)
        if prepare is None:
            yield Finding(
                rule=self.rule, path=ctx.relpath, line=engine.lineno,
                message=(f"{self.engine_class}.{self.prepare_method} not "
                         "found; cannot verify the plan-cache key"),
            )
            return
        prepare_params = _param_names(prepare)
        key_names = self._key_tuple_names(prepare)
        if key_names is None:
            yield Finding(
                rule=self.rule, path=ctx.relpath, line=prepare.lineno,
                message=(f"{self.prepare_method} assigns no tuple to "
                         f"'{self.key_name}'; the plan-cache key is not "
                         "statically visible"),
            )
            return
        key_line, key_name_set = key_names

        for method_name in self.methods:
            method = methods.get(method_name)
            if method is None:
                yield Finding(
                    rule=self.rule, path=ctx.relpath, line=engine.lineno,
                    message=(f"{self.engine_class}.{method_name} not found; "
                             "update the cache-key checker's method list"),
                )
                continue
            axes = [p for p in _param_names(method) if p not in self.non_axis]
            calls = self._prepare_calls(method)
            for axis in axes:
                if axis not in prepare_params:
                    yield Finding(
                        rule=self.rule, path=ctx.relpath, line=method.lineno,
                        message=(f"dispatch axis '{axis}' of {method_name} "
                                 f"is not a parameter of "
                                 f"{self.prepare_method}"),
                    )
                    continue
                for call in calls:
                    if axis not in _call_argument_names(call):
                        yield Finding(
                            rule=self.rule, path=ctx.relpath,
                            line=call.lineno,
                            message=(f"{method_name} calls "
                                     f"{self.prepare_method} without "
                                     f"forwarding dispatch axis '{axis}'"),
                        )
                if axis not in key_name_set:
                    yield Finding(
                        rule=self.rule, path=ctx.relpath, line=key_line,
                        message=(f"dispatch axis '{axis}' of {method_name} "
                                 "never reaches the plan-cache key tuple "
                                 f"in {self.prepare_method}"),
                    )

    def _find_class(self, tree: ast.AST) -> ast.ClassDef | None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and \
                    node.name == self.engine_class:
                return node
        return None

    def _key_tuple_names(self, prepare: ast.AST
                         ) -> tuple[int, set[str]] | None:
        for node in ast.walk(prepare):
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == self.key_name
                       for t in node.targets):
                continue
            if not isinstance(node.value, ast.Tuple):
                continue
            names: set[str] = set()
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
            return node.lineno, names
        return None

    def _prepare_calls(self, method: ast.AST) -> list[ast.Call]:
        calls = []
        for node in ast.walk(method):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == self.prepare_method:
                calls.append(node)
        return calls


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return names


def _call_argument_names(call: ast.Call) -> set[str]:
    """Identifiers appearing anywhere in a call's arguments."""
    names: set[str] = set()
    for expr in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names
