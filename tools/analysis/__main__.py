"""CLI driver: ``python -m tools.analysis [paths...] [options]``.

Exit codes are stable for CI: **0** clean (suppressed and baselined
findings allowed), **1** unsuppressed findings, **2** usage or internal
error.  ``--json`` emits a machine-readable report on stdout (validated
by the CI smoke step the same way ``repro --trace`` NDJSON is).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from tools.analysis.checkers import default_checkers
from tools.analysis.core import (
    AnalysisDriver,
    iter_python_files,
    load_baseline,
    write_baseline,
)

_HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(_HERE))
DEFAULT_BASELINE = os.path.join(_HERE, "baseline.json")

#: The packages whose benchmark gates the counter-honesty rule protects.
#: Baseline entries are forbidden there: a grandfathered uncharged loop
#: would be a permanently dishonest gate.
NO_BASELINE_PREFIXES = ("src/repro/joins/", "src/repro/columnar/")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="Repo-specific AST contract checkers.",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan "
                             "(default: src/)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report on stdout")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and contracts, then exit")
    args = parser.parse_args(argv)

    checkers = default_checkers()
    if args.list_rules:
        for checker in checkers:
            print(f"{checker.rule:20s} {checker.contract}")
        return 0
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {c.rule for c in checkers}
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        checkers = [c for c in checkers if c.rule in wanted]

    roots = args.paths or [os.path.join(REPO_ROOT, "src")]
    try:
        files = list(iter_python_files(REPO_ROOT, roots))
        baseline = load_baseline(args.baseline)
        offenders = [e for e in baseline
                     if any(p in e for p in NO_BASELINE_PREFIXES)]
        if offenders:
            print("baseline entries are forbidden in the benchmark-gated "
                  "packages (fix or suppress inline with a reason):",
                  file=sys.stderr)
            for entry in offenders:
                print(f"  {entry}", file=sys.stderr)
            return 1
        driver = AnalysisDriver(checkers, baseline)
        result = driver.run(REPO_ROOT, files)
    except (OSError, SyntaxError, ValueError) as exc:
        print(f"analysis error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.baseline, result.findings)
        print(f"wrote {count} baseline entries to {args.baseline}",
              file=sys.stderr)
        return 0

    if args.json:
        json.dump({
            "clean": result.clean,
            "files": result.files_checked,
            "rules": [c.rule for c in checkers],
            "findings": [f.as_dict() for f in result.findings],
            "suppressed": [
                {**f.as_dict(), "reason": reason}
                for f, reason in result.suppressed
            ],
            "baselined": [f.as_dict() for f in result.baselined],
        }, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (f"{len(result.findings)} finding(s), "
                   f"{len(result.suppressed)} suppressed, "
                   f"{len(result.baselined)} baselined, "
                   f"{result.files_checked} file(s) checked")
        print(summary, file=sys.stderr)
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
