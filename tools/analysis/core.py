"""The analysis framework: file model, checker plugins, suppressions.

Design constraints, in order:

* **One parse per file.**  Every checker sees the same ``ast`` tree (and
  tokenized comment map); adding a checker never adds a parse.
* **Checkers are plugins.**  A checker subclasses :class:`Checker`,
  declares a rule id, and implements :meth:`Checker.check_file` (local
  rules) and/or :meth:`Checker.finalize` (cross-module rules that need
  the whole project, like cache-key completeness).
* **Suppressions carry a reason.**  ``# lint: disable=<rule> -- <why>``
  on the offending line (or the statement's first line) silences that
  rule there; a disable *without* a reason is itself reported under the
  ``suppression`` pseudo-rule, so exemptions stay auditable.
* **Baseline, not amnesty.**  ``baseline.json`` holds fingerprints of
  findings that predate a rule; baselined findings are reported as
  suppressed counts, never as failures.  The acceptance bar for the
  benchmark-bearing packages (``repro.joins``, ``repro.columnar``) is a
  baseline with zero entries — see ``tools/analysis/__main__.py``.

Exit codes (stable, for CI): 0 = clean, 1 = unsuppressed findings,
2 = usage or internal error.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, Iterator

#: Matches one suppression comment.  Reason is everything after ``--``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    message: str

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file.

        Baselines must survive unrelated edits above the finding, so the
        fingerprint is (rule, path, message) — messages name the symbol
        they anchor to, which keeps collisions rare in practice.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One parsed ``# lint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str | None
    used: bool = False


class FileContext:
    """Everything a checker may want about one source file.

    Parsed exactly once by the driver; checkers must not re-read or
    re-parse.  ``relpath`` is repo-root-relative with forward slashes so
    findings and baselines are machine-independent.
    """

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=relpath)
        self.lines = source.splitlines()
        self.module_name = _module_name(relpath)
        self.suppressions = _collect_suppressions(source)
        self._suppressed_lines: dict[int, list[Suppression]] = {}
        for sup in self.suppressions:
            self._suppressed_lines.setdefault(sup.line, []).append(sup)

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering ``rule`` at ``line``, if any."""
        for sup in self._suppressed_lines.get(line, ()):
            if rule in sup.rules:
                return sup
        return None

    def lazy_import_lines(self) -> set[int]:
        """Line numbers of imports nested inside function bodies."""
        lazy: set[int] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        lazy.add(sub.lineno)
        return lazy


def _module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative path (src-layout aware)."""
    path = relpath.replace(os.sep, "/")
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith("/__init__.py"):
        path = path[: -len("/__init__.py")]
    elif path.endswith(".py"):
        path = path[: -len(".py")]
    return path.replace("/", ".")


def _collect_suppressions(source: str) -> list[Suppression]:
    """Parse suppression comments with the tokenizer (no false hits in
    strings)."""
    result: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = tuple(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            result.append(
                Suppression(line=tok.start[0], rules=rules,
                            reason=match.group("reason"))
            )
    except tokenize.TokenError:
        pass
    return result


class Project:
    """All parsed files, keyed by module name and by path."""

    def __init__(self, files: list[FileContext]) -> None:
        self.files = files
        self.by_module = {ctx.module_name: ctx for ctx in files}
        self.by_path = {ctx.relpath: ctx for ctx in files}

    def module(self, name: str) -> FileContext | None:
        return self.by_module.get(name)


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`rule` (the id used in suppressions, output,
    and the baseline) and :attr:`contract` (one sentence: the invariant
    this rule enforces — surfaced by ``--list-rules`` and the docs).
    """

    rule: str = ""
    contract: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        """Per-file pass; yield findings for this file only."""
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Cross-module pass, after every file has been parsed."""
        return ()


@dataclass
class AnalysisResult:
    findings: list[Finding]
    suppressed: list[tuple[Finding, str | None]]
    baselined: list[Finding]
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


class AnalysisDriver:
    """Parse once, run every checker, apply suppressions and baseline."""

    def __init__(self, checkers: Iterable[Checker],
                 baseline: set[str] | None = None) -> None:
        self.checkers = list(checkers)
        self.baseline = baseline or set()

    def run(self, root: str, paths: Iterable[str]) -> AnalysisResult:
        files = []
        for path in sorted(set(paths)):
            relpath = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            files.append(FileContext(relpath, source))
        project = Project(files)

        raw: list[Finding] = []
        for checker in self.checkers:
            for ctx in project.files:
                raw.extend(checker.check_file(ctx))
            raw.extend(checker.finalize(project))

        findings: list[Finding] = []
        suppressed: list[tuple[Finding, str | None]] = []
        baselined: list[Finding] = []
        for finding in raw:
            ctx = project.by_path.get(finding.path)
            sup = (ctx.suppression_for(finding.rule, finding.line)
                   if ctx is not None else None)
            if sup is not None:
                sup.used = True
                suppressed.append((finding, sup.reason))
                if not sup.reason:
                    findings.append(Finding(
                        rule="suppression",
                        path=finding.path,
                        line=sup.line,
                        message=(f"suppression of '{finding.rule}' has no "
                                 "reason; write '# lint: disable="
                                 f"{finding.rule} -- <why>'"),
                    ))
                continue
            if finding.fingerprint() in self.baseline:
                baselined.append(finding)
                continue
            findings.append(finding)

        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return AnalysisResult(findings=findings, suppressed=suppressed,
                              baselined=baselined,
                              files_checked=len(files))


def load_baseline(path: str) -> set[str]:
    """Load baseline fingerprints; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list) or not all(isinstance(e, str) for e in data):
        raise ValueError(
            f"baseline {path!r} must be a JSON list of fingerprint strings"
        )
    return set(data)


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the findings' fingerprints as the new baseline; returns the
    entry count."""
    entries = sorted({f.fingerprint() for f in findings})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2)
        handle.write("\n")
    return len(entries)


def iter_python_files(root: str, subdirs: Iterable[str]) -> Iterator[str]:
    """Yield every ``.py`` file under the given repo-relative subdirs."""
    for sub in subdirs:
        base = os.path.join(root, sub)
        if os.path.isfile(base) and base.endswith(".py"):
            yield base
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)
