"""Layer-DAG configuration for the ``layering`` rule.

``layers.toml`` lists layers lowest-first; each layer owns a list of
module prefixes (longest prefix wins, so a single module can be carved
out of its package — ``repro.joins.instrumentation`` lives below
``repro.joins``).  A ``numeric = true`` layer may import numpy/scipy.

Parsed with :mod:`tomllib` where available (3.11+); a minimal fallback
parser covers the strict subset this file uses so the checker (and its
tests) still run on 3.10.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class Layer:
    name: str
    rank: int
    modules: tuple[str, ...]
    numeric: bool = False


class LayerConfig:
    """The ordered layer list plus prefix-based module assignment."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = layers
        self._by_prefix: dict[str, Layer] = {}
        for layer in layers:
            for prefix in layer.modules:
                self._by_prefix[prefix] = layer

    def layer_of(self, module: str) -> Layer | None:
        """The layer owning ``module``, by longest matching prefix."""
        best: Layer | None = None
        best_len = -1
        for prefix, layer in self._by_prefix.items():
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best, best_len = layer, len(prefix)
        return best


def parse_layers(text: str) -> LayerConfig:
    data = _parse_toml(text)
    layers = []
    for rank, entry in enumerate(data.get("layer", [])):
        layers.append(Layer(
            name=entry["name"],
            rank=rank,
            modules=tuple(entry["modules"]),
            numeric=bool(entry.get("numeric", False)),
        ))
    if not layers:
        raise ValueError("layers.toml defines no [[layer]] tables")
    return LayerConfig(layers)


def load_layers(path: str) -> LayerConfig:
    with open(path, encoding="utf-8") as handle:
        return parse_layers(handle.read())


def _parse_toml(text: str) -> dict:
    try:
        import tomllib
    except ImportError:  # Python 3.10: fall back to the subset parser.
        return _parse_toml_subset(text)
    return tomllib.loads(text)


_ARRAY_TABLE_RE = re.compile(r"^\[\[([A-Za-z0-9_.-]+)\]\]$")
_KEY_VALUE_RE = re.compile(r"^([A-Za-z0-9_-]+)\s*=\s*(.+)$")


def _parse_toml_subset(text: str) -> dict:
    """Parse the subset of TOML layers.toml uses.

    Supported: ``[[name]]`` array-of-tables headers, string/bool scalars,
    and (possibly multi-line) arrays of strings.  Enough for the config —
    not a general TOML parser.
    """
    data: dict = {}
    current: dict | None = None
    pending_key: str | None = None
    pending_items: list[str] | None = None

    def close_array(chunk: str) -> bool:
        """Accumulate array items from ``chunk``; True when ``]`` seen."""
        assert pending_items is not None
        closed = chunk.rstrip().endswith("]")
        body = chunk.rstrip().rstrip("]")
        for part in body.split(","):
            part = part.strip()
            if part:
                pending_items.append(_parse_scalar(part))
        return closed

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip() if not raw.strip().startswith('"') else raw.strip()
        if not line:
            continue
        if pending_items is not None:
            if close_array(line):
                assert current is not None and pending_key is not None
                current[pending_key] = pending_items
                pending_key = pending_items = None
            continue
        header = _ARRAY_TABLE_RE.match(line)
        if header:
            current = {}
            data.setdefault(header.group(1), []).append(current)
            continue
        keyval = _KEY_VALUE_RE.match(line)
        if keyval and current is not None:
            key, value = keyval.group(1), keyval.group(2).strip()
            if value.startswith("["):
                pending_items = []
                if close_array(value[1:]):
                    current[key] = pending_items
                    pending_items = None
                else:
                    pending_key = key
                continue
            current[key] = _parse_scalar(value)
    return data


def _parse_scalar(token: str):
    token = token.strip()
    if token in ("true", "false"):
        return token == "true"
    if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
        return token[1:-1]
    raise ValueError(f"unsupported TOML scalar in layers.toml: {token!r}")
