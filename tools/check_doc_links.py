#!/usr/bin/env python3
"""Fail when documentation links or file references go stale.

Checks, for every markdown file passed on the command line:

* relative markdown links ``[text](path)`` point at files or directories
  that exist (anchors are stripped; external ``http(s):``/``mailto:``
  links are skipped);
* inline-code path references that look like repo files
  (`src/...`, `benchmarks/...`, `docs/...`, `tools/...`, `tests/...`)
  exist.

Usage::

    python tools/check_doc_links.py README.md ROADMAP.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")
CODE_PATH = re.compile(
    r"`((?:src|benchmarks|docs|tools|tests)/[A-Za-z0-9_./-]+)`")
ROOT = Path(__file__).resolve().parent.parent


def stale_references(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    base = path.parent
    problems: list[str] = []
    for match in LINK.finditer(text):
        target = match.group(1).strip()
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (base / relative).exists() and not (ROOT / relative).exists():
            problems.append(f"{path}: broken link -> {target}")
    for match in CODE_PATH.finditer(text):
        target = match.group(1).rstrip("/")
        if not (ROOT / target).exists():
            problems.append(f"{path}: missing file reference -> {target}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    problems: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            problems.append(f"{name}: documentation file is missing")
            continue
        problems.extend(stale_references(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} stale documentation reference(s)",
              file=sys.stderr)
        return 1
    print(f"checked {len(argv)} file(s): all documentation links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
