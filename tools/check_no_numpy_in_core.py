#!/usr/bin/env python3
"""Assert the core engine stays importable — and functional — without NumPy.

The columnar backend (``repro.columnar``) is the only subsystem allowed a
hard NumPy dependency, and even it must *import* cleanly without it (it
degrades to ``HAS_NUMPY = False`` and the dispatcher prices it as
unsupported).  Everything else — ``repro.joins``, ``repro.query``, the
engine, the CLI — is pure Python and must not grow a top-level
``import numpy`` by accident.

The check installs a meta-path finder that blocks ``numpy`` and ``scipy``
before any ``repro`` import, then:

* imports every core module,
* runs a small triangle join end-to-end on the python backend,
* confirms ``repro.columnar`` reports itself unsupported instead of
  raising.

Usage::

    python tools/check_no_numpy_in_core.py
"""

from __future__ import annotations

import os
import sys


class _BlockNumericStack:
    """Meta-path finder that refuses numpy/scipy imports."""

    BLOCKED = ("numpy", "scipy")

    def find_spec(self, name, path=None, target=None):
        if name.split(".", 1)[0] in self.BLOCKED:
            raise ImportError(
                f"blocked import of {name!r}: the core engine must not "
                "depend on the numeric stack (see tools/check_no_numpy_in_core.py)"
            )
        return None


CORE_MODULES = (
    "repro",
    "repro.joins",
    "repro.joins.generic_join",
    "repro.joins.leapfrog",
    "repro.joins.binary_plans",
    "repro.joins.yannakakis",
    "repro.query",
    "repro.query.variable_order",
    "repro.query.widths",
    "repro.engine",
    "repro.engine.cost",
    "repro.engine.registry",
    "repro.ivm",
    "repro.cli",
    "repro.columnar",  # must import (and degrade), not crash
)


def main() -> int:
    for mod in list(sys.modules):
        if mod.split(".", 1)[0] in _BlockNumericStack.BLOCKED:
            del sys.modules[mod]
    sys.meta_path.insert(0, _BlockNumericStack())

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(root, "src")
    if os.path.isdir(src) and src not in sys.path:
        sys.path.insert(0, src)

    import importlib

    for name in CORE_MODULES:
        importlib.import_module(name)

    import repro.columnar as columnar

    if columnar.HAS_NUMPY:
        print("numpy import was not actually blocked — check is broken",
              file=sys.stderr)
        return 2
    reason = columnar.unsupported_reason()
    if not reason or "NumPy" not in reason:
        print(f"repro.columnar should report a NumPy-shaped unsupported "
              f"reason, got {reason!r}", file=sys.stderr)
        return 1

    # The pure-Python join layer must work end-to-end, not merely import.
    # (Full engine dispatch is allowed scipy at runtime — the AGM bound is
    # an LP — so the functional check stops at the joins/query layers.)
    from repro.joins import generic_join
    from repro.query import parse_query
    from repro.relational.database import Database
    from repro.relational.relation import Relation

    rows = [(0, 1), (1, 2), (2, 0), (0, 2)]
    database = Database([Relation("R", ("X", "Y"), rows),
                         Relation("S", ("X", "Y"), rows),
                         Relation("T", ("X", "Y"), rows)])
    query = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
    if not list(generic_join(query, database).tuples):
        print("triangle join returned no rows without numpy", file=sys.stderr)
        return 1

    print(f"checked {len(CORE_MODULES)} core modules: importable and "
          "functional with numpy/scipy blocked; columnar degrades cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
