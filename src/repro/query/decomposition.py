"""Hypergraph acyclicity (GYO) and join trees.

Alpha-acyclicity is the classical notion under which a conjunctive query can
be answered in O(input + output) by Yannakakis' algorithm; cyclic queries
(triangles, Loomis–Whitney, cliques) are exactly the ones for which WCOJ
algorithms beat every pairwise plan.  The GYO (Graham / Yu–Ozsoyoglu) ear
removal procedure both decides acyclicity and, when acyclic, yields a join
tree.  We use it in tests and in the optimizer to recognise the easy cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.hypergraph import Hypergraph


@dataclass
class GYOResult:
    """Result of a GYO reduction.

    Attributes
    ----------
    acyclic:
        True when the hypergraph is alpha-acyclic.
    elimination_order:
        Edge keys in the order their "ears" were removed (only meaningful for
        the removed edges).
    remaining_edges:
        Edge keys that could not be removed; empty iff acyclic.
    parent:
        For each removed edge, the edge key of the witness it was absorbed
        into (None for the last remaining edge); together these parent links
        form a join tree when the hypergraph is acyclic.
    """

    acyclic: bool
    elimination_order: list[str] = field(default_factory=list)
    remaining_edges: list[str] = field(default_factory=list)
    parent: dict[str, str | None] = field(default_factory=dict)


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO ear-removal procedure.

    An edge F is an *ear* if there is another edge F' such that every vertex
    of F is either exclusive to F (appears in no other remaining edge) or
    also belongs to F'.  Ears are removed repeatedly; the hypergraph is
    alpha-acyclic iff all edges can be removed (equivalently, at most one
    edge remains).
    """
    edges = dict(hypergraph.edges)
    result = GYOResult(acyclic=False)

    def vertex_occurrences() -> dict[str, int]:
        occ: dict[str, int] = {}
        for members in edges.values():
            for v in members:
                occ[v] = occ.get(v, 0) + 1
        return occ

    changed = True
    while changed and len(edges) > 1:
        changed = False
        occ = vertex_occurrences()
        for key in list(edges.keys()):
            members = edges[key]
            exclusive = {v for v in members if occ[v] == 1}
            shared = members - exclusive
            witness = None
            if not shared:
                # All vertices exclusive: the edge is an isolated ear.
                witness_candidates = [k for k in edges if k != key]
                witness = witness_candidates[0] if witness_candidates else None
            else:
                for other_key, other_members in edges.items():
                    if other_key == key:
                        continue
                    if shared <= other_members:
                        witness = other_key
                        break
                if witness is None:
                    continue
            result.elimination_order.append(key)
            result.parent[key] = witness
            del edges[key]
            changed = True
            break

    result.remaining_edges = list(edges.keys())
    if len(edges) <= 1:
        result.acyclic = True
        if edges:
            last = next(iter(edges.keys()))
            result.elimination_order.append(last)
            result.parent[last] = None
    return result


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """True iff the hypergraph is alpha-acyclic (GYO reduces it fully)."""
    return gyo_reduction(hypergraph).acyclic


def join_tree(hypergraph: Hypergraph) -> dict[str, str | None]:
    """Return a join tree as child-edge -> parent-edge links.

    Raises
    ------
    ValueError
        If the hypergraph is not alpha-acyclic.
    """
    result = gyo_reduction(hypergraph)
    if not result.acyclic:
        raise ValueError("hypergraph is not alpha-acyclic; no join tree exists")
    return dict(result.parent)
