"""Width parameters of query hypergraphs: treewidth-style decompositions and
fractional hypertree width.

Section 1.1 of the paper credits the "new query plans" to variable
elimination / tree decompositions, and PANDA's significance (Section 5.2) is
that it meets refined width parameters (fractional hypertree width and
submodular width) over such decompositions.  This module provides the
decomposition machinery at query scale:

* tree decompositions induced by an elimination order (the standard
  construction: the bag of a variable is itself plus its higher neighbours in
  the fill-in graph);
* the *fractional hypertree width* of a decomposition — the maximum over
  bags of the fractional edge cover number rho* of the bag — and the query's
  fhtw as the minimum over all elimination orders (exact for the small,
  query-sized hypergraphs this library targets, via brute force over orders
  with a cheap greedy fallback for larger ones).

For alpha-acyclic queries fhtw = 1; for the triangle it is 3/2 (the single
bag {A,B,C} with the optimal (1/2,1/2,1/2) cover); fhtw never exceeds rho*
(the trivial one-bag decomposition).  The tests pin these well-known values.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from repro.covers.edge_cover import fractional_edge_cover_number
from repro.errors import QueryError
from repro.query.hypergraph import Hypergraph


@dataclass(frozen=True)
class TreeDecomposition:
    """A tree decomposition of a hypergraph.

    Attributes
    ----------
    bags:
        The bags, indexed by position.
    edges:
        Tree edges between bag indexes.
    elimination_order:
        The variable order that induced the decomposition (when applicable).
    """

    bags: tuple[frozenset[str], ...]
    edges: tuple[tuple[int, int], ...]
    elimination_order: tuple[str, ...]

    def width(self) -> int:
        """The classical treewidth-style width: max bag size - 1."""
        return max(len(bag) for bag in self.bags) - 1

    def fractional_hypertree_width(self, hypergraph: Hypergraph) -> float:
        """max over bags of rho*(bag) with respect to ``hypergraph``'s edges."""
        worst = 0.0
        for bag in self.bags:
            worst = max(worst, _bag_rho_star(hypergraph, bag))
        return worst

    def is_valid_for(self, hypergraph: Hypergraph) -> bool:
        """Check the three tree-decomposition properties."""
        vertices = set(hypergraph.vertices)
        covered = set()
        for bag in self.bags:
            covered |= bag
        if covered != vertices:
            return False
        # Every edge inside some bag.
        for edge in hypergraph.edges.values():
            if not any(edge <= bag for bag in self.bags):
                return False
        # Running intersection: bags containing any vertex form a connected
        # subtree.
        tree = nx.Graph()
        tree.add_nodes_from(range(len(self.bags)))
        tree.add_edges_from(self.edges)
        if len(self.bags) > 1 and not nx.is_connected(tree):
            return False
        for vertex in vertices:
            nodes = [i for i, bag in enumerate(self.bags) if vertex in bag]
            if not nodes:
                return False
            if len(nodes) > 1 and not nx.is_connected(tree.subgraph(nodes)):
                return False
        return True


def _bag_rho_star(hypergraph: Hypergraph, bag: frozenset[str]) -> float:
    """rho* of a bag: fractional edge cover of the bag's vertices using the
    hypergraph's edges restricted to the bag."""
    edges = {}
    for key, edge in hypergraph.edges.items():
        restricted = edge & bag
        if restricted:
            edges[key] = restricted
    if not edges:
        raise QueryError(f"bag {sorted(bag)} is not touched by any edge")
    sub = Hypergraph(tuple(sorted(bag)), edges)
    return fractional_edge_cover_number(sub)


def decomposition_from_elimination_order(hypergraph: Hypergraph,
                                         order: Sequence[str]) -> TreeDecomposition:
    """The tree decomposition induced by eliminating variables in ``order``.

    The standard construction on the primal (Gaifman) graph: eliminate
    variables one by one, each elimination creating a bag of the variable
    plus its current neighbours and adding fill-in edges among those
    neighbours.  Bags are connected to the first later bag containing all the
    remaining neighbours, which yields the running-intersection property.
    """
    order = tuple(order)
    if sorted(order) != sorted(hypergraph.vertices):
        raise QueryError("elimination order must be a permutation of the vertices")

    graph = nx.Graph()
    graph.add_nodes_from(hypergraph.vertices)
    for edge in hypergraph.edges.values():
        for a, b in itertools.combinations(sorted(edge), 2):
            graph.add_edge(a, b)

    working = graph.copy()
    bags: list[frozenset[str]] = []
    bag_of_variable: dict[str, int] = {}
    for variable in order:
        neighbours = set(working.neighbors(variable))
        bag = frozenset({variable} | neighbours)
        bag_of_variable[variable] = len(bags)
        bags.append(bag)
        for a, b in itertools.combinations(sorted(neighbours), 2):
            working.add_edge(a, b)
        working.remove_node(variable)

    position = {v: i for i, v in enumerate(order)}
    edges: list[tuple[int, int]] = []
    for i, variable in enumerate(order):
        rest = bags[i] - {variable}
        if not rest:
            continue
        # Connect to the bag of the earliest-eliminated remaining member.
        successor = min(rest, key=lambda v: position[v])
        edges.append((i, bag_of_variable[successor]))

    return TreeDecomposition(bags=tuple(bags), edges=tuple(edges),
                             elimination_order=order)


def fractional_hypertree_width(hypergraph: Hypergraph,
                               max_exact_vertices: int = 6) -> float:
    """The fractional hypertree width fhtw(H).

    Exact (brute force over elimination orders) when the hypergraph has at
    most ``max_exact_vertices`` vertices — which covers the query sizes this
    library deals with — and a min-fill greedy upper bound beyond that.
    """
    vertices = hypergraph.vertices
    if len(vertices) <= max_exact_vertices:
        best = float("inf")
        for order in itertools.permutations(vertices):
            decomposition = decomposition_from_elimination_order(hypergraph, order)
            best = min(best, decomposition.fractional_hypertree_width(hypergraph))
        return best
    order = min_fill_order(hypergraph)
    decomposition = decomposition_from_elimination_order(hypergraph, order)
    return decomposition.fractional_hypertree_width(hypergraph)


def min_fill_order(hypergraph: Hypergraph) -> tuple[str, ...]:
    """The classic min-fill elimination-order heuristic on the primal graph."""
    graph = nx.Graph()
    graph.add_nodes_from(hypergraph.vertices)
    for edge in hypergraph.edges.values():
        for a, b in itertools.combinations(sorted(edge), 2):
            graph.add_edge(a, b)
    order: list[str] = []
    working = graph.copy()
    while working.nodes:
        def fill_in(v: str) -> int:
            neighbours = list(working.neighbors(v))
            missing = 0
            for a, b in itertools.combinations(neighbours, 2):
                if not working.has_edge(a, b):
                    missing += 1
            return missing

        choice = min(sorted(working.nodes), key=fill_in)
        neighbours = list(working.neighbors(choice))
        for a, b in itertools.combinations(neighbours, 2):
            working.add_edge(a, b)
        working.remove_node(choice)
        order.append(choice)
    return tuple(order)


def best_decomposition(hypergraph: Hypergraph,
                       max_exact_vertices: int = 6) -> TreeDecomposition:
    """A tree decomposition achieving :func:`fractional_hypertree_width`."""
    vertices = hypergraph.vertices
    candidates: Iterable[Sequence[str]]
    if len(vertices) <= max_exact_vertices:
        candidates = itertools.permutations(vertices)
    else:
        candidates = [min_fill_order(hypergraph)]
    best: TreeDecomposition | None = None
    best_width = float("inf")
    for order in candidates:
        decomposition = decomposition_from_elimination_order(hypergraph, order)
        width = decomposition.fractional_hypertree_width(hypergraph)
        if width < best_width - 1e-12:
            best_width = width
            best = decomposition
    assert best is not None
    return best
