"""The query model: atoms, conjunctive queries, and the unified surface.

Classical pieces (hypergraphs, orderings, decompositions) live beside the
rich declarative surface: :class:`~repro.query.builder.Query` with its
chainable ``Q`` builder, term constants, comparison selections, semiring
aggregates, and ordered/top-k result controls.
"""

from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.builder import Q, Query, QueryAtom, QueryBuilder, sort_rows
from repro.query.hypergraph import Hypergraph
from repro.query.parser import parse_condition, parse_query
from repro.query.semiring import (
    Aggregate,
    BOOLEAN,
    Semiring,
    SEMIRINGS,
    avg_,
    count,
    fold_aggregates,
    max_,
    min_,
    register_semiring,
    sum_,
)
from repro.query.terms import Comparison, Constant, comparison, make_term
from repro.query.variable_order import (
    aggregate_elimination_order,
    natural_order,
    greedy_min_domain_order,
    min_degree_order,
    pushdown_order,
)
from repro.query.decomposition import (
    gyo_reduction,
    is_alpha_acyclic,
    join_tree,
)
from repro.query.widths import (
    TreeDecomposition,
    decomposition_from_elimination_order,
    fractional_hypertree_width,
    min_fill_order,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Q",
    "Query",
    "QueryAtom",
    "QueryBuilder",
    "sort_rows",
    "Hypergraph",
    "parse_query",
    "parse_condition",
    "Aggregate",
    "BOOLEAN",
    "Semiring",
    "SEMIRINGS",
    "avg_",
    "count",
    "fold_aggregates",
    "max_",
    "min_",
    "register_semiring",
    "sum_",
    "Comparison",
    "Constant",
    "comparison",
    "make_term",
    "aggregate_elimination_order",
    "natural_order",
    "greedy_min_domain_order",
    "min_degree_order",
    "pushdown_order",
    "gyo_reduction",
    "is_alpha_acyclic",
    "join_tree",
    "TreeDecomposition",
    "decomposition_from_elimination_order",
    "fractional_hypertree_width",
    "min_fill_order",
]
