"""Conjunctive-query model: atoms, queries, hypergraphs, parsing, orderings."""

from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.hypergraph import Hypergraph
from repro.query.parser import parse_query
from repro.query.variable_order import (
    natural_order,
    greedy_min_domain_order,
    min_degree_order,
)
from repro.query.decomposition import (
    gyo_reduction,
    is_alpha_acyclic,
    join_tree,
)
from repro.query.widths import (
    TreeDecomposition,
    decomposition_from_elimination_order,
    fractional_hypertree_width,
    min_fill_order,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Hypergraph",
    "parse_query",
    "natural_order",
    "greedy_min_domain_order",
    "min_degree_order",
    "gyo_reduction",
    "is_alpha_acyclic",
    "join_tree",
    "TreeDecomposition",
    "decomposition_from_elimination_order",
    "fractional_hypertree_width",
    "min_fill_order",
]
