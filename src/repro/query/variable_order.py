"""Variable-ordering heuristics for WCOJ algorithms.

Generic-Join, Leapfrog Triejoin and the backtracking-search algorithm all fix
a global variable order and then compute one variable at a time.  Worst-case
optimality does not depend on the order (any order achieves the AGM bound for
cardinality constraints), but practical performance does; these heuristics
are the standard ones used by engines built on these algorithms.
"""

from __future__ import annotations

import itertools
import math

from typing import Any, Callable, Collection, Sequence

from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.statistics import max_degree


def natural_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Variables in order of first occurrence in the query body."""
    return query.variables


#: Bounded memo tables for the pure order functions.  Both
#: :func:`min_degree_order` and :func:`_best_tail_order` are pure
#: functions of hashable inputs, yet were re-run on every call — the
#: tail scorer re-enumerating up to ``max_exact_tail!`` permutations
#: (each scored through a tree decomposition) every time the dispatcher
#: priced the same query: repeated one-shot calls, profile/analyze runs
#: pricing all strategies, and re-plans of queries the plan cache had
#: already seen.  FIFO eviction (dicts preserve insertion order) keeps
#: the tables bounded without LRU bookkeeping.
_ORDER_MEMO_MAX = 1024
_min_degree_memo: dict = {}
_tail_order_memo: dict = {}


def _memoize(cache: dict, key: Any, compute: Callable[[], Any]) -> Any:
    """Serve ``compute()`` through ``cache`` under FIFO eviction."""
    if key in cache:
        return cache[key]
    value = compute()
    if len(cache) >= _ORDER_MEMO_MAX:
        cache.pop(next(iter(cache)))
    cache[key] = value
    return value


def min_degree_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Order variables by decreasing atom-degree (number of atoms containing
    them), breaking ties by variable name.

    Variables shared by many atoms are intersected against many relations,
    which tends to shrink the search space early.  The explicit name
    tie-break makes the order a pure function of the query *structure*, not
    of the order atoms happen to be listed in — two syntactic permutations of
    the same query always evaluate with the same variable order, which is
    what the engine's plan cache relies on when it reuses orders across
    isomorphic queries.  Being pure, the result is memoized per query.
    """
    def compute() -> tuple[str, ...]:
        return tuple(
            sorted(
                query.variables,
                key=lambda v: (-len(query.atoms_containing(v)), v),
            )
        )

    try:
        return _memoize(_min_degree_memo, query, compute)
    except TypeError:  # unhashable constants in atoms
        return compute()


def pushdown_order(query: ConjunctiveQuery,
                   fixed: Collection[str] = (),
                   leading: Collection[str] = ()) -> tuple[str, ...]:
    """A min-degree order refined for selection/projection pushdown.

    Variables pinned to a single value by a constant-equality selection
    (``fixed``) come first — binding them at the top restricts every atom
    containing them for the entire search, which is what makes constant
    pushdown run *below* the join.  The ``leading`` block (head /
    group-by variables) follows, so that with every earlier variable
    pinned, the head variables form a prefix of the order and projection
    can deduplicate *early*: the trailing variables are existential and
    the recursion stops at their first witness.  The remaining variables
    close the order.  Within each block the min-degree heuristic (with
    its name tie-break) applies, so the result is still a pure function
    of the query structure.
    """
    blocks = {v: 0 for v in fixed}
    for v in leading:
        blocks.setdefault(v, 1)
    return tuple(
        sorted(
            query.variables,
            key=lambda v: (blocks.get(v, 2),
                           -len(query.atoms_containing(v)), v),
        )
    )


def skew_split(query: ConjunctiveQuery, database: Database
               ) -> tuple[str, float, int]:
    """Pick the hybrid strategy's skew variable and degree threshold.

    For each variable v the candidate threshold is the paper's
    |R|^(1/2)-style balancing point — sqrt of the largest relation
    touching v (heavy side gets <= sqrt|R| distinct keys, light side
    degree <= sqrt|R|) — and the skew evidence is the maximum per-value
    degree of v over its touching relations.  The variable with the
    largest degree/threshold ratio wins (name tie-break), so the returned
    triple ``(variable, threshold, max_degree)`` is a pure function of
    the instance statistics.  ``max_degree <= threshold`` means the
    instance shows no skew worth partitioning on.
    """
    best: tuple[float, str, float, int] | None = None
    for v in query.variables:
        deg = 0
        size = 0
        for atom in query.atoms_containing(v):
            relation = database.get(atom.relation)
            attr = relation.attributes[atom.variables.index(v)]
            deg = max(deg, max_degree(relation, attr))
            size = max(size, len(relation))
        threshold = math.sqrt(size)
        score = deg / threshold if threshold > 0 else 0.0
        if best is None or score > best[0] or (score == best[0] and v < best[1]):
            best = (score, v, threshold, deg)
    if best is None:  # pragma: no cover - atoms always carry variables
        raise ValueError("query has no variables to split on")
    return best[1], best[2], best[3]


def hybrid_light_order(query: ConjunctiveQuery, skew: str,
                       fixed: Collection[str] = (),
                       leading: Collection[str] = ()) -> tuple[str, ...]:
    """The light-side variable order for a hybrid plan.

    Like :func:`pushdown_order` but with the skew variable promoted to
    its own block right after the constant-fixed variables: binding the
    partition variable first keeps every light-side intersection below
    the degree threshold from the very top of the search, which is the
    whole point of the light residual.
    """
    blocks = {v: 0 for v in fixed}
    blocks.setdefault(skew, 1)
    for v in leading:
        blocks.setdefault(v, 2)
    return tuple(
        sorted(
            query.variables,
            key=lambda v: (blocks.get(v, 3),
                           -len(query.atoms_containing(v)), v),
        )
    )


def _best_tail_order(query: ConjunctiveQuery, prefix: tuple[str, ...],
                     tail: tuple[str, ...], max_exact_tail: int,
                     selections: Sequence = (), factorize: bool = True,
                     ) -> tuple[tuple[str, ...], float]:
    """The prefix + width-minimizing tail, scored *per residual component*.

    Shared by the aggregate and ranked planners.  Conditioned on the
    prefix (the separator the executors bind before eliminating), the
    tail splits into the connected components of the residual hypergraph
    (:meth:`repro.query.hypergraph.Hypergraph.residual_components`, the
    query's ``selections`` passed as couplings so a predicate spanning
    components glues them — exactly the split the factorized eliminator
    executes).  Each component's permutation is therefore chosen (and
    priced) on its own: candidates are scored by the tree decomposition
    their reversed binding order induces on the component's induced
    sub-hypergraph (elimination runs innermost-first), first by integer
    width (cheap, no LP); the returned width proxy is the **maximum over
    components** of the winner's fractional hypertree width — the exact
    FAQ-bound exponent of factorized elimination, where the monolithic
    tail width would overcharge product-decomposable tails.

    Scoring per component also shrinks the search: a tail of three
    independent pairs costs ``3·2!`` candidate scores instead of ``6!``,
    and a component longer than ``max_exact_tail`` falls back to its
    heuristic single candidate without giving up exactness elsewhere.

    ``factorize=False`` scores the whole tail as one component — the
    exponent a *monolithic* fold pays, which is what callers must price
    when an aggregate's semiring has no product and the executor cannot
    factorize.

    The scored result is memoized: the function is pure, and its inputs
    affect the answer only through the hypergraph, the prefix/tail split
    and the selections' variable sets (couplings), so repeated pricing of
    the same query — every ``profile``/``analyze`` run re-dispatches it,
    and isomorphic re-plans recompute it — skips the permutation sweep.
    """
    def compute() -> tuple[tuple[str, ...], float]:
        return _score_tail_order(query, prefix, tail, max_exact_tail,
                                 selections, factorize)

    try:
        key = (query, prefix, tail, max_exact_tail,
               tuple(frozenset(sel.variables) for sel in selections),
               bool(factorize))
        return _memoize(_tail_order_memo, key, compute)
    except TypeError:  # unhashable constants in atoms or selections
        return compute()


def _score_tail_order(query: ConjunctiveQuery, prefix: tuple[str, ...],
                      tail: tuple[str, ...], max_exact_tail: int,
                      selections: Sequence = (), factorize: bool = True,
                      ) -> tuple[tuple[str, ...], float]:
    """The uncached permutation sweep behind :func:`_best_tail_order`."""
    from repro.query.widths import decomposition_from_elimination_order

    hypergraph = query.hypergraph()
    if not tail:
        decomp = decomposition_from_elimination_order(
            hypergraph, tuple(reversed(prefix)))
        return prefix, decomp.fractional_hypertree_width(hypergraph)

    tail_position = {v: i for i, v in enumerate(tail)}
    if factorize:
        split = hypergraph.residual_components(
            prefix, couplings=[sel.variables for sel in selections])
    else:
        split = (frozenset(tail),)
    components = sorted(
        (tuple(sorted(c, key=tail_position.__getitem__)) for c in split),
        key=lambda c: tail_position[c[0]],
    )

    order = prefix
    width = 0.0
    for component in components:
        sub = (hypergraph if len(components) == 1
               else hypergraph.restrict_to(set(prefix) | set(component)))
        if len(component) > 1 and len(component) <= max_exact_tail:
            candidates = itertools.permutations(component)
        else:
            candidates = iter((component,))
        best_perm: tuple[str, ...] | None = None
        best_decomp = None
        best_width = None
        for perm in candidates:
            decomp = decomposition_from_elimination_order(
                sub, tuple(reversed(prefix + tuple(perm))))
            w = decomp.width()
            if best_width is None or w < best_width:
                best_perm, best_decomp, best_width = tuple(perm), decomp, w
        assert best_perm is not None and best_decomp is not None
        order = order + best_perm
        width = max(width, best_decomp.fractional_hypertree_width(sub))
    return order, width


def aggregate_elimination_order(query: ConjunctiveQuery,
                                group: Collection[str] = (),
                                fixed: Collection[str] = (),
                                max_exact_tail: int = 5,
                                selections: Sequence = (),
                                factorize: bool = True,
                                ) -> tuple[tuple[str, ...], float]:
    """A binding order for in-recursion (FAQ-style) aggregation.

    The returned order keeps the constant-pinned variables (``fixed``) and
    then the group-by variables (``group``) as a prefix — the shape
    :func:`repro.joins.generic_join.wcoj_stream` requires so each group
    binding's tail collapses to semiring values — and chooses the
    *elimination tail* to minimize induced width: every candidate tail
    permutation is scored by the tree decomposition its reversed order
    induces (:func:`repro.query.widths.decomposition_from_elimination_order`
    — FAQ eliminates innermost-first, so the elimination order is the
    binding order reversed), first by integer width (cheap, no LP), and
    the winner's fractional hypertree width over those bags is returned as
    the FAQ-width proxy the dispatcher prices with.  For alpha-acyclic
    queries some tail achieves width 1, which is what makes acyclic
    group-bys output-linear instead of join-linear.

    Tails longer than ``max_exact_tail`` fall back to the min-degree
    heuristic (one candidate) rather than enumerating permutations.  The
    prefix is ordered by the same block heuristic as
    :func:`pushdown_order`, so the whole result is a deterministic
    function of the query structure.  The tail is chosen and priced per
    residual component (``selections`` glue the components they span;
    ``factorize=False`` prices the monolithic fold instead — see
    :func:`_best_tail_order`).

    Returns ``(order, width)``.
    """
    base = pushdown_order(query, fixed=fixed, leading=group)
    prefix_set = set(fixed) | set(group)
    prefix = tuple(v for v in base if v in prefix_set)
    tail = tuple(v for v in base if v not in prefix_set)
    return _best_tail_order(query, prefix, tail, max_exact_tail,
                            selections=selections, factorize=factorize)


def ranked_order(query: ConjunctiveQuery,
                 keys: Sequence[str],
                 fixed: Collection[str] = (),
                 head: Collection[str] = (),
                 max_exact_tail: int = 5,
                 selections: Sequence = (),
                 ) -> tuple[tuple[str, ...], float]:
    """A binding order for any-k ranked enumeration.

    The order any-k needs mirrors the aggregate prefix machinery, with the
    ORDER BY columns joining it: constant-pinned variables (``fixed``)
    first, then the ORDER BY ``keys`` *in key sequence* (so the priority
    frontier's pops are keyed on complete, distinct sort-key prefixes),
    then the remaining ``head`` variables (so emission enumerates each
    rank-tie class without a dedup set), and finally the existential tail,
    chosen to minimize induced width exactly like
    :func:`aggregate_elimination_order` — the tail is what the boolean
    and ranking eliminators fold away, and its width governs the cost of
    the bottom-up best-suffix DP.

    Returns ``(order, width)`` where ``width`` is the fractional
    hypertree width of the winning tail's decomposition (the dispatcher's
    proxy for the any-k setup cost).
    """
    fixed_set = set(fixed)
    key_block: list[str] = []
    for key in keys:
        if key not in fixed_set and key not in key_block:
            key_block.append(key)
    base = pushdown_order(query, fixed=fixed, leading=head)
    prefix_set = fixed_set | set(key_block) | set(head)
    prefix = (tuple(v for v in base if v in fixed_set)
              + tuple(key_block)
              + tuple(v for v in base
                      if v in prefix_set
                      and v not in fixed_set and v not in key_block))
    tail = tuple(v for v in base if v not in prefix_set)
    return _best_tail_order(query, prefix, tail, max_exact_tail,
                            selections=selections)


def greedy_min_domain_order(query: ConjunctiveQuery, database: Database
                            ) -> tuple[str, ...]:
    """Order variables by increasing estimated domain size.

    The estimate for a variable is the minimum, over atoms containing it, of
    the number of distinct values the corresponding relation column takes —
    i.e. the size of the smallest set that will ever be intersected for that
    variable.  Smaller domains first keeps the top of the search tree narrow.
    """
    query.validate_against(database)
    estimates: dict[str, int] = {}
    for variable in query.variables:
        sizes = []
        for atom in query.atoms_containing(variable):
            relation = database.get(atom.relation)
            column = relation.attributes[atom.variables.index(variable)]
            sizes.append(len(relation.column(column)))
        estimates[variable] = min(sizes) if sizes else 0
    occurrence = {v: i for i, v in enumerate(query.variables)}
    return tuple(
        sorted(query.variables, key=lambda v: (estimates[v], occurrence[v]))
    )


def validate_order(query: ConjunctiveQuery, order: Sequence[str]) -> tuple[str, ...]:
    """Check that ``order`` is a permutation of the query variables and return
    it as a tuple.

    Raises
    ------
    ValueError
        If the order misses or repeats variables.
    """
    order = tuple(order)
    if sorted(order) != sorted(query.variables):
        raise ValueError(
            f"variable order {order} is not a permutation of {query.variables}"
        )
    return order
