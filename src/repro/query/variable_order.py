"""Variable-ordering heuristics for WCOJ algorithms.

Generic-Join, Leapfrog Triejoin and the backtracking-search algorithm all fix
a global variable order and then compute one variable at a time.  Worst-case
optimality does not depend on the order (any order achieves the AGM bound for
cardinality constraints), but practical performance does; these heuristics
are the standard ones used by engines built on these algorithms.
"""

from __future__ import annotations

from typing import Collection, Sequence

from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database


def natural_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Variables in order of first occurrence in the query body."""
    return query.variables


def min_degree_order(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Order variables by decreasing atom-degree (number of atoms containing
    them), breaking ties by variable name.

    Variables shared by many atoms are intersected against many relations,
    which tends to shrink the search space early.  The explicit name
    tie-break makes the order a pure function of the query *structure*, not
    of the order atoms happen to be listed in — two syntactic permutations of
    the same query always evaluate with the same variable order, which is
    what the engine's plan cache relies on when it reuses orders across
    isomorphic queries.
    """
    return tuple(
        sorted(
            query.variables,
            key=lambda v: (-len(query.atoms_containing(v)), v),
        )
    )


def pushdown_order(query: ConjunctiveQuery,
                   fixed: Collection[str] = (),
                   leading: Collection[str] = ()) -> tuple[str, ...]:
    """A min-degree order refined for selection/projection pushdown.

    Variables pinned to a single value by a constant-equality selection
    (``fixed``) come first — binding them at the top restricts every atom
    containing them for the entire search, which is what makes constant
    pushdown run *below* the join.  The ``leading`` block (head /
    group-by variables) follows, so that with every earlier variable
    pinned, the head variables form a prefix of the order and projection
    can deduplicate *early*: the trailing variables are existential and
    the recursion stops at their first witness.  The remaining variables
    close the order.  Within each block the min-degree heuristic (with
    its name tie-break) applies, so the result is still a pure function
    of the query structure.
    """
    blocks = {v: 0 for v in fixed}
    for v in leading:
        blocks.setdefault(v, 1)
    return tuple(
        sorted(
            query.variables,
            key=lambda v: (blocks.get(v, 2),
                           -len(query.atoms_containing(v)), v),
        )
    )


def greedy_min_domain_order(query: ConjunctiveQuery, database: Database
                            ) -> tuple[str, ...]:
    """Order variables by increasing estimated domain size.

    The estimate for a variable is the minimum, over atoms containing it, of
    the number of distinct values the corresponding relation column takes —
    i.e. the size of the smallest set that will ever be intersected for that
    variable.  Smaller domains first keeps the top of the search tree narrow.
    """
    query.validate_against(database)
    estimates: dict[str, int] = {}
    for variable in query.variables:
        sizes = []
        for atom in query.atoms_containing(variable):
            relation = database.get(atom.relation)
            column = relation.attributes[atom.variables.index(variable)]
            sizes.append(len(relation.column(column)))
        estimates[variable] = min(sizes) if sizes else 0
    occurrence = {v: i for i, v in enumerate(query.variables)}
    return tuple(
        sorted(query.variables, key=lambda v: (estimates[v], occurrence[v]))
    )


def validate_order(query: ConjunctiveQuery, order: Sequence[str]) -> tuple[str, ...]:
    """Check that ``order`` is a permutation of the query variables and return
    it as a tuple.

    Raises
    ------
    ValueError
        If the order misses or repeats variables.
    """
    order = tuple(order)
    if sorted(order) != sorted(query.variables):
        raise ValueError(
            f"variable order {order} is not a permutation of {query.variables}"
        )
    return order
