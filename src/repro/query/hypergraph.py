"""Multi-hypergraphs associated with conjunctive queries.

A query's hypergraph H = ([n], E) has one vertex per variable and one edge
per atom (Section 3.1).  Because the same variable set may appear in several
atoms (a multi-hypergraph), edges are keyed by a label rather than stored as
a set of sets.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import QueryError


class Hypergraph:
    """A labelled multi-hypergraph.

    Parameters
    ----------
    vertices:
        Vertex names in a fixed order.
    edges:
        Mapping from edge key (e.g. atom/relation name) to the frozenset of
        vertices the edge covers.  Every edge must be a subset of the vertex
        set and non-empty.
    """

    __slots__ = ("_vertices", "_edges")

    def __init__(self, vertices: Sequence[str], edges: Mapping[str, Iterable[str]]):
        self._vertices = tuple(vertices)
        if len(set(self._vertices)) != len(self._vertices):
            raise QueryError(f"duplicate vertices: {self._vertices}")
        vertex_set = set(self._vertices)
        normalized: dict[str, frozenset[str]] = {}
        for key, members in edges.items():
            edge = frozenset(members)
            if not edge:
                raise QueryError(f"edge {key!r} is empty")
            extra = edge - vertex_set
            if extra:
                raise QueryError(f"edge {key!r} mentions unknown vertices {sorted(extra)}")
            normalized[key] = edge
        if not normalized:
            raise QueryError("a hypergraph needs at least one edge")
        self._edges = normalized

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> tuple[str, ...]:
        """Vertex names in order."""
        return self._vertices

    @property
    def edges(self) -> dict[str, frozenset[str]]:
        """Edge key -> vertex set (a copy)."""
        return dict(self._edges)

    @property
    def edge_keys(self) -> tuple[str, ...]:
        """All edge keys."""
        return tuple(self._edges.keys())

    def edge(self, key: str) -> frozenset[str]:
        """The vertex set of edge ``key``."""
        try:
            return self._edges[key]
        except KeyError:
            raise QueryError(f"no edge with key {key!r}") from None

    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    def num_edges(self) -> int:
        """Number of edges (counting multiplicity)."""
        return len(self._edges)

    def edges_containing(self, vertex: str) -> tuple[str, ...]:
        """Keys of edges containing ``vertex`` (the set ∂(v) of the paper)."""
        if vertex not in self._vertices:
            raise QueryError(f"unknown vertex {vertex!r}")
        return tuple(k for k, e in self._edges.items() if vertex in e)

    def vertex_degree(self, vertex: str) -> int:
        """Number of edges containing ``vertex``."""
        return len(self.edges_containing(vertex))

    def is_cover(self, weights: Mapping[str, float], tolerance: float = 1e-9) -> bool:
        """Check whether non-negative edge weights form a fractional edge
        cover: every vertex is covered with total weight >= 1."""
        for key, w in weights.items():
            if key not in self._edges:
                raise QueryError(f"weight given for unknown edge {key!r}")
            if w < -tolerance:
                return False
        for v in self._vertices:
            total = sum(w for key, w in weights.items() if v in self._edges[key])
            if total < 1 - tolerance:
                return False
        return True

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def remove_vertex(self, vertex: str) -> "Hypergraph":
        """The hypergraph obtained by deleting ``vertex`` from every edge and
        dropping edges that become empty.

        This is the H' construction used in the inductive proof of
        Friedgut's inequality (Theorem 4.1): edges containing the removed
        vertex are replaced by their projections.  If every edge becomes
        empty a :class:`QueryError` is raised.
        """
        if vertex not in self._vertices:
            raise QueryError(f"unknown vertex {vertex!r}")
        new_vertices = tuple(v for v in self._vertices if v != vertex)
        new_edges = {}
        for key, edge in self._edges.items():
            reduced = edge - {vertex}
            if reduced:
                new_edges[key] = reduced
        if not new_edges:
            raise QueryError("removing vertex would leave no edges")
        return Hypergraph(new_vertices, new_edges)

    def restrict_to(self, vertices: Iterable[str]) -> "Hypergraph":
        """Induced sub-hypergraph on ``vertices`` (edges intersected, empties
        dropped)."""
        keep = set(vertices)
        unknown = keep - set(self._vertices)
        if unknown:
            raise QueryError(f"unknown vertices {sorted(unknown)}")
        new_vertices = tuple(v for v in self._vertices if v in keep)
        new_edges = {}
        for key, edge in self._edges.items():
            reduced = edge & keep
            if reduced:
                new_edges[key] = reduced
        if not new_edges:
            raise QueryError("restriction would leave no edges")
        return Hypergraph(new_vertices, new_edges)

    def covers_all_vertices(self) -> bool:
        """True if every vertex appears in at least one edge."""
        covered = set()
        for edge in self._edges.values():
            covered |= edge
        return covered == set(self._vertices)

    def residual_components(self, conditioned: Iterable[str] = (),
                            couplings: Iterable[Iterable[str]] = ()
                            ) -> tuple[frozenset[str], ...]:
        """Connected components of the residual hypergraph H | conditioned.

        Conditioning on a set of vertices (a bound separator, in the FAQ /
        variable-elimination reading) deletes them from every edge; two
        remaining vertices are connected when some edge contains both.
        The components are the conditionally-independent sub-problems of
        the residual query: an eliminator may fold each component
        separately and combine the per-component values with the semiring
        product, and a planner may order and price each component's tail
        on its own.

        ``couplings`` are extra virtual edges — in practice the variable
        sets of the query's selections, whose truth couples the
        assignments of every unconditioned variable they read, so the
        components they span must be glued together.  Passing *all*
        selections is safe: members in ``conditioned`` drop out exactly
        like edge members, so a selection fully bound by the separator
        glues nothing.  This is the single component-split rule shared by
        the executors' eliminators, the planner's tail scoring, and
        ``explain()``.

        Vertices in ``conditioned`` (or coupling members) that are not in
        the hypergraph are ignored (a separator may mention variables an
        induced subquery no longer has).  Components are returned in a
        deterministic order: sorted by the position of their earliest
        vertex in ``vertices``.
        """
        conditioned = set(conditioned)
        remaining = [v for v in self._vertices if v not in conditioned]
        remaining_set = set(remaining)
        parent: dict[str, str] = {v: v for v in remaining}

        def find(v: str) -> str:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        groups_of: Iterable[Iterable[str]] = (
            list(self._edges.values()) + [set(c) for c in couplings]
        )
        for group in groups_of:
            members = [v for v in group if v in remaining_set]
            for other in members[1:]:
                root_a, root_b = find(members[0]), find(other)
                if root_a != root_b:
                    parent[root_b] = root_a
        grouped: dict[str, list[str]] = {}
        for v in remaining:  # vertex order makes the grouping deterministic
            grouped.setdefault(find(v), []).append(v)
        return tuple(frozenset(group) for group in grouped.values())

    def __repr__(self) -> str:
        edges = {k: sorted(v) for k, v in self._edges.items()}
        return f"Hypergraph(vertices={list(self._vertices)!r}, edges={edges!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return set(self._vertices) == set(other._vertices) and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((frozenset(self._vertices), frozenset(self._edges.items())))
