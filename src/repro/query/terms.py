"""Terms and comparison selections for the rich query surface.

The paper's conjunctive queries mention only variables, but the unified
:class:`repro.query.builder.Query` surface also allows *constants* in atom
positions (``R(A, 5)``) and *comparison selections* between terms
(``A < B``, ``A != 3``).  This module defines the term vocabulary shared by
the parser, the builder, and the engine's pushdown machinery:

* a term is either a variable (a plain ``str`` matching the identifier
  grammar) or a :class:`Constant` wrapping an arbitrary value;
* a :class:`Comparison` is a selection predicate ``lhs op rhs`` whose left
  side is always a variable (constant-vs-constant predicates are folded away
  at construction, and constant-vs-variable ones are mirrored).

Comparisons know how to evaluate themselves against a partial variable
binding and how to render themselves in canonical vocabulary, which is what
lets the plan cache share entries between isomorphic selected queries.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Any, Mapping, Union

from repro.errors import QueryError

#: The identifier grammar shared with the parser.
VARIABLE_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


@dataclass(frozen=True)
class Constant:
    """A constant value appearing in an atom position or a comparison."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


#: A term: a variable name or a constant.
Term = Union[str, Constant]


def is_variable(term: Term) -> bool:
    """True when ``term`` is a variable name (an identifier string)."""
    return isinstance(term, str) and bool(VARIABLE_RE.match(term))


def make_term(value: Any) -> Term:
    """Coerce a Python value into a term.

    Identifier strings become variables; quoted strings (``"'x'"``) become
    string constants; every non-string value (and any :class:`Constant`)
    becomes / stays a constant.  A non-identifier, non-quoted string is
    rejected rather than guessed at.
    """
    if isinstance(value, Constant):
        return value
    if isinstance(value, str):
        if VARIABLE_RE.match(value):
            return value
        if len(value) >= 2 and value[0] == value[-1] and value[0] in "'\"":
            return Constant(value[1:-1])
        raise QueryError(
            f"string term {value!r} is neither a variable name nor a quoted "
            "constant; write 'text' (quoted) for a string constant"
        )
    return Constant(value)


#: Comparison operators and their evaluation functions.
COMPARISON_OPS: dict[str, Any] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: The mirror image of each operator (for flipping operand order).
_MIRROR = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class Comparison:
    """A selection predicate ``lhs op rhs``.

    ``lhs`` is always a variable; ``rhs`` is a variable or a
    :class:`Constant`.  Use :func:`comparison` to build one from raw
    operands (it normalizes ``=`` to ``==`` and mirrors constant-first
    predicates).
    """

    lhs: str
    op: str
    rhs: Term

    @property
    def variables(self) -> frozenset[str]:
        """The variables this predicate reads."""
        if isinstance(self.rhs, Constant):
            return frozenset((self.lhs,))
        return frozenset((self.lhs, self.rhs))

    @property
    def is_constant_equality(self) -> bool:
        """True for ``var == constant`` — the strongest pushdown shape."""
        return self.op == "==" and isinstance(self.rhs, Constant)

    def evaluate(self, binding: Mapping[str, Any]) -> bool:
        """Whether the predicate holds under ``binding`` (all vars bound).

        Incomparable value types (e.g. ``1 < "x"``) evaluate to False
        rather than raising — mixed-type columns simply never match, the
        same convention the join algorithms follow.
        """
        left = binding[self.lhs]
        right = self.rhs.value if isinstance(self.rhs, Constant) else binding[self.rhs]
        try:
            return bool(COMPARISON_OPS[self.op](left, right))
        except TypeError:
            return False

    def canonical_str(self, rename: Mapping[str, str]) -> str:
        """Render in canonical variable names, normalized for symmetry.

        ``==``/``!=`` operands are sorted and ``>``/``>=`` are flipped to
        ``<``/``<=`` so that e.g. ``A > B`` and ``B < A`` render identically
        — equal renderings mean equal predicates up to renaming.
        """
        left = rename[self.lhs]
        right = str(self.rhs) if isinstance(self.rhs, Constant) else rename[self.rhs]
        op = self.op
        if op in (">", ">="):
            left, right, op = right, left, _MIRROR[op]
        elif op in ("==", "!=") and not isinstance(self.rhs, Constant):
            left, right = sorted((left, right))
        return f"{left}{op}{right}"

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


def comparison(lhs: Any, op: str, rhs: Any) -> Comparison:
    """Build a normalized :class:`Comparison` from raw operands.

    Accepts ``=`` as a synonym of ``==``; mirrors the predicate when only
    the right side is a variable; rejects constant-vs-constant predicates
    (they belong in the caller's hands, not the query body).
    """
    if op == "=":
        op = "=="
    if op not in COMPARISON_OPS:
        raise QueryError(
            f"unknown comparison operator {op!r}; "
            f"expected one of {sorted(COMPARISON_OPS)}"
        )
    left, right = make_term(lhs), make_term(rhs)
    if isinstance(left, Constant) and isinstance(right, Constant):
        raise QueryError(
            f"comparison {left} {op} {right} mentions no variables"
        )
    if isinstance(left, Constant):
        left, right, op = right, left, _MIRROR[op]
    assert isinstance(left, str)
    return Comparison(left, op, right)
