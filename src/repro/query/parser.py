"""A datalog-style parser for the unified query surface.

The accepted grammar is a single rule::

    query      := [ head ( ":-" | "<-" ) ] body [ order ] [ limit ] [ "." ]
    head       := IDENT "(" [ headterm { "," headterm } ] ")"
    headterm   := IDENT | AGG "(" ( "*" | IDENT ) ")" [ "AS" IDENT ]
    body       := item { "," item }
    item       := atom | comparison
    atom       := IDENT "(" term { "," term } ")"
    term       := IDENT | INT | STRING
    comparison := ( IDENT | INT | STRING ) CMPOP ( IDENT | INT | STRING )
    order      := "ORDER" "BY" key { "," key }
    key        := IDENT [ "ASC" | "DESC" ]
    limit      := "LIMIT" INT

so plain full conjunctive queries (``R(A,B), S(B,C)``), projections
(``Q(A) :- R(A,B)``), constants (``S(B, 5)``, ``T(A, 'x')``), comparison
selections (``A < B``, ``A != 3``; ``=`` is a synonym of ``==``),
aggregate heads (``Q(A, COUNT(*))``, ``Q(A, SUM(X) AS total)``) and
ordered / top-k trailers (``... ORDER BY B DESC, A LIMIT 10``) all parse.
``AGG`` is any registered semiring aggregate, case-insensitive; the
``ORDER BY`` / ``LIMIT`` / ``ASC`` / ``DESC`` keywords are recognized
case-insensitively in trailer position only (a body atom or variable may
still be named ``limit``).

:func:`parse_query` returns a plain
:class:`~repro.query.atoms.ConjunctiveQuery` whenever the text stays inside
the classical fragment (variables only, no selections/aggregates), and a
rich :class:`~repro.query.builder.Query` otherwise — both are accepted
everywhere the engine takes a query.

Errors are :class:`~repro.errors.ParseError` with the 1-based line and
column of the offending token, and dangling text after the rule (including
a trailing comma) is always rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.errors import ParseError
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.builder import Query, QueryAtom
from repro.query.semiring import SEMIRINGS, Aggregate
from repro.query.terms import Comparison, Constant, comparison

_OPERATORS = (":-", "<-", "<=", ">=", "==", "!=", "=", "<", ">",
              "(", ")", ",", ".", "*")
_CMP_OPS = ("<=", ">=", "==", "!=", "=", "<", ">")
_ARROWS = (":-", "<-")


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident" | "int" | "string" | an operator literal | "end"
    value: Any
    line: int
    column: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, line, column = 0, 1, 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i, line, column = i + 1, line + 1, 1
            continue
        if ch.isspace():
            i, column = i + 1, column + 1
            continue
        start_line, start_column = line, column
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(_Token("ident", text[i:j], start_line, start_column))
            column += j - i
            i = j
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(_Token("int", int(text[i:j]), start_line, start_column))
            column += j - i
            i = j
            continue
        if ch in "'\"":
            j = text.find(ch, i + 1)
            if j < 0 or "\n" in text[i + 1:j]:
                raise ParseError(f"unterminated string starting with {ch}",
                                 start_line, start_column)
            tokens.append(_Token("string", text[i + 1:j], start_line, start_column))
            column += j + 1 - i
            i = j + 1
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                # '<-' directly followed by a digit can never be the rule
                # arrow (relation names cannot start with a digit): it is a
                # '<' comparison against a negative constant, as in 'B<-3'.
                if (op == "<-" and i + 2 < n and text[i + 2].isdigit()):
                    op = "<"
                tokens.append(_Token(op, op, start_line, start_column))
                column += len(op)
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}",
                             start_line, start_column)
    end_column = column
    tokens.append(_Token("end", None, line, end_column))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, ahead: int = 0) -> _Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def advance(self) -> _Token:
        token = self.peek()
        if token.kind != "end":
            self._pos += 1
        return token

    def expect(self, kind: str, what: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            self.fail(f"expected {what}, found {self._describe(token)}", token)
        return self.advance()

    @staticmethod
    def _describe(token: _Token) -> str:
        if token.kind == "end":
            return "end of input"
        if token.kind in ("ident", "int", "string"):
            return f"{token.kind} {token.value!r}"
        return repr(token.kind)

    def fail(self, message: str, token: _Token | None = None) -> None:
        token = token or self.peek()
        raise ParseError(message, token.line, token.column)

    # -- grammar --------------------------------------------------------
    def parse_operand(self) -> Any:
        token = self.peek()
        if token.kind == "ident":
            return self.advance().value
        if token.kind == "int":
            return Constant(self.advance().value)
        if token.kind == "string":
            return Constant(self.advance().value)
        self.fail(f"expected a variable or constant, found "
                  f"{self._describe(token)}", token)

    def parse_comparison(self) -> Comparison:
        lhs = self.parse_operand()
        op_token = self.peek()
        if op_token.kind not in _CMP_OPS:
            self.fail(f"expected a comparison operator after {lhs}, found "
                      f"{self._describe(op_token)}", op_token)
        self.advance()
        rhs = self.parse_operand()
        return comparison(lhs, op_token.kind, rhs)

    def parse_atom(self) -> QueryAtom:
        name = self.expect("ident", "a relation name")
        self.expect("(", "'('")
        if self.peek().kind == ")":
            self.fail(f"atom {name.value!r} has no terms")
        terms = [self.parse_operand()]
        while self.peek().kind == ",":
            self.advance()
            terms.append(self.parse_operand())
        self.expect(")", "')' closing the atom")
        return QueryAtom(name.value, terms)

    def parse_body(self) -> tuple[list[QueryAtom], list[Comparison]]:
        atoms: list[QueryAtom] = []
        selections: list[Comparison] = []
        while True:
            token = self.peek()
            if token.kind == "ident" and self.peek(1).kind == "(":
                atoms.append(self.parse_atom())
            else:
                selections.append(self.parse_comparison())
            if self.peek().kind != ",":
                break
            self.advance()
        if not atoms:
            self.fail("the query body has no atoms, only comparisons")
        return atoms, selections

    def parse_head_term(self) -> Union[str, Aggregate]:
        name = self.expect("ident", "a head variable or aggregate")
        if self.peek().kind != "(":
            return name.value
        kind = name.value.lower()
        if kind not in SEMIRINGS:
            self.fail(f"unknown aggregate {name.value!r}; expected one of "
                      f"{sorted(s.upper() for s in SEMIRINGS)}", name)
        self.advance()  # '('
        token = self.peek()
        var: str | None
        if token.kind == "*":
            self.advance()
            var = None
        elif token.kind == "ident":
            var = self.advance().value
        elif token.kind == ")" and not SEMIRINGS[kind].needs_variable:
            var = None
        else:
            self.fail(f"expected a variable or '*' inside {name.value}(...), "
                      f"found {self._describe(token)}", token)
        self.expect(")", f"')' closing {name.value}(...)")
        if SEMIRINGS[kind].needs_variable and var is None:
            self.fail(f"aggregate {name.value} needs a variable argument", name)
        alias = f"{kind}_{var}" if var is not None else kind
        if (self.peek().kind == "ident"
                and str(self.peek().value).lower() == "as"):
            self.advance()
            alias = self.expect("ident", "an alias after AS").value
        return Aggregate(kind, var, alias)

    def parse_head(self) -> tuple[str, list[str], list[Aggregate]]:
        name = self.expect("ident", "the query name")
        self.expect("(", "'(' after the query name")
        head_vars: list[str] = []
        aggregates: list[Aggregate] = []
        if self.peek().kind != ")":
            while True:
                term_token = self.peek()
                term = self.parse_head_term()
                if isinstance(term, Aggregate):
                    aggregates.append(term)
                else:
                    if aggregates:
                        # Output columns are always head variables then
                        # aggregate aliases; accepting an interleaved head
                        # would silently reorder what the user wrote.
                        self.fail(
                            f"head variable {term!r} follows an aggregate; "
                            "write plain head variables before aggregates",
                            term_token)
                    head_vars.append(term)
                if self.peek().kind != ",":
                    break
                self.advance()
        self.expect(")", "')' closing the head")
        return name.value, head_vars, aggregates

    def _keyword(self, word: str, ahead: int = 0) -> bool:
        token = self.peek(ahead)
        return (token.kind == "ident"
                and str(token.value).lower() == word)

    def parse_trailer(self) -> tuple[list[tuple[str, bool]], int | None]:
        """The optional ``ORDER BY ... LIMIT n`` trailer after the body.

        Errors inside the trailer point at the offending token: a
        dangling comma swallowing the ``LIMIT`` keyword as a column name
        would otherwise surface as a confusing "dangling text: int"
        error at the limit *count*, one token too late.
        """
        order_by: list[tuple[str, bool]] = []
        if self._keyword("order") and self._keyword("by", 1):
            self.advance()
            self.advance()
            while True:
                token = self.peek()
                if self._keyword("limit") and self.peek(1).kind == "int":
                    # ``ORDER BY A, LIMIT 3``: the LIMIT clause cannot
                    # double as a sort column.  (A genuine column named
                    # ``limit`` is still fine — it is only rejected when
                    # directly followed by a count, where the user
                    # plainly meant the clause.)
                    self.fail(
                        "expected an ORDER BY column, found the LIMIT "
                        "clause (dangling comma in ORDER BY?)", token)
                column = self.expect("ident", "an ORDER BY column").value
                descending = False
                if self._keyword("asc"):
                    self.advance()
                elif self._keyword("desc"):
                    self.advance()
                    descending = True
                order_by.append((column, descending))
                if self.peek().kind != ",":
                    break
                self.advance()
        limit: int | None = None
        if self._keyword("limit"):
            self.advance()
            token = self.expect("int", "a LIMIT count")
            if token.value < 0:
                self.fail(f"LIMIT must be non-negative, got {token.value}",
                          token)
            limit = token.value
        return order_by, limit

    def expect_end(self) -> None:
        if self.peek().kind == ".":
            self.advance()
        token = self.peek()
        if token.kind != "end":
            self.fail(f"dangling text after the query: "
                      f"{self._describe(token)}", token)


def _has_arrow(tokens: list[_Token]) -> bool:
    return any(t.kind in _ARROWS for t in tokens)


def parse_query(text: str) -> ConjunctiveQuery | Query:
    """Parse a datalog-style rule.

    Returns a classical :class:`ConjunctiveQuery` for texts inside the
    variables-only fragment, and a rich :class:`Query` when constants,
    selections, or aggregates appear.

    Examples
    --------
    >>> q = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C).")
    >>> q.variables
    ('A', 'B', 'C')
    >>> rich = parse_query("Q(A) :- R(A,B), S(B,5), A < B")
    >>> rich.output_columns
    ('A',)
    >>> top = parse_query("Q(A,B) :- R(A,B) ORDER BY B DESC, A LIMIT 3")
    >>> top.order_by, top.limit
    ((('B', True), ('A', False)), 3)
    """
    if not text.strip():
        raise ParseError("empty query text")
    parser = _Parser(_tokenize(text))
    name = "Q"
    head_vars: list[str] = []
    aggregates: list[Aggregate] = []
    explicit_head = False
    if _has_arrow(parser._tokens):
        name, head_vars, aggregates = parser.parse_head()
        token = parser.peek()
        if token.kind not in _ARROWS:
            parser.fail(f"expected ':-' after the query head, found "
                        f"{parser._describe(token)}", token)
        parser.advance()
        explicit_head = bool(head_vars or aggregates)
    atoms, selections = parser.parse_body()
    order_by, limit = parser.parse_trailer()
    parser.expect_end()

    plain = (not selections and not aggregates
             and not order_by and limit is None
             and all(isinstance(t, str) for atom in atoms for t in atom.terms)
             and all(len(set(atom.terms)) == len(atom.terms) for atom in atoms))
    if plain:
        return ConjunctiveQuery(
            [Atom(a.relation, a.variables) for a in atoms],
            head=head_vars if explicit_head else None,
            name=name,
        )
    return Query(
        atoms,
        selections=selections,
        head=head_vars if explicit_head else None,
        aggregates=aggregates,
        order_by=order_by,
        limit=limit,
        name=name,
    )


def parse_condition(text: str) -> Comparison:
    """Parse a single comparison like ``"A < B"`` or ``"A != 3"``."""
    if not text.strip():
        raise ParseError("empty condition text")
    parser = _Parser(_tokenize(text))
    result = parser.parse_comparison()
    token = parser.peek()
    if token.kind != "end":
        parser.fail(f"dangling text after the condition: "
                    f"{parser._describe(token)}", token)
    return result
