"""A tiny datalog-style parser for conjunctive queries.

The accepted grammar is a single rule of the form::

    Q(A, B, C) :- R(A, B), S(B, C), T(A, C).

or, with the head omitted (a full CQ over every body variable)::

    R(A, B), S(B, C), T(A, C)

Whitespace is insignificant; the trailing period is optional; ``<-`` is
accepted as a synonym of ``:-``.  Relation and variable names must match
``[A-Za-z_][A-Za-z0-9_]*``.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.query.atoms import Atom, ConjunctiveQuery

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_ATOM_RE = re.compile(rf"\s*({_IDENT})\s*\(\s*([^)]*)\)\s*")


def _parse_atom_list(text: str) -> list[Atom]:
    atoms = []
    position = 0
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    while position < len(text):
        match = _ATOM_RE.match(text, position)
        if not match:
            raise ParseError(f"could not parse atom at: {text[position:]!r}")
        relation, var_text = match.group(1), match.group(2)
        variables = [v.strip() for v in var_text.split(",") if v.strip()]
        if not variables:
            raise ParseError(f"atom {relation!r} has no variables")
        for v in variables:
            if not re.fullmatch(_IDENT, v):
                raise ParseError(f"invalid variable name {v!r} in atom {relation!r}")
        atoms.append(Atom(relation, variables))
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise ParseError(
                    f"expected ',' between atoms at: {text[position:]!r}"
                )
            position += 1
    if not atoms:
        raise ParseError("no atoms found")
    return atoms


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a datalog-style rule into a :class:`ConjunctiveQuery`.

    Examples
    --------
    >>> q = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C).")
    >>> q.variables
    ('A', 'B', 'C')
    >>> len(q.atoms)
    3
    """
    text = text.strip()
    if not text:
        raise ParseError("empty query text")
    for arrow in (":-", "<-"):
        if arrow in text:
            head_text, body_text = text.split(arrow, 1)
            head_match = _ATOM_RE.fullmatch(head_text)
            if not head_match:
                raise ParseError(f"could not parse query head: {head_text!r}")
            name = head_match.group(1)
            head_vars = [v.strip() for v in head_match.group(2).split(",") if v.strip()]
            atoms = _parse_atom_list(body_text)
            return ConjunctiveQuery(atoms, head=head_vars or None, name=name)
    # No head: full CQ over the body variables.
    atoms = _parse_atom_list(text)
    return ConjunctiveQuery(atoms)
