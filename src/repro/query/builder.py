"""The unified declarative query surface: :class:`Query` and its builder.

The paper's algorithms are stated for *full* conjunctive queries over
variables only.  The engine's public surface is richer: one :class:`Query`
object carries

* atoms whose positions may hold **constants** (``R(A, 5)``),
* **comparison selections** between terms (``A < B``, ``A != 3``),
* a **projection head** (any subset / permutation of the variables),
* **semiring aggregates** with group-by heads (``Q(A, COUNT(*))``),
* **ordered / top-k** result control (``ORDER BY`` keys plus ``LIMIT``).

A :class:`Query` *lowers* itself onto the paper's machinery at
construction: constants and repeated in-atom variables are rewritten to
fresh variables constrained by equality selections, producing a plain full
:class:`~repro.query.atoms.ConjunctiveQuery` core plus a normalized
selection list.  Executors push as much of the rest below the join as
their plan allows: selections prune at the binding level of the join
recursion, projection deduplicates early through the boolean existential
tail, aggregates can fold in-recursion through their semirings
(``aggregate_mode``), and ORDER BY can enumerate in rank order via any-k
(``ranked_mode``); the engine layers whatever remains — stream-folds,
drain-and-heap ordering, LIMIT — on the streamed-out tuples.

The chainable :class:`QueryBuilder` (exposed as the module-level ``Q``)
is the programmatic front end::

    Q.from_("R", "A", "B").where("A < B").select("A").order_by("A").limit(10)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import QueryError
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.semiring import (
    Aggregate,
    Descending,
    avg_,
    count,
    max_,
    min_,
    sum_,
)
from repro.query.terms import (
    Comparison,
    Constant,
    Term,
    VARIABLE_RE,
    comparison,
    make_term,
)


@dataclass(frozen=True)
class QueryAtom:
    """An atom over terms: ``R(A, 5, 'x')``.

    Unlike :class:`~repro.query.atoms.Atom`, positions may hold constants
    and the same variable may repeat (both are lowered to fresh variables
    plus equality selections).
    """

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Any]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms",
                           tuple(make_term(t) for t in terms))
        if not self.terms:
            raise QueryError(f"atom {relation}() has no terms")

    @property
    def variables(self) -> tuple[str, ...]:
        """The variable terms, in position order (repeats preserved)."""
        return tuple(t for t in self.terms if isinstance(t, str))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


#: An ORDER BY key: (output column, descending?).
OrderKey = tuple[str, bool]


def _normalize_order_key(key: Any) -> OrderKey:
    if isinstance(key, tuple) and len(key) == 2:
        column, direction = key
        if isinstance(direction, str):
            direction = direction.strip().lower()
            if direction not in ("asc", "desc"):
                raise QueryError(f"order direction must be asc/desc, got {direction!r}")
            return (column, direction == "desc")
        return (column, bool(direction))
    if isinstance(key, str):
        text = key.strip()
        if text.startswith("-"):
            return (text[1:].strip(), True)
        parts = text.split()
        if len(parts) == 2 and parts[1].lower() in ("asc", "desc"):
            return (parts[0], parts[1].lower() == "desc")
        if len(parts) == 1:
            return (parts[0], False)
    raise QueryError(f"cannot interpret order-by key {key!r}")


def sort_rows(rows: Iterable[tuple], columns: Sequence[str],
              order_by: Sequence[OrderKey],
              limit: int | None = None) -> list[tuple]:
    """Order rows by the given keys; with ``limit``, a heap-based top-k.

    Ties are broken by the full row so the result is deterministic —
    the same ``(direction-adjusted keys, full row)`` comparison the any-k
    executors reproduce, which is what makes a ``ranked_mode="anyk"``
    prefix bit-identical to this drain-and-heap baseline.
    """
    positions = {c: i for i, c in enumerate(columns)}
    keys = [(positions[column], descending) for column, descending in order_by]

    def key_fn(row: tuple) -> tuple:
        return tuple(Descending(row[p]) if d else row[p]
                     for p, d in keys) + row

    if limit is not None:
        return heapq.nsmallest(limit, rows, key=key_fn)
    return sorted(rows, key=key_fn)


class Query:
    """The unified declarative query: body atoms + selections + head.

    Parameters
    ----------
    atoms:
        :class:`QueryAtom` (terms, constants allowed) or plain
        :class:`~repro.query.atoms.Atom` instances.
    selections:
        :class:`~repro.query.terms.Comparison` predicates over body
        variables.
    head:
        Projection / group-by variables.  Defaults to every (user-visible)
        body variable when there are no aggregates, and to the empty group
        otherwise.
    aggregates:
        :class:`~repro.query.semiring.Aggregate` head terms; their aliases
        become output columns after the head variables.
    order_by:
        Keys over output columns: ``"A"``, ``"-A"``, ``"A DESC"`` or
        ``(column, descending)`` pairs.
    limit:
        Keep only the first ``limit`` result rows (top-k under
        ``order_by``, an enumeration prefix otherwise).  How an ordered
        top-k is *executed* is the engine's ``ranked_mode`` axis: any-k
        ranked enumeration stops the join after ``limit`` results,
        drain-and-heap sorts the full result stream.
    name:
        Query name, used for the result relation.
    """

    def __init__(self, atoms: Iterable[QueryAtom | Atom],
                 selections: Iterable[Comparison] = (),
                 head: Sequence[str] | None = None,
                 aggregates: Iterable[Aggregate] = (),
                 order_by: Iterable[Any] = (),
                 limit: int | None = None,
                 name: str = "Q"):
        self.atoms = tuple(
            a if isinstance(a, QueryAtom) else QueryAtom(a.relation, a.variables)
            for a in atoms
        )
        if not self.atoms:
            raise QueryError("a query needs at least one atom")
        self.selections = tuple(selections)
        self.aggregates = tuple(aggregates)
        self.limit = limit
        self.name = name
        if limit is not None and limit < 0:
            raise QueryError(f"limit must be non-negative, got {limit}")

        # ------------------------------------------------------------------
        # Lowering: rewrite constants and repeated in-atom variables to
        # fresh variables constrained by equality selections, yielding a
        # full conjunctive-query core over variables only.
        # ------------------------------------------------------------------
        visible: list[str] = []
        for atom in self.atoms:
            for term in atom.terms:
                if isinstance(term, str) and term not in visible:
                    visible.append(term)
        self.visible_variables = tuple(visible)

        fresh_count = 0
        taken = set(visible)

        def fresh() -> str:
            nonlocal fresh_count
            while True:
                candidate = f"_k{fresh_count}"
                fresh_count += 1
                if candidate not in taken:
                    taken.add(candidate)
                    return candidate

        lowered_selections: list[Comparison] = []
        core_atoms: list[Atom] = []
        for atom in self.atoms:
            seen_here: set[str] = set()
            core_vars: list[str] = []
            for term in atom.terms:
                if isinstance(term, Constant):
                    var = fresh()
                    lowered_selections.append(Comparison(var, "==", term))
                elif term in seen_here:
                    var = fresh()
                    lowered_selections.append(Comparison(term, "==", var))
                else:
                    var = term
                    seen_here.add(term)
                core_vars.append(var)
            core_atoms.append(Atom(atom.relation, core_vars))
        self.core = ConjunctiveQuery(core_atoms, name=name)  # full head

        for sel in self.selections:
            unknown = [v for v in sorted(sel.variables) if v not in visible]
            if unknown:
                raise QueryError(
                    f"selection {sel} mentions variables {unknown} "
                    "that do not occur in the body"
                )
        #: Every selection the executors must enforce, constant rewrites
        #: included, in a deterministic order (user order, then lowering
        #: order).
        self.all_selections = self.selections + tuple(lowered_selections)

        #: Variables pinned to a single value by a ``== constant``
        #: selection — the executors order these first so the whole join
        #: is evaluated under the bindings.
        self.fixed_variables = frozenset(
            sel.lhs for sel in self.all_selections if sel.is_constant_equality
        )

        # ------------------------------------------------------------------
        # Head: projection / group-by columns plus aggregate aliases.
        # ------------------------------------------------------------------
        if head is None:
            head = self.visible_variables if not self.aggregates else ()
        self.head_vars = tuple(head)
        unknown = [v for v in self.head_vars if v not in visible]
        if unknown:
            raise QueryError(f"head variables {unknown} do not occur in the body")
        if len(set(self.head_vars)) != len(self.head_vars):
            raise QueryError(f"head repeats a variable: {self.head_vars}")
        for agg in self.aggregates:
            agg.semiring()  # validates the aggregate kind
            if agg.semiring().needs_variable:
                if agg.var is None or agg.var not in visible:
                    raise QueryError(
                        f"aggregate {agg} needs a body variable, got {agg.var!r}"
                    )
            if not VARIABLE_RE.match(agg.alias):
                raise QueryError(f"aggregate alias {agg.alias!r} is not an identifier")
        self.output_columns = self.head_vars + tuple(a.alias for a in self.aggregates)
        if not self.output_columns:
            raise QueryError("query has an empty head and no aggregates")
        if len(set(self.output_columns)) != len(self.output_columns):
            raise QueryError(
                f"output columns collide: {self.output_columns}"
            )

        self.order_by: tuple[OrderKey, ...] = tuple(
            _normalize_order_key(k) for k in order_by
        )
        for column, _descending in self.order_by:
            if column not in self.output_columns:
                raise QueryError(
                    f"ORDER BY column {column!r} is not an output column "
                    f"{self.output_columns}"
                )

    # ------------------------------------------------------------------
    # Derived shape predicates
    # ------------------------------------------------------------------
    @property
    def is_plain(self) -> bool:
        """True when the query is a classical (possibly projected) CQ —
        no selections, aggregates, ordering or limit."""
        return (not self.all_selections and not self.aggregates
                and not self.order_by and self.limit is None)

    @property
    def is_full(self) -> bool:
        """True when the head keeps every body variable (no aggregates)."""
        return (not self.aggregates
                and set(self.head_vars) == set(self.core.variables))

    @property
    def stream_variables(self) -> tuple[str, ...]:
        """Columns of the executor-level stream: head columns normally,
        every core variable when aggregates must observe full tuples."""
        if self.aggregates:
            return self.core.variables
        return self.head_vars

    # ------------------------------------------------------------------
    # Adapters
    # ------------------------------------------------------------------
    @classmethod
    def from_conjunctive(cls, query: ConjunctiveQuery) -> "Query":
        """Wrap a classical :class:`ConjunctiveQuery` (adapter for the
        pre-redesign API)."""
        return cls(
            [QueryAtom(a.relation, a.variables) for a in query.atoms],
            head=query.head,
            name=query.name,
        )

    @classmethod
    def coerce(cls, query: Any) -> "Query":
        """Coerce any accepted query form into a :class:`Query`.

        Accepts :class:`Query`, :class:`QueryBuilder`,
        :class:`ConjunctiveQuery`, and datalog-style text.
        """
        if isinstance(query, cls):
            return query
        if isinstance(query, QueryBuilder):
            return query.build()
        if isinstance(query, ConjunctiveQuery):
            return cls.from_conjunctive(query)
        if isinstance(query, str):
            from repro.query.parser import parse_query

            parsed = parse_query(query)
            return parsed if isinstance(parsed, cls) else cls.coerce(parsed)
        raise QueryError(
            f"cannot interpret {query!r} as a query; expected Query, "
            "QueryBuilder, ConjunctiveQuery, or datalog text"
        )

    def validate_against(self, database) -> None:
        """Check relations and arities (delegates to the lowered core)."""
        self.core.validate_against(database)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (self.atoms, self.selections, self.head_vars, self.aggregates,
                self.order_by, self.limit)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        head_terms = list(self.head_vars) + [str(a) for a in self.aggregates]
        body = [str(a) for a in self.atoms] + [str(s) for s in self.selections]
        text = f"{self.name}({', '.join(head_terms)}) :- {', '.join(body)}"
        if self.order_by:
            keys = ", ".join(f"{c} DESC" if d else c for c, d in self.order_by)
            text += f" ORDER BY {keys}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text

    def __repr__(self) -> str:
        return f"Query({str(self)!r})"


class QueryBuilder:
    """Chainable construction of a :class:`Query`.

    Every method returns the builder, so queries read as one expression::

        Q.from_("R", "A", "B").from_("S", "B", 5) \\
         .where("A < B").select("A").order_by("-A").limit(10)

    The engine accepts a builder anywhere it accepts a query (it calls
    :meth:`build` internally).
    """

    def __init__(self, name: str = "Q"):
        self._name = name
        self._atoms: list[QueryAtom] = []
        self._selections: list[Comparison] = []
        self._head: list[str] = []
        self._aggregates: list[Aggregate] = []
        self._group_by: list[str] | None = None
        self._order_by: list[Any] = []
        self._limit: int | None = None

    def from_(self, relation: str, *terms: Any) -> "QueryBuilder":
        """Add a body atom; terms are variables, constants, or quoted text."""
        self._atoms.append(QueryAtom(relation, terms))
        return self

    def where(self, *condition: Any) -> "QueryBuilder":
        """Add a selection: ``where("A < B")`` or ``where("A", "<", "B")``
        or a prebuilt :class:`~repro.query.terms.Comparison`."""
        if len(condition) == 1 and isinstance(condition[0], Comparison):
            self._selections.append(condition[0])
        elif len(condition) == 1 and isinstance(condition[0], str):
            from repro.query.parser import parse_condition

            self._selections.append(parse_condition(condition[0]))
        elif len(condition) == 3:
            self._selections.append(comparison(*condition))
        else:
            raise QueryError(
                "where() takes a condition string, a Comparison, or "
                "(lhs, op, rhs) operands"
            )
        return self

    def select(self, *items: Any) -> "QueryBuilder":
        """Name the output: variables and/or aggregate terms.

        Plain variables must come before aggregates — output columns are
        always the head variables followed by the aggregate aliases, and
        accepting an interleaved selection would silently reorder it.
        """
        for item in items:
            if isinstance(item, Aggregate):
                self._aggregates.append(item)
            elif isinstance(item, str):
                if self._aggregates:
                    raise QueryError(
                        f"select(): variable {item!r} follows an aggregate; "
                        "list plain output variables before aggregates"
                    )
                self._head.append(item)
            else:
                raise QueryError(
                    f"select() takes variable names and aggregates, got {item!r}"
                )
        return self

    def group_by(self, *variables: str) -> "QueryBuilder":
        """Declare the group keys explicitly (must match the plain
        selected variables — the grouping SQL would infer)."""
        self._group_by = list(variables)
        return self

    def order_by(self, *keys: Any) -> "QueryBuilder":
        """Order results: ``"A"``, ``"-A"``, ``"A DESC"``, or
        ``(column, descending)``."""
        self._order_by.extend(keys)
        return self

    def limit(self, n: int) -> "QueryBuilder":
        """Keep only the first ``n`` rows (top-k under an order)."""
        self._limit = n
        return self

    def build(self) -> Query:
        """Finalize the :class:`Query` (validating the whole shape)."""
        if self._group_by is not None:
            if sorted(self._group_by) != sorted(self._head):
                raise QueryError(
                    f"group_by({self._group_by}) must name exactly the "
                    f"selected plain variables {self._head}"
                )
            if not self._aggregates:
                raise QueryError("group_by() without aggregates has no effect; "
                                 "add COUNT/SUM/MIN/MAX terms to select()")
        head = self._head if (self._head or self._aggregates) else None
        return Query(
            self._atoms,
            selections=self._selections,
            head=head,
            aggregates=self._aggregates,
            order_by=self._order_by,
            limit=self._limit,
            name=self._name,
        )

    def __str__(self) -> str:
        return str(self.build())


class _QueryStart:
    """The ``Q`` entry point: ``Q.from_(...)`` or ``Q("name").from_(...)``."""

    def __call__(self, name: str = "Q") -> QueryBuilder:
        return QueryBuilder(name)

    def from_(self, relation: str, *terms: Any) -> QueryBuilder:
        return QueryBuilder().from_(relation, *terms)


#: The chainable query entry point.
Q = _QueryStart()

__all__ = [
    "Query",
    "QueryAtom",
    "QueryBuilder",
    "Q",
    "OrderKey",
    "sort_rows",
    "avg_",
    "count",
    "sum_",
    "min_",
    "max_",
]
