"""Atoms and full conjunctive queries.

A full conjunctive query (eq. 25 in the paper) is

    Q(A_[n]) <- AND_{F in E} R_F(A_F)

associated with a multi-hypergraph H = ([n], E).  An :class:`Atom` pairs a
relation name with the tuple of variables it mentions; a
:class:`ConjunctiveQuery` is a list of atoms plus (optionally) an explicit
head variable list.  Queries are *full*: the head contains every variable,
which is the setting all the bounds and algorithms in the paper address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import QueryError, SchemaError
from repro.query.hypergraph import Hypergraph
from repro.relational.database import Database
from repro.relational.relation import Relation


@dataclass(frozen=True)
class Atom:
    """A query atom ``R(X1, ..., Xk)``.

    Attributes
    ----------
    relation:
        Name of the relation symbol.
    variables:
        The variables the atom mentions, in the relation's column order.
        Repeated variables within one atom are not supported (they can be
        simulated with a selection before the join).
    """

    relation: str
    variables: tuple[str, ...]

    def __init__(self, relation: str, variables: Sequence[str]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "variables", tuple(variables))
        if len(set(self.variables)) != len(self.variables):
            raise QueryError(
                f"atom {relation}({', '.join(variables)}) repeats a variable; "
                "apply a selection first"
            )
        if not self.variables:
            raise QueryError(f"atom {relation}() has no variables")

    @property
    def variable_set(self) -> frozenset[str]:
        """The set of variables of this atom."""
        return frozenset(self.variables)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


class ConjunctiveQuery:
    """A full conjunctive query over a set of atoms.

    Parameters
    ----------
    atoms:
        The query body.  The same relation name may appear in several atoms
        (self-joins); each occurrence is a distinct hyperedge.
    head:
        Head variables.  Defaults to all body variables (a *full* CQ).  A
        head that omits body variables turns the query into a
        project-at-the-end CQ; the bounds in this library always refer to the
        full join, as in the paper.
    name:
        Optional query name used in reports.
    """

    def __init__(self, atoms: Iterable[Atom], head: Sequence[str] | None = None,
                 name: str = "Q"):
        self._atoms = tuple(atoms)
        if not self._atoms:
            raise QueryError("a conjunctive query needs at least one atom")
        seen: list[str] = []
        for atom in self._atoms:
            for v in atom.variables:
                if v not in seen:
                    seen.append(v)
        self._variables = tuple(seen)
        if head is None:
            self._head = self._variables
        else:
            head = tuple(head)
            unknown = [v for v in head if v not in self._variables]
            if unknown:
                raise QueryError(f"head variables {unknown} do not occur in the body")
            self._head = head
        self._name = name

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The query name."""
        return self._name

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """The body atoms."""
        return self._atoms

    @property
    def variables(self) -> tuple[str, ...]:
        """All body variables, in order of first occurrence."""
        return self._variables

    @property
    def head(self) -> tuple[str, ...]:
        """The head variables."""
        return self._head

    @property
    def is_full(self) -> bool:
        """True when the head mentions every body variable."""
        return set(self._head) == set(self._variables)

    def atoms_containing(self, variable: str) -> tuple[Atom, ...]:
        """Atoms whose variable set contains ``variable`` (the set ∂(v))."""
        return tuple(a for a in self._atoms if variable in a.variable_set)

    def relation_names(self) -> tuple[str, ...]:
        """Names of relations referenced (with repetitions for self-joins)."""
        return tuple(a.relation for a in self._atoms)

    def hypergraph(self) -> Hypergraph:
        """The query's multi-hypergraph: one edge per atom."""
        edges = {self.edge_key(i): frozenset(a.variables)
                 for i, a in enumerate(self._atoms)}
        return Hypergraph(self._variables, edges)

    def edge_key(self, atom_index: int) -> str:
        """The hyperedge key used for the atom at ``atom_index``.

        Keys are the relation name when unambiguous and ``name#i`` when the
        same relation appears multiple times, so that a multi-hypergraph with
        repeated edges is represented faithfully.
        """
        atom = self._atoms[atom_index]
        occurrences = [i for i, a in enumerate(self._atoms) if a.relation == atom.relation]
        if len(occurrences) == 1:
            return atom.relation
        return f"{atom.relation}#{occurrences.index(atom_index)}"

    def atom_for_edge(self, edge_key: str) -> Atom:
        """Inverse of :meth:`edge_key`."""
        for i, atom in enumerate(self._atoms):
            if self.edge_key(i) == edge_key:
                return atom
        raise QueryError(f"no atom with edge key {edge_key!r}")

    # ------------------------------------------------------------------
    # Validation and evaluation support
    # ------------------------------------------------------------------
    def validate_against(self, database: Database) -> None:
        """Check that every atom's relation exists and has matching arity.

        Raises
        ------
        SchemaError
            If a relation is missing or its arity differs from the atom's.
        """
        for atom in self._atoms:
            relation = database.get(atom.relation)
            if relation.arity != len(atom.variables):
                raise SchemaError(
                    f"atom {atom} has arity {len(atom.variables)} but relation "
                    f"{atom.relation!r} has arity {relation.arity}"
                )

    def bind(self, database: Database) -> dict[str, Relation]:
        """Map each atom's edge key to its relation *renamed to the query's
        variables*, ready for joining.

        Self-joins produce several entries over the same physical tuples but
        with the per-atom variable names.
        """
        self.validate_against(database)
        bound = {}
        for i, atom in enumerate(self._atoms):
            relation = database.get(atom.relation)
            mapping = dict(zip(relation.attributes, atom.variables))
            bound[self.edge_key(i)] = relation.rename(mapping, name=self.edge_key(i))
        return bound

    def output_schema(self) -> tuple[str, ...]:
        """Schema of the query output (the head variables)."""
        return self._head

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._atoms)
        return f"{self._name}({', '.join(self._head)}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._atoms == other._atoms and self._head == other._head

    def __hash__(self) -> int:
        return hash((self._atoms, self._head))


def triangle_query(r_name: str = "R", s_name: str = "S", t_name: str = "T"
                   ) -> ConjunctiveQuery:
    """The paper's triangle query (eq. 2):
    ``Q(A,B,C) :- R(A,B), S(B,C), T(A,C)``."""
    return ConjunctiveQuery(
        [Atom(r_name, ("A", "B")), Atom(s_name, ("B", "C")), Atom(t_name, ("A", "C"))],
        name="Q_triangle",
    )


def clique_query(k: int, relation_prefix: str = "E") -> ConjunctiveQuery:
    """The k-clique query: one binary atom per pair of the k variables.

    Variables are ``X1 .. Xk`` and the atom over pair (i, j), i < j, is
    ``E_i_j(Xi, Xj)``.
    """
    if k < 2:
        raise QueryError("clique query needs k >= 2")
    variables = [f"X{i}" for i in range(1, k + 1)]
    atoms = []
    for i in range(k):
        for j in range(i + 1, k):
            atoms.append(Atom(f"{relation_prefix}_{i + 1}_{j + 1}",
                              (variables[i], variables[j])))
    return ConjunctiveQuery(atoms, name=f"Q_clique{k}")


def cycle_query(k: int, relation_prefix: str = "E") -> ConjunctiveQuery:
    """The k-cycle query ``Q :- E_1(X1,X2), E_2(X2,X3), ..., E_k(Xk,X1)``."""
    if k < 3:
        raise QueryError("cycle query needs k >= 3")
    variables = [f"X{i}" for i in range(1, k + 1)]
    atoms = []
    for i in range(k):
        atoms.append(Atom(f"{relation_prefix}_{i + 1}",
                          (variables[i], variables[(i + 1) % k])))
    return ConjunctiveQuery(atoms, name=f"Q_cycle{k}")


def path_query(k: int, relation_prefix: str = "E") -> ConjunctiveQuery:
    """The length-k path query ``Q :- E_1(X1,X2), ..., E_k(Xk,Xk+1)``."""
    if k < 1:
        raise QueryError("path query needs k >= 1")
    variables = [f"X{i}" for i in range(1, k + 2)]
    atoms = [
        Atom(f"{relation_prefix}_{i + 1}", (variables[i], variables[i + 1]))
        for i in range(k)
    ]
    return ConjunctiveQuery(atoms, name=f"Q_path{k}")


def loomis_whitney_query(k: int, relation_prefix: str = "R") -> ConjunctiveQuery:
    """The Loomis–Whitney query LW(k): every atom contains all but one of the
    k variables (Section 1.2 of the paper).

    For k = 3 this is exactly the triangle query shape.
    """
    if k < 3:
        raise QueryError("Loomis-Whitney query needs k >= 3")
    variables = [f"X{i}" for i in range(1, k + 1)]
    atoms = []
    for omitted in range(k):
        atom_vars = tuple(v for i, v in enumerate(variables) if i != omitted)
        atoms.append(Atom(f"{relation_prefix}_{omitted + 1}", atom_vars))
    return ConjunctiveQuery(atoms, name=f"Q_LW{k}")
