"""Semiring aggregates: ``COUNT`` / ``SUM`` / ``MIN`` / ``MAX`` / ``AVG`` heads.

The FAQ / AJAR line of work (and the paper's aggregation discussion in its
open problems) observes that the variable-elimination machinery behind WCOJ
algorithms evaluates *functional aggregate queries* over any commutative
semiring, not just the boolean "does a tuple exist" semiring.  This module
supplies the pluggable semiring layer for the unified query surface:

* a :class:`Semiring` bundles the aggregation monoid (``zero`` / ``plus`` /
  per-tuple ``lift``) with, for true semirings, the product structure
  (``one`` / ``times``) that lets aggregates be pushed *inside* joins: the
  distributive law ``a ⊗ (b ⊕ c) = a ⊗ b ⊕ a ⊗ c`` is exactly what licenses
  aggregating a subtree away before joining it (Yannakakis-style in-pass
  aggregation, and component factorization in FAQ);
* an :class:`Aggregate` names one aggregate head term (``SUM(X) AS total``);
* :func:`fold_aggregates` folds a stream of full join tuples into grouped
  aggregate rows *tuple-at-a-time* — the drain-and-fold execution mode the
  engine falls back to when in-recursion aggregation does not apply;
* :func:`times_fold` is the ``⊗``-combine of component-factorized
  elimination (per-component fold values of conditionally-independent
  tail components compose with the product), and
  :func:`product_semiring` builds componentwise product semirings — with
  an absorbing element only when *every* factor declares one, since a
  single absorbing coordinate does not absorb the tuple;
* the **ring protocol**: a semiring may declare ``negate``, the additive
  inverse (``a ⊕ negate(a) = zero``), making it a commutative ring.  This
  is what incremental view maintenance needs for *deletes*: removing a
  tuple is ``⊕``-ing the negated annotation of every join assignment it
  participated in, so SUM/COUNT/AVG views repair in place while MIN/MAX
  (tropical, no inverse: ``min(a, x) = +inf`` has no solution) and the
  ordering semiring force a recomputation.  :func:`negate_value` is the
  checked entry point delete paths must use.

Aggregation semantics follow the package's set-semantics relations: the
aggregates range over the **distinct** full-join assignments, grouped by
the plain head variables.  Custom semirings can be plugged in with
:func:`register_semiring`; ``AVG`` below is itself registered through that
path, as the (sum, count) *product semiring* with a non-trivial lift and
finalizer.

Beyond the user-facing aggregates, two internal semirings drive the
executors' elimination machinery: :data:`BOOLEAN` (existential tails — the
projection special case) and the **ordering semiring family**
(:func:`ranking_semiring`), the tropical-style algebra behind any-k ranked
enumeration.  Its elements are sparse sort-key vectors — ``(position,
component)`` pairs over the ORDER BY columns, components wrapped with
:class:`Descending` for descending keys — ``⊕`` is the lexicographic
minimum (so a folded subtree annotation is the *best suffix* any
completion of that subtree can achieve) and ``⊗`` merges vectors over
disjoint key positions (so annotations of independent join-tree branches
compose into a bound on the full sort key).  Both the memoized WCOJ
elimination and Yannakakis' annotated join-tree messages fold with this
semiring to obtain the per-separator best-suffix bounds that any-k's
priority frontier expands against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import QueryError

#: Sentinel distinguishing "no absorbing element" from an absorbing ``None``.
_NO_ABSORBING = object()


@dataclass(frozen=True)
class Semiring:
    """One aggregate's algebra: the fold monoid plus an optional product.

    Attributes
    ----------
    name:
        The aggregate keyword (``count``, ``sum``, ...).
    zero:
        The ``plus`` identity (also the value reported for an empty,
        group-free aggregate, SQL-style: ``COUNT`` of nothing is 0).
    plus:
        The commutative, associative combine operation (``⊕``).
    lift:
        Maps one aggregated column value into the semiring (``COUNT``
        lifts everything to 1; ``SUM`` lifts to the value itself).
    needs_variable:
        Whether the aggregate reads a column (``COUNT`` does not).
    one:
        The ``times`` identity — the annotation of a tuple that carries no
        information for this aggregate (e.g. a tuple of an atom that does
        not hold the summed variable).
    times:
        The product operation (``⊗``) combining annotations of tuples
        joined together.  ``None`` for plus-only monoids; when present,
        ``(zero, plus, one, times)`` must satisfy the semiring laws
        (checked by the law tests for every registered semiring), which is
        what allows Yannakakis' algorithm to aggregate during its join
        passes instead of over the join output.
    finalize:
        Optional map from the folded semiring value to the reported output
        value (``AVG`` divides its (sum, count) pair; plain aggregates
        report the fold unchanged).
    absorbing:
        Optional absorbing element of ``plus`` (``a ⊕ absorbing =
        absorbing``).  When every aggregate of a query has one, the
        in-recursion fold can stop a subtree as soon as its accumulator
        saturates — for the boolean semiring this is exactly the classical
        one-witness existential search.
    negate:
        Optional additive inverse (``a ⊕ negate(a) = zero``), upgrading
        the semiring to a commutative **ring**.  Rings are what make
        *deletes* incremental: removing a tuple ``⊕``-s the negation of
        every annotation it contributed, so the fold never has to be
        recomputed from scratch.  When ``times`` is also declared, the
        inverse must be compatible with the product
        (``negate(a) ⊗ b = negate(a ⊗ b)``) so a negated delta tuple can
        be joined against unchanged annotations.  ``None`` declares the
        semiring non-invertible (MIN/MAX, boolean, ranking): delete paths
        must refuse it via :func:`negate_value`.
    """

    name: str
    zero: Any
    plus: Callable[[Any, Any], Any]
    lift: Callable[[Any], Any]
    needs_variable: bool = True
    one: Any = None
    times: Callable[[Any, Any], Any] | None = None
    finalize: Callable[[Any], Any] | None = None
    absorbing: Any = _NO_ABSORBING
    negate: Callable[[Any], Any] | None = None

    @property
    def has_product(self) -> bool:
        """True when the algebra is a full semiring (``times`` defined)."""
        return self.times is not None

    @property
    def has_inverse(self) -> bool:
        """True when the algebra is a ring (``negate`` defined)."""
        return self.negate is not None

    @property
    def has_absorbing(self) -> bool:
        """True when ``plus`` has an absorbing element."""
        return self.absorbing is not _NO_ABSORBING

    def finish(self, value: Any) -> Any:
        """Apply the finalizer (identity when none is declared)."""
        if self.finalize is None:
            return value
        return self.finalize(value)


def _min_plus(a: Any, b: Any) -> Any:
    # ``None`` is the fold identity; the tropical product identity (the
    # annotation of value-free tuples) folds away the same way — a message
    # projection may merge several value-free annotations (ONE ⊕ ONE).
    if a is None or a is _TROPICAL_ONE:
        return b
    if b is None or b is _TROPICAL_ONE:
        return a
    return b if b < a else a


def _max_plus(a: Any, b: Any) -> Any:
    if a is None or a is _TROPICAL_ONE:
        return b
    if b is None or b is _TROPICAL_ONE:
        return a
    return b if b > a else a


def _mul(a: Any, b: Any) -> Any:
    return a * b


class _TropicalOne:
    """The ``times`` identity of the MIN/MAX semirings.

    A sentinel rather than the numeric 0 of the classical tropical
    semiring: the annotation of a tuple carrying no value for the
    aggregate must combine with *any* lifted column value — strings and
    other non-numeric orderables included — so the product treats it as
    "pass the other side through" instead of doing arithmetic.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<tropical one>"


_TROPICAL_ONE = _TropicalOne()


def _tropical_add(a: Any, b: Any) -> Any:
    # ``None`` is the tropical zero (±infinity): it annihilates products,
    # as the semiring laws require (a ⊗ 0 = 0).  The engine multiplies at
    # most one lifted value per product chain (one designated atom per
    # aggregate), so the numeric ``a + b`` leg only matters for the
    # semiring laws over numbers.
    if a is None or b is None:
        return None
    if a is _TROPICAL_ONE:
        return b
    if b is _TROPICAL_ONE:
        return a
    return a + b


def _numeric_negate(value: Any) -> Any:
    return -value


#: Built-in semirings, keyed by aggregate keyword.  ``MIN``/``MAX`` use
#: ``None`` as the fold identity (reported for an empty, group-free
#: aggregate) and live in the tropical semirings (min, +) / (max, +);
#: ``COUNT``/``SUM`` live in the numeric sum-product semiring (+, ×),
#: which is in fact a ring — its ``negate`` is what lets incremental view
#: maintenance handle deletes.  The tropical semirings declare no
#: ``negate``: ``min(a, x) = +∞`` has no solution, so a deleted minimum
#: cannot be "subtracted out" and delete paths must recompute.
SEMIRINGS: dict[str, Semiring] = {
    "count": Semiring("count", 0, lambda a, b: a + b, lambda _v: 1,
                      needs_variable=False, one=1, times=_mul,
                      negate=_numeric_negate),
    "sum": Semiring("sum", 0, lambda a, b: a + b, lambda v: v,
                    one=1, times=_mul, negate=_numeric_negate),
    "min": Semiring("min", None, _min_plus, lambda v: v,
                    one=_TROPICAL_ONE, times=_tropical_add),
    "max": Semiring("max", None, _max_plus, lambda v: v,
                    one=_TROPICAL_ONE, times=_tropical_add),
}

#: The boolean (exists) semiring.  Not a user-facing aggregate — it is what
#: the WCOJ recursion folds existential tail variables into when a
#: projection discards them, making "find one witness and stop" the
#: ``absorbing``-element special case of in-recursion aggregation.
BOOLEAN = Semiring("bool", False, lambda a, b: a or b, lambda _v: True,
                   needs_variable=False, one=True,
                   times=lambda a, b: a and b, absorbing=True)


class Descending:
    """Sort-key component wrapper inverting comparisons.

    Wrapping the components of descending ORDER BY columns lets every
    consumer — ``sort_rows``'s drain-and-heap, the any-k priority
    frontier, and the ranking semiring's lexicographic minimum — compare
    whole key tuples with the ordinary ``<``, regardless of per-column
    direction.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Descending) and other.value == self.value

    def __repr__(self) -> str:
        return f"Descending({self.value!r})"


def rank_component(value: Any, descending: bool) -> Any:
    """One sort-key component, direction-adjusted for plain ``<``."""
    return Descending(value) if descending else value


def _rank_components(vector: tuple) -> tuple:
    return tuple(component for _position, component in vector)


def _rank_plus(a: Any, b: Any) -> Any:
    # ``None`` is the ordering zero (no completion exists): the ⊕ identity
    # and the ⊗ annihilator, exactly like the tropical ±infinity.
    if a is None:
        return b
    if b is None:
        return a
    return b if _rank_components(b) < _rank_components(a) else a


def _rank_times(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    return tuple(sorted(a + b, key=lambda pc: pc[0]))


#: The ordering semiring: the member of the family below with the
#: position/direction parameterization left to the lift sites.
RANKING = Semiring("rank", None, _rank_plus, lambda v: v,
                   needs_variable=False, one=(), times=_rank_times)


def ranking_semiring() -> Semiring:
    """The ordering (min-lexicographic) semiring of any-k ranked enumeration.

    Elements are ``None`` (zero: the annotation of an empty subtree — no
    completion exists) or sparse sort-key vectors: tuples of ``(position,
    component)`` pairs, sorted by position, where ``position`` indexes an
    ORDER BY column and ``component`` is the column's value wrapped by
    :func:`rank_component` for its direction.  ``plus`` keeps the
    lexicographically smaller vector (operands always share a support set
    in the executors, so componentwise comparison is total) and ``times``
    merges vectors over disjoint position sets — the annotations of
    conditionally independent subproblems compose positionwise because
    the lexicographic minimum of an interleaving of independent blocks is
    the interleaving of the blocks' lexicographic minima.

    This is a *family* in the FAQ sense: each query instantiates it over
    its own ORDER BY positions and directions through the lift closures
    the executors build (:func:`repro.joins.generic_join.wcoj_stream`'s
    ranked mode, :func:`repro.joins.yannakakis.yannakakis_ranked_stream`);
    the carrier and operations are shared.  Like :data:`BOOLEAN` it is not
    a user-facing aggregate and is not listed in :data:`SEMIRINGS`.
    """
    return RANKING


def register_semiring(semiring: Semiring) -> None:
    """Register a custom aggregate semiring under ``semiring.name``."""
    if semiring.name in SEMIRINGS:
        raise QueryError(f"semiring {semiring.name!r} is already registered")
    SEMIRINGS[semiring.name] = semiring


def times_fold(semiring: Semiring, values: Iterable[Any]) -> Any:
    """The ``⊗``-product of several semiring values (``one`` when empty).

    This is the combine step of component-factorized elimination: when the
    residual tail of a query splits into conditionally-independent
    components, each component folds to one value and the values compose
    with the semiring product — counts multiply, sums cross-weight
    (distributivity), tropical MIN/MAX annotations pass through their
    ``one``, and ranking-semiring sort-key vectors over *disjoint* key
    positions merge positionwise, which is exactly why a per-component
    best-suffix bound stays admissible (indeed exact) for any-k.

    Note the deliberate asymmetry with the ``⊕``-fold: an *absorbing*
    element of ``plus`` (e.g. the boolean ``True``) is **not** a
    short-circuit for ``times`` — only the semiring zero annihilates a
    product, and callers that track empty sub-problems as ``None`` should
    short-circuit on those *before* folding.

    Raises
    ------
    QueryError
        If the semiring declares no product (``times`` is None).
    """
    if semiring.times is None:
        raise QueryError(
            f"semiring {semiring.name!r} has no product; "
            "component values cannot be combined"
        )
    total = semiring.one
    for value in values:
        total = semiring.times(total, value)
    return total


def negate_value(semiring: Semiring, value: Any) -> Any:
    """The additive inverse of ``value``, or a clear refusal.

    This is the checked entry point every delete path must go through:
    incremental deletion ``⊕``-s negated annotations into maintained
    state, which is only sound when the semiring is a ring.

    Raises
    ------
    QueryError
        If the semiring declares no additive inverse (MIN/MAX, boolean,
        ranking): callers must fall back to recomputation for deletes.
    """
    if semiring.negate is None:
        raise QueryError(
            f"semiring {semiring.name!r} has no additive inverse; "
            "deletes need a ring semiring (SUM/COUNT/AVG) — "
            "recompute the aggregate instead"
        )
    return semiring.negate(value)


def product_semiring(name: str, factors: Sequence[Semiring],
                     finalize: Callable[[Any], Any] | None = None) -> Semiring:
    """The componentwise product of several semirings.

    Elements are tuples with one coordinate per factor; ``zero``/``one``
    are the tuples of the factors' identities and ``plus``/``times``/
    ``lift`` apply coordinatewise (every factor lifts the *same* column
    value, so a product aggregate can observe one variable through
    several algebras at once).  ``times`` is only defined when every
    factor has a product, and ``finalize`` defaults to the coordinatewise
    finalizers whenever any factor declares one.

    **Absorbing elements do not survive the product unless every factor
    has one.**  ``(a₁, x)`` with ``a₁`` absorbing for the first factor
    does not absorb in the second coordinate, so a product advertising
    ``has_absorbing`` from a single factor would let an eliminator stop a
    fold early and silently drop the other coordinates' remaining
    contributions (the ``_avg_finalize`` confusion: a saturated boolean
    paired with a half-folded (sum, count) finalizes to a wrong average).
    The product therefore carries an absorbing element exactly when *all*
    factors declare one.

    Note ``AVG`` is *not* this construction: its (sum, count) carrier
    uses a cross-weighting product (see ``_avg_times``), not the
    coordinatewise one, because the sum of a join factor is weighted by
    the other factor's multiplicity.
    """
    factors = tuple(factors)
    if not factors:
        raise QueryError("a product semiring needs at least one factor")

    def plus(a: tuple, b: tuple) -> tuple:
        return tuple(f.plus(x, y) for f, x, y in zip(factors, a, b))

    def lift(v: Any) -> tuple:
        return tuple(f.lift(v) for f in factors)

    times = None
    if all(f.has_product for f in factors):
        def times(a: tuple, b: tuple) -> tuple:
            return tuple(f.times(x, y) for f, x, y in zip(factors, a, b))

    if finalize is None and any(f.finalize is not None for f in factors):
        def finalize(value: tuple) -> tuple:
            return tuple(f.finish(v) for f, v in zip(factors, value))

    # The product is a ring exactly when every factor is: the inverse is
    # coordinatewise, and a single non-invertible coordinate (say a MIN)
    # poisons the whole tuple for deletes.
    negate = None
    if all(f.has_inverse for f in factors):
        def negate(value: tuple) -> tuple:
            return tuple(f.negate(v) for f, v in zip(factors, value))

    absorbing = (tuple(f.absorbing for f in factors)
                 if all(f.has_absorbing for f in factors) else _NO_ABSORBING)
    return Semiring(
        name,
        zero=tuple(f.zero for f in factors),
        plus=plus,
        lift=lift,
        needs_variable=any(f.needs_variable for f in factors),
        one=tuple(f.one for f in factors),
        times=times,
        finalize=finalize,
        absorbing=absorbing,
        negate=negate,
    )


def _avg_plus(a: tuple, b: tuple) -> tuple:
    return (a[0] + b[0], a[1] + b[1])


def _avg_times(a: tuple, b: tuple) -> tuple:
    # The product of (sum, count) annotations over independent factors:
    # the combined sum weights each side's sum by the other side's
    # multiplicity, the combined count multiplies.
    return (a[0] * b[1] + b[0] * a[1], a[1] * b[1])


def _avg_finalize(value: tuple) -> Any:
    total, count = value
    if count == 0:
        return None
    return total / count


def _avg_negate(value: tuple) -> tuple:
    # Negating both coordinates is compatible with the cross-weighting
    # product: (−s₁, −c₁) ⊗ (s₂, c₂) = (−(s₁c₂ + s₂c₁), −c₁c₂).
    return (-value[0], -value[1])


# ``AVG`` is deliberately registered through the public pluggable-semiring
# path: it is the (sum, count) product semiring with a non-identity lift
# and a finalizer, exercising every extension hook a custom semiring has.
register_semiring(Semiring(
    "avg",
    zero=(0, 0),
    plus=_avg_plus,
    lift=lambda v: (v, 1),
    one=(0, 1),
    times=_avg_times,
    finalize=_avg_finalize,
    negate=_avg_negate,
))


@dataclass(frozen=True)
class Aggregate:
    """One aggregate head term: ``kind(var) AS alias``.

    ``var`` is None exactly for variable-free aggregates (``COUNT``).
    """

    kind: str
    var: str | None
    alias: str

    def semiring(self) -> Semiring:
        """The semiring implementing this aggregate."""
        try:
            return SEMIRINGS[self.kind]
        except KeyError:
            raise QueryError(
                f"unknown aggregate {self.kind!r}; "
                f"expected one of {sorted(SEMIRINGS)}"
            ) from None

    def __str__(self) -> str:
        arg = self.var if self.var is not None else "*"
        return f"{self.kind.upper()}({arg})"


def count(alias: str = "count") -> Aggregate:
    """A ``COUNT(*)`` head term."""
    return Aggregate("count", None, alias)


def sum_(var: str, alias: str | None = None) -> Aggregate:
    """A ``SUM(var)`` head term."""
    return Aggregate("sum", var, alias or f"sum_{var}")


def min_(var: str, alias: str | None = None) -> Aggregate:
    """A ``MIN(var)`` head term."""
    return Aggregate("min", var, alias or f"min_{var}")


def max_(var: str, alias: str | None = None) -> Aggregate:
    """A ``MAX(var)`` head term."""
    return Aggregate("max", var, alias or f"max_{var}")


def avg_(var: str, alias: str | None = None) -> Aggregate:
    """An ``AVG(var)`` head term (the (sum, count) product semiring)."""
    return Aggregate("avg", var, alias or f"avg_{var}")


def fold_aggregates(stream: Iterable[tuple], variables: Sequence[str],
                    group_vars: Sequence[str],
                    aggregates: Sequence[Aggregate]) -> Iterator[tuple]:
    """Fold a stream of distinct full-join tuples into grouped rows.

    ``variables`` names the stream's columns; each output row is the group
    key (values of ``group_vars``) followed by one folded, finalized value
    per aggregate.  The stream is consumed one tuple at a time — nothing is
    materialized beyond one accumulator per live group — so anything the
    executors pushed below the join stays below the aggregation as well.

    This is the *stream-fold* execution mode: join-linear, since every full
    join tuple is observed.  The in-recursion mode (see
    :func:`repro.joins.generic_join.wcoj_stream`) folds eliminated
    variables inside the join recursion instead and never enumerates the
    full join.

    A group-free aggregation over an empty stream yields the single
    all-identities row (``COUNT`` of nothing is 0), matching SQL.
    """
    positions = {v: i for i, v in enumerate(variables)}
    group_pos = [positions[v] for v in group_vars]
    semirings = [agg.semiring() for agg in aggregates]
    value_pos = [positions[agg.var] if agg.var is not None else None
                 for agg in aggregates]
    groups: dict[tuple, list[Any]] = {}
    for row in stream:
        key = tuple(row[p] for p in group_pos)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [sr.zero for sr in semirings]
            groups[key] = accumulators
        for i, sr in enumerate(semirings):
            pos = value_pos[i]
            lifted = sr.lift(row[pos] if pos is not None else None)
            accumulators[i] = sr.plus(accumulators[i], lifted)
    if not groups and not group_pos:
        yield tuple(sr.finish(sr.zero) for sr in semirings)
        return
    for key, accumulators in groups.items():
        yield key + tuple(sr.finish(acc)
                          for sr, acc in zip(semirings, accumulators))
