"""Semiring aggregates: ``COUNT`` / ``SUM`` / ``MIN`` / ``MAX`` heads.

The FAQ / AJAR line of work (and the paper's aggregation discussion in its
open problems) observes that the variable-elimination machinery behind WCOJ
algorithms evaluates *functional aggregate queries* over any commutative
semiring, not just the boolean "does a tuple exist" semiring.  This module
supplies the pluggable semiring layer for the unified query surface:

* a :class:`Semiring` bundles an identity element with the fold operation
  (``plus``) and the per-tuple lift;
* an :class:`Aggregate` names one aggregate head term (``SUM(X) AS total``);
* :func:`fold_aggregates` folds a stream of full join tuples into grouped
  aggregate rows *tuple-at-a-time* — the stream is never materialized, so
  selections and constants pushed below the join are also below the
  aggregation (Yannakakis-style early aggregation at the stream level).

Aggregation semantics follow the package's set-semantics relations: the
aggregates range over the **distinct** full-join assignments, grouped by
the plain head variables.  Custom semirings can be plugged in with
:func:`register_semiring`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import QueryError


@dataclass(frozen=True)
class Semiring:
    """One aggregate's fold: identity, combine, and per-tuple lift.

    Attributes
    ----------
    name:
        The aggregate keyword (``count``, ``sum``, ...).
    zero:
        The identity element (also the value reported for an empty,
        group-free aggregate, SQL-style: ``COUNT`` of nothing is 0).
    plus:
        The commutative, associative combine operation.
    lift:
        Maps one aggregated column value into the semiring (``COUNT``
        lifts everything to 1; ``SUM`` lifts to the value itself).
    needs_variable:
        Whether the aggregate reads a column (``COUNT`` does not).
    """

    name: str
    zero: Any
    plus: Callable[[Any, Any], Any]
    lift: Callable[[Any], Any]
    needs_variable: bool = True


def _min_plus(a: Any, b: Any) -> Any:
    if a is None:
        return b
    return b if b < a else a


def _max_plus(a: Any, b: Any) -> Any:
    if a is None:
        return b
    return b if b > a else a


#: Built-in semirings, keyed by aggregate keyword.  ``MIN``/``MAX`` use
#: ``None`` as the identity (reported for an empty, group-free aggregate).
SEMIRINGS: dict[str, Semiring] = {
    "count": Semiring("count", 0, lambda a, b: a + b, lambda _v: 1,
                      needs_variable=False),
    "sum": Semiring("sum", 0, lambda a, b: a + b, lambda v: v),
    "min": Semiring("min", None, _min_plus, lambda v: v),
    "max": Semiring("max", None, _max_plus, lambda v: v),
}


def register_semiring(semiring: Semiring) -> None:
    """Register a custom aggregate semiring under ``semiring.name``."""
    if semiring.name in SEMIRINGS:
        raise QueryError(f"semiring {semiring.name!r} is already registered")
    SEMIRINGS[semiring.name] = semiring


@dataclass(frozen=True)
class Aggregate:
    """One aggregate head term: ``kind(var) AS alias``.

    ``var`` is None exactly for variable-free aggregates (``COUNT``).
    """

    kind: str
    var: str | None
    alias: str

    def semiring(self) -> Semiring:
        """The semiring implementing this aggregate."""
        try:
            return SEMIRINGS[self.kind]
        except KeyError:
            raise QueryError(
                f"unknown aggregate {self.kind!r}; "
                f"expected one of {sorted(SEMIRINGS)}"
            ) from None

    def __str__(self) -> str:
        arg = self.var if self.var is not None else "*"
        return f"{self.kind.upper()}({arg})"


def count(alias: str = "count") -> Aggregate:
    """A ``COUNT(*)`` head term."""
    return Aggregate("count", None, alias)


def sum_(var: str, alias: str | None = None) -> Aggregate:
    """A ``SUM(var)`` head term."""
    return Aggregate("sum", var, alias or f"sum_{var}")


def min_(var: str, alias: str | None = None) -> Aggregate:
    """A ``MIN(var)`` head term."""
    return Aggregate("min", var, alias or f"min_{var}")


def max_(var: str, alias: str | None = None) -> Aggregate:
    """A ``MAX(var)`` head term."""
    return Aggregate("max", var, alias or f"max_{var}")


def fold_aggregates(stream: Iterable[tuple], variables: Sequence[str],
                    group_vars: Sequence[str],
                    aggregates: Sequence[Aggregate]) -> Iterator[tuple]:
    """Fold a stream of distinct full-join tuples into grouped rows.

    ``variables`` names the stream's columns; each output row is the group
    key (values of ``group_vars``) followed by one folded value per
    aggregate.  The stream is consumed one tuple at a time — nothing is
    materialized beyond one accumulator per live group — so anything the
    executors pushed below the join stays below the aggregation as well.

    A group-free aggregation over an empty stream yields the single
    all-identities row (``COUNT`` of nothing is 0), matching SQL.
    """
    positions = {v: i for i, v in enumerate(variables)}
    group_pos = [positions[v] for v in group_vars]
    semirings = [agg.semiring() for agg in aggregates]
    value_pos = [positions[agg.var] if agg.var is not None else None
                 for agg in aggregates]
    groups: dict[tuple, list[Any]] = {}
    for row in stream:
        key = tuple(row[p] for p in group_pos)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [sr.zero for sr in semirings]
            groups[key] = accumulators
        for i, sr in enumerate(semirings):
            pos = value_pos[i]
            lifted = sr.lift(row[pos] if pos is not None else None)
            accumulators[i] = sr.plus(accumulators[i], lifted)
    if not groups and not group_pos:
        yield tuple(sr.zero for sr in semirings)
        return
    for key, accumulators in groups.items():
        yield key + tuple(accumulators)
