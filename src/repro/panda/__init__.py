"""PANDA: Shannon-flow inequalities, proof sequences, and their execution.

The PANDA algorithm (Abo Khamis–Ngo–Suciu, Section 5.2 of the paper) turns a
*mathematical proof* of a Shannon-flow inequality into a query-evaluation
algorithm: every step of the proof (decomposition, composition,
submodularity) becomes a relational operation (partition, join, re-affiliate).
This package implements

* conditional polymatroid terms and weighted term bags (:mod:`terms`),
* Shannon-flow inequalities, their validity check, and extraction of the
  coefficient vector delta from the bound LPs (:mod:`shannon_flow`),
* proof steps, proof sequences, their verifier, and a bounded-search
  automatic constructor (:mod:`proof_sequence`, :mod:`proof_search`),
* the data-level interpreter executing a proof sequence on a database
  (:mod:`interpreter`),
* the paper's Example 1 and Table 2, reproduced end to end (:mod:`example1`).
"""

from repro.panda.terms import ConditionalTerm, TermBag
from repro.panda.shannon_flow import (
    ShannonFlowInequality,
    shannon_flow_from_constraints,
    extract_flow_from_polymatroid_dual,
)
from repro.panda.proof_sequence import (
    DecompositionStep,
    CompositionStep,
    SubmodularityStep,
    ProofSequence,
)
from repro.panda.proof_search import derive_proof_sequence
from repro.panda.interpreter import PandaInterpreter, PandaResult
from repro.panda.example1 import (
    example1_query,
    example1_constraints,
    example1_inequality,
    example1_proof_sequence,
    example1_database,
    run_example1,
    table2_rows,
)

__all__ = [
    "ConditionalTerm",
    "TermBag",
    "ShannonFlowInequality",
    "shannon_flow_from_constraints",
    "extract_flow_from_polymatroid_dual",
    "DecompositionStep",
    "CompositionStep",
    "SubmodularityStep",
    "ProofSequence",
    "derive_proof_sequence",
    "PandaInterpreter",
    "PandaResult",
    "example1_query",
    "example1_constraints",
    "example1_inequality",
    "example1_proof_sequence",
    "example1_database",
    "run_example1",
    "table2_rows",
]
