"""Shannon-flow inequalities (Definition 5) and their extraction from LPs.

A Shannon-flow inequality is

    h([n]) <= sum_{(X,Y)} delta_{Y|X} * h(Y | X)      for all polymatroids h,

with delta >= 0.  Two facts from the paper drive how we use them:

* Proposition 5.4: validity is equivalent to the existence of a feasible
  dual solution of LP (72); here we *decide* validity with the Shannon
  inequality prover of :mod:`repro.infotheory.shannon` (the LP over the
  polymatroid cone), which is an equivalent check.
* Strong duality (eq. 73): at the optimum of the polymatroid-bound LP the
  dual values of the degree constraints form exactly such a delta with
  ``bound = <delta, n>``, so the coefficient vector PANDA needs falls out of
  the bound computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.bounds.polymatroid import PolymatroidBound, polymatroid_bound
from repro.constraints.degree import DegreeConstraintSet
from repro.errors import ProofError
from repro.infotheory.set_functions import SetFunction
from repro.infotheory.shannon import LinearEntropyExpression, is_shannon_valid
from repro.panda.terms import ConditionalTerm, TermBag


@dataclass(frozen=True)
class ShannonFlowInequality:
    """The inequality h(V) <= sum delta_{Y|X} h(Y|X).

    Attributes
    ----------
    variables:
        The ground set V (ordered, for reporting).
    coefficients:
        Mapping from :class:`ConditionalTerm` to its (non-negative) weight.
    """

    variables: tuple[str, ...]
    coefficients: tuple[tuple[ConditionalTerm, Fraction], ...]

    @classmethod
    def from_terms(cls, variables: Sequence[str],
                   coefficients: Mapping[ConditionalTerm, Fraction | int | str]
                   ) -> "ShannonFlowInequality":
        """Build an inequality from a term -> weight mapping."""
        ground = set(variables)
        items = []
        for term, weight in coefficients.items():
            weight = Fraction(weight)
            if weight < 0:
                raise ProofError(f"negative coefficient for {term}")
            if not term.y <= ground:
                raise ProofError(f"term {term} uses variables outside {sorted(ground)}")
            if weight > 0:
                items.append((term, weight))
        items.sort(key=lambda kv: (len(kv[0].y), str(kv[0])))
        return cls(variables=tuple(variables), coefficients=tuple(items))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def term_bag(self) -> TermBag:
        """The right-hand side as a weighted term bag (a fresh copy)."""
        return TermBag(dict(self.coefficients))

    def expression(self) -> LinearEntropyExpression:
        """RHS - LHS as a linear entropy expression (>= 0 iff the inequality
        holds for a given h)."""
        coefficients: dict[frozenset[str], float] = {}
        for term, weight in self.coefficients:
            coefficients[term.y] = coefficients.get(term.y, 0.0) + float(weight)
            if term.x:
                coefficients[term.x] = coefficients.get(term.x, 0.0) - float(weight)
        full = frozenset(self.variables)
        coefficients[full] = coefficients.get(full, 0.0) - 1.0
        return LinearEntropyExpression.from_dict(self.variables, coefficients)

    def holds_for(self, h: SetFunction, tolerance: float = 1e-9) -> bool:
        """Check the inequality on one concrete set function."""
        return self.expression().evaluate(h) >= -tolerance

    def is_valid(self) -> bool:
        """Decide whether the inequality holds for every polymatroid."""
        return is_shannon_valid(self.expression())

    def weighted_log_bound(self, log_bounds: Mapping[ConditionalTerm, float]) -> float:
        """<delta, n>: the runtime/bound exponent sum delta_{Y|X} log2 N_{Y|X}."""
        total = 0.0
        for term, weight in self.coefficients:
            if term not in log_bounds:
                raise ProofError(f"no statistic provided for term {term}")
            total += float(weight) * log_bounds[term]
        return total

    def __str__(self) -> str:
        rhs = " + ".join(f"{weight}*{term}" for term, weight in self.coefficients)
        return f"h({''.join(sorted(self.variables))}) <= {rhs}"


def shannon_flow_from_constraints(dc: DegreeConstraintSet,
                                  weights: Mapping[int, Fraction | float | int]
                                  ) -> ShannonFlowInequality:
    """Build the Shannon-flow inequality whose terms are DC's constraints.

    ``weights`` maps the index of each constraint in ``dc`` to its
    coefficient delta_{Y|X}; constraints with zero weight are dropped.
    """
    coefficients: dict[ConditionalTerm, Fraction] = {}
    for index, weight in weights.items():
        if index < 0 or index >= len(dc):
            raise ProofError(f"constraint index {index} out of range")
        weight = Fraction(weight).limit_denominator(10**6)
        if weight == 0:
            continue
        constraint = dc.constraints[index]
        term = ConditionalTerm(y=constraint.y, x=constraint.x)
        coefficients[term] = coefficients.get(term, Fraction(0)) + weight
    return ShannonFlowInequality.from_terms(dc.variables, coefficients)


def constraint_log_bounds(dc: DegreeConstraintSet) -> dict[ConditionalTerm, float]:
    """Map each constraint's term to log2 of its numeric bound (n_{Y|X})."""
    bounds: dict[ConditionalTerm, float] = {}
    for constraint in dc:
        term = ConditionalTerm(y=constraint.y, x=constraint.x)
        existing = bounds.get(term)
        value = constraint.log_bound
        # Multiple guards for the same (X, Y): keep the tightest statistic.
        bounds[term] = value if existing is None else min(existing, value)
    return bounds


def extract_flow_from_polymatroid_dual(dc: DegreeConstraintSet,
                                       result: PolymatroidBound | None = None,
                                       ) -> ShannonFlowInequality:
    """Extract the delta vector from the polymatroid-bound LP duals (eq. 73).

    Solves the polymatroid bound if ``result`` is not supplied, reads the
    dual value of every degree constraint, and returns the corresponding
    Shannon-flow inequality.  By LP duality the inequality is valid and its
    weighted log bound equals the polymatroid bound; both facts are verified
    by the caller-facing tests rather than assumed here.
    """
    if result is None:
        result = polymatroid_bound(dc)
    # Re-solve to obtain dual values when the provided result lacks them.
    weights: dict[int, Fraction] = {}
    # Dual values are keyed "dc[i]" by the polymatroid LP.
    # polymatroid_bound stores only the *names* of tight constraints, so we
    # recompute duals through a fresh solve here when necessary.
    from repro.bounds.polymatroid import _key  # reuse the subset-key helper
    from repro.covers.lp import LinearProgram
    from repro.infotheory.set_functions import all_subsets
    from repro.infotheory.shannon import elemental_inequalities

    lp = LinearProgram("polymatroid-bound-dual-extraction")
    variables = dc.variables
    for subset in all_subsets(variables):
        if subset:
            lp.add_variable(_key(subset), lower=0.0, upper=None)
    full = frozenset(variables)
    lp.maximize({_key(full): 1.0})
    for i, constraint in enumerate(dc):
        coeffs: dict[str, float] = {_key(constraint.y): 1.0}
        if constraint.x:
            coeffs[_key(constraint.x)] = coeffs.get(_key(constraint.x), 0.0) - 1.0
        lp.add_constraint(f"dc[{i}]", coeffs, "<=", constraint.log_bound)
    count = 0
    for ineq in elemental_inequalities(variables):
        coeffs = {_key(s): c for s, c in ineq.coefficients if s}
        lp.add_constraint(f"shannon[{count}]", coeffs, ">=", 0.0)
        count += 1
    solution = lp.solve()
    for i in range(len(dc)):
        dual = solution.dual_values.get(f"dc[{i}]", 0.0)
        if abs(dual) > 1e-9:
            weights[i] = Fraction(abs(dual)).limit_denominator(10**4)
    return shannon_flow_from_constraints(dc, weights)
