"""Automatic construction of proof sequences (a bounded search).

Theorem 5.6 guarantees that *every* valid Shannon-flow inequality has a proof
sequence; the constructive procedure in the PANDA paper extracts it from a
dual LP witness through a fairly intricate serialization argument.  Here we
implement a pragmatic alternative that covers the paper's worked examples and
the acyclic/low-arity inequalities the experiments need: a depth-bounded
depth-first search over term bags whose candidate moves are

* compositions  h(Y|X) + h(X) -> h(Y)                        (always tried first),
* submodularity lifts h(Z|W) -> h(Z u A | A) for an unconditional h(A)
  currently in the bag with Z n A = W                        (so a composition
  with h(A) becomes possible immediately afterwards), and
* decompositions h(Y) -> h(X) + h(Y|X) where X is either the conditioning
  set of a term already in the bag or the intersection of Y with another
  unconditional term                                          (the only X
  choices that can enable later moves).

All arithmetic is exact (Fractions).  The search returns a verified
:class:`ProofSequence` or None when the depth bound is exhausted; the
limitation (relative to full PANDA) is recorded in DESIGN.md.
"""

from __future__ import annotations

from fractions import Fraction

from repro.panda.proof_sequence import (
    CompositionStep,
    DecompositionStep,
    ProofSequence,
    ProofStep,
    SubmodularityStep,
)
from repro.panda.shannon_flow import ShannonFlowInequality
from repro.panda.terms import ConditionalTerm, TermBag


def _bag_key(bag: TermBag) -> frozenset:
    return frozenset((term, weight) for term, weight in bag.items())


def _candidate_steps(bag: TermBag, goal: frozenset[str]) -> list[ProofStep]:
    """Enumerate plausible next steps, most promising first."""
    terms = list(bag.items())
    unconditional = [(t, w) for t, w in terms if t.is_unconditional]
    conditional = [(t, w) for t, w in terms if not t.is_unconditional]

    compositions: list[ProofStep] = []
    for term, weight in conditional:
        partner = ConditionalTerm.unconditional(term.x)
        partner_weight = bag.weight(partner)
        if partner_weight > 0:
            usable = min(weight, partner_weight)
            compositions.append(CompositionStep(y=term.y, x=term.x, weight=usable))
    # Compositions that directly produce the goal first.
    compositions.sort(key=lambda s: (s.y != goal, -len(s.y)))

    lifts: list[ProofStep] = []
    for term, weight in terms:
        for partner, partner_weight in unconditional:
            if partner.y == term.y:
                continue
            if term.y <= partner.y:
                continue
            if term.y & partner.y != term.x:
                continue
            usable = min(weight, partner_weight) if partner_weight > 0 else weight
            if usable <= 0:
                continue
            lifts.append(SubmodularityStep(i_set=term.y, j_set=partner.y, weight=usable))
    lifts.sort(key=lambda s: -len(s.i_set | s.j_set))

    decompositions: list[ProofStep] = []
    conditioning_sets = {t.x for t, _ in conditional if t.x}
    for term, weight in unconditional:
        if len(term.y) < 2:
            continue
        candidates: set[frozenset[str]] = set()
        for x in conditioning_sets:
            if x and x < term.y:
                candidates.add(x)
        for other, _ in unconditional:
            if other.y == term.y:
                continue
            shared = term.y & other.y
            if shared and shared < term.y:
                candidates.add(shared)
        for x in sorted(candidates, key=lambda s: (len(s), sorted(s))):
            decompositions.append(DecompositionStep(y=term.y, x=x, weight=weight))

    return compositions + lifts + decompositions


def derive_proof_sequence(inequality: ShannonFlowInequality,
                          max_depth: int = 16,
                          max_nodes: int = 20000) -> ProofSequence | None:
    """Search for a proof sequence of ``inequality``.

    Parameters
    ----------
    inequality:
        The Shannon-flow inequality; it should be valid (callers typically
        check :meth:`ShannonFlowInequality.is_valid` first), otherwise the
        search simply fails.
    max_depth:
        Maximum number of proof steps to try.
    max_nodes:
        Overall budget of search-tree nodes.

    Returns
    -------
    ProofSequence | None
        A verified proof sequence, or None if none was found within budget.
    """
    goal = frozenset(inequality.variables)
    goal_term = ConditionalTerm.unconditional(goal)
    target = Fraction(1)
    visited: set[frozenset] = set()
    nodes = {"count": 0}

    def dfs(bag: TermBag, steps: list[ProofStep]) -> list[ProofStep] | None:
        if bag.weight(goal_term) >= target:
            return steps
        if len(steps) >= max_depth or nodes["count"] >= max_nodes:
            return None
        key = _bag_key(bag)
        if key in visited:
            return None
        visited.add(key)
        for step in _candidate_steps(bag, goal):
            nodes["count"] += 1
            if nodes["count"] > max_nodes:
                return None
            next_bag = bag.copy()
            try:
                step.apply(next_bag)
            except Exception:  # pragma: no cover - defensive, steps are prevalidated
                continue
            found = dfs(next_bag, steps + [step])
            if found is not None:
                return found
        return None

    initial = inequality.term_bag()
    if initial.weight(goal_term) >= target:
        return ProofSequence(inequality, [])
    steps = dfs(initial, [])
    if steps is None:
        return None
    sequence = ProofSequence(inequality, steps)
    if not sequence.verify():
        return None
    return sequence
