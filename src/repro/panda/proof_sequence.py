"""Proof steps and proof sequences for Shannon-flow inequalities.

Section 5.2.3 of the paper: a *(weighted) proof sequence* for the inequality
h([n]) <= <delta, h> is a series of weighted rule applications transforming
the right-hand-side term bag, such that no weight ever goes negative and, at
the end, h([n]) carries weight at least 1.  The three rules are

* decomposition   h(Y)      ->  h(Y|X) + h(X)        (chain rule, one way)
* composition     h(Y|X) + h(X)  ->  h(Y)            (chain rule, other way)
* submodularity   h(I | I n J)   ->  h(I u J | J)    (eq. 70)

Each rule is sound: applying it can only *decrease* the bag's value on any
polymatroid (decomposition and composition keep it equal, submodularity can
only lower it).  Hence a verified proof sequence certifies the Shannon-flow
inequality — :meth:`ProofSequence.verify` checks exactly this, with exact
Fraction arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.errors import ProofError
from repro.panda.shannon_flow import ShannonFlowInequality
from repro.panda.terms import ConditionalTerm, TermBag


@dataclass(frozen=True)
class DecompositionStep:
    """h(Y) -> h(Y|X) + h(X) with a given weight (X non-empty, X < Y)."""

    y: frozenset[str]
    x: frozenset[str]
    weight: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "y", frozenset(self.y))
        object.__setattr__(self, "x", frozenset(self.x))
        object.__setattr__(self, "weight", Fraction(self.weight))
        if not self.x or not self.x < self.y:
            raise ProofError(
                f"decomposition requires a non-empty X strictly inside Y, got "
                f"X={sorted(self.x)}, Y={sorted(self.y)}"
            )
        if self.weight <= 0:
            raise ProofError("decomposition weight must be positive")

    def apply(self, bag: TermBag) -> None:
        """Apply in place, raising if the source term lacks weight."""
        source = ConditionalTerm.unconditional(self.y)
        if bag.weight(source) < self.weight:
            raise ProofError(
                f"decomposition of {source} needs weight {self.weight} but only "
                f"{bag.weight(source)} is available"
            )
        bag.remove(source, self.weight)
        bag.add(ConditionalTerm(y=self.y, x=self.x), self.weight)
        bag.add(ConditionalTerm.unconditional(self.x), self.weight)

    def describe(self) -> str:
        """A human-readable "proof step" column, matching Table 2's style."""
        y, x = "".join(sorted(self.y)), "".join(sorted(self.x))
        return f"h({y}) -> h({x}) + h({y}|{x})"


@dataclass(frozen=True)
class CompositionStep:
    """h(Y|X) + h(X) -> h(Y) with a given weight."""

    y: frozenset[str]
    x: frozenset[str]
    weight: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "y", frozenset(self.y))
        object.__setattr__(self, "x", frozenset(self.x))
        object.__setattr__(self, "weight", Fraction(self.weight))
        if not self.x or not self.x < self.y:
            raise ProofError(
                f"composition requires a non-empty X strictly inside Y, got "
                f"X={sorted(self.x)}, Y={sorted(self.y)}"
            )
        if self.weight <= 0:
            raise ProofError("composition weight must be positive")

    def apply(self, bag: TermBag) -> None:
        """Apply in place, raising if either source term lacks weight."""
        conditional = ConditionalTerm(y=self.y, x=self.x)
        unconditional = ConditionalTerm.unconditional(self.x)
        if bag.weight(conditional) < self.weight:
            raise ProofError(
                f"composition needs {self.weight} of {conditional} but only "
                f"{bag.weight(conditional)} is available"
            )
        if bag.weight(unconditional) < self.weight:
            raise ProofError(
                f"composition needs {self.weight} of {unconditional} but only "
                f"{bag.weight(unconditional)} is available"
            )
        bag.remove(conditional, self.weight)
        bag.remove(unconditional, self.weight)
        bag.add(ConditionalTerm.unconditional(self.y), self.weight)

    def describe(self) -> str:
        """A human-readable "proof step" column, matching Table 2's style."""
        y, x = "".join(sorted(self.y)), "".join(sorted(self.x))
        return f"h({x}) + h({y}|{x}) -> h({y})"


@dataclass(frozen=True)
class SubmodularityStep:
    """h(I | I n J) -> h(I u J | J) with a given weight.

    ``i_set`` and ``j_set`` are the I and J of inequality (70); the rule is
    stated for I ⊥ J (incomparable), and when they are comparable it is a
    no-op or a plain monotonicity move, which remains sound.
    """

    i_set: frozenset[str]
    j_set: frozenset[str]
    weight: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "i_set", frozenset(self.i_set))
        object.__setattr__(self, "j_set", frozenset(self.j_set))
        object.__setattr__(self, "weight", Fraction(self.weight))
        if self.weight <= 0:
            raise ProofError("submodularity weight must be positive")
        if self.i_set <= self.j_set:
            raise ProofError(
                "submodularity with I inside J would produce the empty term "
                f"h(J|J): I={sorted(self.i_set)}, J={sorted(self.j_set)}"
            )

    @property
    def source(self) -> ConditionalTerm:
        """The consumed term h(I | I n J)."""
        intersection = self.i_set & self.j_set
        return ConditionalTerm(y=self.i_set, x=intersection)

    @property
    def target(self) -> ConditionalTerm:
        """The produced term h(I u J | J)."""
        return ConditionalTerm(y=self.i_set | self.j_set, x=self.j_set)

    def apply(self, bag: TermBag) -> None:
        """Apply in place, raising if the source term lacks weight."""
        source = self.source
        if bag.weight(source) < self.weight:
            raise ProofError(
                f"submodularity needs {self.weight} of {source} but only "
                f"{bag.weight(source)} is available"
            )
        bag.remove(source, self.weight)
        bag.add(self.target, self.weight)

    def describe(self) -> str:
        """A human-readable "proof step" column, matching Table 2's style."""
        return f"{self.source} -> {self.target}"


ProofStep = DecompositionStep | CompositionStep | SubmodularityStep


class ProofSequence:
    """A proof sequence for a Shannon-flow inequality.

    Parameters
    ----------
    inequality:
        The Shannon-flow inequality being proved (its RHS is the initial
        term bag).
    steps:
        The weighted rule applications, in order.
    """

    def __init__(self, inequality: ShannonFlowInequality,
                 steps: Iterable[ProofStep] = ()):
        self.inequality = inequality
        self.steps: list[ProofStep] = list(steps)

    def append(self, step: ProofStep) -> None:
        """Add one more step."""
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def run(self) -> TermBag:
        """Apply every step to the inequality's RHS bag and return the final
        bag; raises :class:`ProofError` on the first invalid step."""
        bag = self.inequality.term_bag()
        for index, step in enumerate(self.steps):
            try:
                step.apply(bag)
            except ProofError as exc:
                raise ProofError(f"step {index} ({step.describe()}) failed: {exc}") from exc
        return bag

    def verify(self, target_weight: Fraction | int = 1) -> bool:
        """True if the sequence is valid and ends with at least
        ``target_weight`` on the full-set term h(V)."""
        try:
            final = self.run()
        except ProofError:
            return False
        goal = ConditionalTerm.unconditional(frozenset(self.inequality.variables))
        return final.weight(goal) >= Fraction(target_weight)

    def final_weight_on_goal(self) -> Fraction:
        """The weight the sequence places on h(V)."""
        final = self.run()
        goal = ConditionalTerm.unconditional(frozenset(self.inequality.variables))
        return final.weight(goal)

    def describe(self) -> list[str]:
        """One description line per step (the Table 2 "proof step" column)."""
        return [step.describe() for step in self.steps]


def step_kind(step: ProofStep) -> str:
    """The Table 2 "Name" column for a step."""
    if isinstance(step, DecompositionStep):
        return "decomposition"
    if isinstance(step, CompositionStep):
        return "composition"
    return "submodularity"
