"""The PANDA interpreter: executing a proof sequence on a database.

Section 5.2.3 / Table 2 of the paper: once a proof sequence for the
Shannon-flow inequality h(V) <= <delta, h> is in hand, every step is read as
a symbolic instruction over relations *affiliated* with the conditional
terms:

* a **decomposition** h(Y) -> h(X) + h(Y|X) partitions the relation
  affiliated with h(Y) at a degree threshold theta on X: the *heavy* part
  (few distinct X-values) becomes the affiliation of h(X), the *light* part
  (X-degree <= theta) the affiliation of h(Y|X);
* a **submodularity** step h(I|I n J) -> h(I u J|J) moves the affiliation to
  the new term without touching data (a NOOP);
* a **composition** h(X) + h(Y|X) -> h(Y) joins the two affiliated
  relations; when Y is the full variable set the join result is one output
  branch.

The union of all output branches, semijoin-filtered against every original
atom, is the query answer.  Correctness does not depend on the thresholds
(they only control intermediate sizes); the Example 1 experiment verifies the
intermediate sizes stay within the paper's bound (75) when the paper's theta
is used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.constraints.degree import DegreeConstraintSet
from repro.errors import ProofError
from repro.joins.heavy_light import heavy_light_partition
from repro.joins.instrumentation import OperationCounter
from repro.panda.proof_sequence import (
    CompositionStep,
    DecompositionStep,
    ProofSequence,
    SubmodularityStep,
    step_kind,
)
from repro.panda.shannon_flow import ShannonFlowInequality
from repro.panda.terms import ConditionalTerm
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import natural_join
from repro.relational.relation import Relation


@dataclass
class PandaResult:
    """Result of a PANDA execution.

    Attributes
    ----------
    output:
        The exact query output.
    branch_outputs:
        The candidate relations produced by each composition that reached the
        full variable set (before the final filtering against all atoms).
    intermediate_sizes:
        Sizes of every relation materialized by a composition step.
    counter:
        Operation counter covering partitions, joins and the final filter.
    log:
        One human-readable action per proof step (the Table 2 "action"
        column), plus the final union/filter step.
    """

    output: Relation
    branch_outputs: list[Relation] = field(default_factory=list)
    intermediate_sizes: list[int] = field(default_factory=list)
    counter: OperationCounter = field(default_factory=OperationCounter)
    log: list[str] = field(default_factory=list)

    @property
    def max_intermediate(self) -> int:
        """The largest materialized intermediate (0 if none)."""
        return max(self.intermediate_sizes, default=0)


class PandaInterpreter:
    """Executes a proof sequence against a database.

    Parameters
    ----------
    query:
        The conjunctive query being evaluated.
    database:
        Its input relations.
    dc:
        The degree constraints; every term of the inequality must match a
        constraint (same X and Y) that has a guard among the query atoms.
    proof_sequence:
        A verified proof sequence for the Shannon-flow inequality.
    thresholds:
        Optional mapping from decomposition step index (position in the proof
        sequence) to the partition threshold theta; defaults to
        sqrt(|affiliated relation|), which preserves correctness and gives a
        balanced split.
    counter:
        Optional shared operation counter.
    """

    def __init__(self, query: ConjunctiveQuery, database: Database,
                 dc: DegreeConstraintSet, proof_sequence: ProofSequence,
                 thresholds: Mapping[int, float] | None = None,
                 counter: OperationCounter | None = None):
        self.query = query
        self.database = database
        self.dc = dc
        self.proof_sequence = proof_sequence
        self.thresholds = dict(thresholds or {})
        self.counter = counter or OperationCounter()

    # ------------------------------------------------------------------
    # Setup: affiliate every inequality term with its guard relation
    # ------------------------------------------------------------------
    def _initial_affiliations(self) -> dict[ConditionalTerm, Relation]:
        bound_relations = self.query.bind(self.database)
        guards_by_shape: dict[tuple[frozenset, frozenset], Relation] = {}
        for constraint in self.dc:
            if constraint.guard is None:
                continue
            if constraint.guard in bound_relations:
                relation = bound_relations[constraint.guard]
            else:
                matches = [
                    self.query.edge_key(i)
                    for i, atom in enumerate(self.query.atoms)
                    if atom.relation == constraint.guard
                ]
                if not matches:
                    continue
                relation = bound_relations[matches[0]]
            shape = (constraint.x, constraint.y)
            if shape not in guards_by_shape or len(relation) < len(guards_by_shape[shape]):
                guards_by_shape[shape] = relation

        affiliations: dict[ConditionalTerm, Relation] = {}
        inequality: ShannonFlowInequality = self.proof_sequence.inequality
        for term, _weight in inequality.coefficients:
            shape = (term.x, term.y)
            if shape not in guards_by_shape:
                raise ProofError(
                    f"no guarded degree constraint matches inequality term {term}"
                )
            guard = guards_by_shape[shape]
            keep = [a for a in guard.attributes if a in term.y]
            affiliations[term] = guard.project(keep, name=f"guard[{term}]")
            self.counter.charge(tuples_scanned=len(guard))
        return affiliations

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> PandaResult:
        """Execute the proof sequence and return the query output."""
        affiliations = self._initial_affiliations()
        result = PandaResult(output=None, counter=self.counter)  # type: ignore[arg-type]
        full = frozenset(self.query.variables)

        for index, step in enumerate(self.proof_sequence):
            kind = step_kind(step)
            if isinstance(step, DecompositionStep):
                source = ConditionalTerm.unconditional(step.y)
                relation = affiliations.pop(source, None)
                if relation is None:
                    raise ProofError(
                        f"decomposition step {index} needs an affiliation for {source}"
                    )
                key = tuple(sorted(step.x & set(relation.attributes)))
                theta = self.thresholds.get(index, math.sqrt(max(1, len(relation))))
                split = heavy_light_partition(relation, key, theta, counter=self.counter)
                heavy_term = ConditionalTerm.unconditional(step.x)
                light_term = ConditionalTerm(y=step.y, x=step.x)
                affiliations[heavy_term] = split.heavy
                affiliations[light_term] = split.light
                result.log.append(
                    f"partition {relation.name} at theta={theta:.3g} on "
                    f"{','.join(key)}: heavy={len(split.heavy)} -> {heavy_term}, "
                    f"light={len(split.light)} -> {light_term}"
                )
            elif isinstance(step, SubmodularityStep):
                source = step.source
                target = step.target
                relation = affiliations.pop(source, None)
                if relation is None:
                    raise ProofError(
                        f"submodularity step {index} needs an affiliation for {source}"
                    )
                affiliations[target] = relation
                result.log.append(
                    f"NOOP: {relation.name} now affiliated with {target}"
                )
            elif isinstance(step, CompositionStep):
                conditional = ConditionalTerm(y=step.y, x=step.x)
                unconditional = ConditionalTerm.unconditional(step.x)
                left = affiliations.pop(unconditional, None)
                right = affiliations.pop(conditional, None)
                if left is None or right is None:
                    missing = unconditional if left is None else conditional
                    raise ProofError(
                        f"composition step {index} needs an affiliation for {missing}"
                    )
                joined = natural_join(left, right, counter=self.counter,
                                      name=f"I{index}")
                result.intermediate_sizes.append(len(joined))
                self.counter.charge(intermediate_tuples=len(joined))
                target = ConditionalTerm.unconditional(step.y)
                affiliations[target] = joined
                result.log.append(
                    f"join {left.name} and {right.name} -> {target} ({len(joined)} tuples)"
                )
                if step.y == full:
                    result.branch_outputs.append(joined)
            else:  # pragma: no cover - exhaustive over step kinds
                raise ProofError(f"unknown proof step kind {kind!r}")

        if not result.branch_outputs:
            raise ProofError(
                "the proof sequence never produced the full variable set; "
                "no output branches to combine"
            )
        result.output = self._combine_branches(result.branch_outputs)
        result.log.append(
            f"union of {len(result.branch_outputs)} branches filtered against "
            f"{len(self.query.atoms)} atoms -> {len(result.output)} output tuples"
        )
        return result

    def _combine_branches(self, branches: Sequence[Relation]) -> Relation:
        """Union the branch outputs and filter against every query atom."""
        variables = self.query.variables
        bound_relations = self.query.bind(self.database)
        memberships = []
        for i, atom in enumerate(self.query.atoms):
            relation = bound_relations[self.query.edge_key(i)]
            memberships.append((atom.variables, relation.columns(atom.variables)))
            self.counter.charge(hash_inserts=len(relation))

        candidates: set[tuple] = set()
        for branch in branches:
            missing = [v for v in variables if v not in branch.schema]
            if missing:
                raise ProofError(
                    f"branch output {branch.name} is missing variables {missing}"
                )
            reordered = branch.reorder(variables)
            candidates |= set(reordered.tuples)
            self.counter.charge(tuples_scanned=len(branch))

        position = {v: i for i, v in enumerate(variables)}
        kept = []
        for tup in candidates:
            self.counter.charge(hash_probes=len(memberships))
            ok = True
            for atom_vars, atom_tuples in memberships:
                if tuple(tup[position[v]] for v in atom_vars) not in atom_tuples:
                    ok = False
                    break
            if ok:
                kept.append(tup)
        output = Relation(self.query.name, variables, kept)
        if tuple(self.query.head) != tuple(variables):
            output = output.project(self.query.head, name=self.query.name)
        return output


def panda_evaluate(query: ConjunctiveQuery, database: Database,
                   dc: DegreeConstraintSet,
                   counter: OperationCounter | None = None) -> PandaResult:
    """End-to-end PANDA: bound LP -> delta -> proof sequence -> execution.

    This automates the three PANDA phases for the class of inequalities the
    bounded proof search handles (see :mod:`repro.panda.proof_search`); a
    :class:`ProofError` is raised when the search cannot find a proof
    sequence within budget.
    """
    from repro.panda.proof_search import derive_proof_sequence
    from repro.panda.shannon_flow import extract_flow_from_polymatroid_dual

    inequality = extract_flow_from_polymatroid_dual(dc)
    if not inequality.coefficients:
        raise ProofError("the polymatroid dual produced an empty coefficient vector")
    sequence = derive_proof_sequence(inequality)
    if sequence is None:
        raise ProofError(
            "could not construct a proof sequence for the extracted Shannon-flow "
            "inequality within the search budget"
        )
    interpreter = PandaInterpreter(query, database, dc, sequence, counter=counter)
    return interpreter.run()
