"""Conditional polymatroid terms h(Y | X) and weighted term bags.

Definition 4 of the paper re-parameterizes polymatroids into the space of
"conditional polymatroids" (h(Y|X))_{(X,Y) in P}: syntactic shortcuts for
h(Y) - h(X).  A Shannon-flow proof manipulates a *weighted bag* of such
terms, so this module provides an exact-arithmetic (Fraction-weighted)
multiset over :class:`ConditionalTerm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from repro.errors import ProofError
from repro.infotheory.set_functions import SetFunction


@dataclass(frozen=True)
class ConditionalTerm:
    """The term h(Y | X), with X a (possibly empty) proper subset of Y.

    ``h(Y | emptyset)`` is written/printed as the unconditional ``h(Y)``.
    """

    y: frozenset[str]
    x: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "y", frozenset(self.y))
        object.__setattr__(self, "x", frozenset(self.x))
        if not self.x < self.y:
            raise ProofError(
                f"conditional term requires X to be a proper subset of Y, got "
                f"X={sorted(self.x)}, Y={sorted(self.y)}"
            )

    @classmethod
    def unconditional(cls, y: Iterable[str]) -> "ConditionalTerm":
        """The term h(Y) = h(Y | emptyset)."""
        return cls(y=frozenset(y), x=frozenset())

    @property
    def is_unconditional(self) -> bool:
        """True when X is empty."""
        return not self.x

    @property
    def free_variables(self) -> frozenset[str]:
        """Y - X."""
        return self.y - self.x

    def evaluate(self, h: SetFunction) -> float:
        """h(Y) - h(X) on a concrete set function."""
        return h(self.y) - h(self.x)

    def __str__(self) -> str:
        y_text = "".join(sorted(self.y))
        if self.is_unconditional:
            return f"h({y_text})"
        x_text = "".join(sorted(self.x))
        return f"h({y_text}|{x_text})"


class TermBag:
    """A non-negative, Fraction-weighted multiset of conditional terms."""

    def __init__(self, weights: Mapping[ConditionalTerm, Fraction | int | str] | None = None):
        self._weights: dict[ConditionalTerm, Fraction] = {}
        if weights:
            for term, weight in weights.items():
                self.add(term, weight)

    def copy(self) -> "TermBag":
        """A deep copy of the bag."""
        bag = TermBag()
        bag._weights = dict(self._weights)
        return bag

    def weight(self, term: ConditionalTerm) -> Fraction:
        """Current weight of ``term`` (0 if absent)."""
        return self._weights.get(term, Fraction(0))

    def add(self, term: ConditionalTerm, amount: Fraction | int | str) -> None:
        """Add ``amount`` (may not drive the weight negative)."""
        amount = Fraction(amount)
        new_weight = self.weight(term) + amount
        if new_weight < 0:
            raise ProofError(
                f"weight of {term} would become negative ({new_weight})"
            )
        if new_weight == 0:
            self._weights.pop(term, None)
        else:
            self._weights[term] = new_weight

    def remove(self, term: ConditionalTerm, amount: Fraction | int | str) -> None:
        """Remove ``amount`` of ``term`` (errors if not enough weight)."""
        self.add(term, -Fraction(amount))

    def items(self) -> Iterator[tuple[ConditionalTerm, Fraction]]:
        """Iterate (term, weight) pairs with positive weight."""
        return iter(self._weights.items())

    def terms(self) -> tuple[ConditionalTerm, ...]:
        """Terms with positive weight."""
        return tuple(self._weights.keys())

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, term: object) -> bool:
        return term in self._weights

    def total_weight(self) -> Fraction:
        """Sum of all weights."""
        return sum(self._weights.values(), Fraction(0))

    def evaluate(self, h: SetFunction) -> float:
        """The weighted sum sum_t w_t * (h(Y_t) - h(X_t)) on a set function."""
        return sum(float(w) * term.evaluate(h) for term, w in self._weights.items())

    def as_dict(self) -> dict[ConditionalTerm, Fraction]:
        """A copy of the underlying mapping."""
        return dict(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TermBag):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:
        parts = [f"{w} * {term}" for term, w in sorted(
            self._weights.items(), key=lambda kv: (len(kv[0].y), str(kv[0])))]
        return "TermBag(" + " + ".join(parts) + ")"
