"""The paper's Example 1 and Table 2, reproduced end to end.

Example 1 (Section 5.2.3):

    Q(A,B,C,D) <- R(A,B), S(B,C), T(C,D), W(A,C,D), V(A,B,D)

with degree constraints

    (emptyset, AB,  N_AB)        guarded by R,
    (emptyset, BC,  N_BC)        guarded by S,
    (emptyset, CD,  N_CD)        guarded by T,
    (AC,       ACD, N_ACD|AC)    guarded by W,
    (BD,       ABD, N_ABD|BD)    guarded by V.

The Shannon-flow inequality

    h(ABCD) <= 1/2 [ h(AB) + h(BC) + h(CD) + h(ACD|AC) + h(ABD|BD) ]

admits the 9-step proof sequence of Table 2, and PANDA evaluates the query in
time O~( sqrt(N_BC N_CD N_ABD|BD N_AB N_ACD|AC) ) using the threshold

    theta = sqrt( N_BC N_CD N_ABD|BD / (N_AB N_ACD|AC) ).

This module builds all of these objects, generates databases satisfying the
constraints, runs the interpreter, and regenerates the rows of Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.datagen.relations import random_relation, relation_with_degree_bound
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.panda.interpreter import PandaInterpreter, PandaResult
from repro.panda.proof_sequence import (
    CompositionStep,
    DecompositionStep,
    ProofSequence,
    SubmodularityStep,
    step_kind,
)
from repro.panda.shannon_flow import ShannonFlowInequality
from repro.panda.terms import ConditionalTerm
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.statistics import degree as relation_degree

_HALF = Fraction(1, 2)


def example1_query() -> ConjunctiveQuery:
    """The Example 1 query Q(A,B,C,D) <- R(A,B), S(B,C), T(C,D), W(A,C,D), V(A,B,D)."""
    return ConjunctiveQuery(
        [
            Atom("R", ("A", "B")),
            Atom("S", ("B", "C")),
            Atom("T", ("C", "D")),
            Atom("W", ("A", "C", "D")),
            Atom("V", ("A", "B", "D")),
        ],
        name="Q_example1",
    )


def example1_constraints(n_ab: int, n_bc: int, n_cd: int,
                         n_acd_given_ac: int, n_abd_given_bd: int
                         ) -> DegreeConstraintSet:
    """The five degree constraints of Example 1 with the given statistics."""
    return DegreeConstraintSet(
        ("A", "B", "C", "D"),
        [
            DegreeConstraint.cardinality(("A", "B"), n_ab, guard="R"),
            DegreeConstraint.cardinality(("B", "C"), n_bc, guard="S"),
            DegreeConstraint.cardinality(("C", "D"), n_cd, guard="T"),
            DegreeConstraint(x=frozenset("AC"), y=frozenset("ACD"),
                             bound=n_acd_given_ac, guard="W"),
            DegreeConstraint(x=frozenset("BD"), y=frozenset("ABD"),
                             bound=n_abd_given_bd, guard="V"),
        ],
    )


def example1_inequality() -> ShannonFlowInequality:
    """The Shannon-flow inequality of Example 1 (all coefficients 1/2)."""
    return ShannonFlowInequality.from_terms(
        ("A", "B", "C", "D"),
        {
            ConditionalTerm.unconditional(frozenset("AB")): _HALF,
            ConditionalTerm.unconditional(frozenset("BC")): _HALF,
            ConditionalTerm.unconditional(frozenset("CD")): _HALF,
            ConditionalTerm(y=frozenset("ACD"), x=frozenset("AC")): _HALF,
            ConditionalTerm(y=frozenset("ABD"), x=frozenset("BD")): _HALF,
        },
    )


def example1_proof_sequence() -> ProofSequence:
    """The 9-step proof sequence of Table 2 (all weights 1/2)."""
    f = frozenset
    steps = [
        DecompositionStep(y=f("BC"), x=f("B"), weight=_HALF),
        SubmodularityStep(i_set=f("CD"), j_set=f("B"), weight=_HALF),
        CompositionStep(y=f("BCD"), x=f("B"), weight=_HALF),
        SubmodularityStep(i_set=f("ABD"), j_set=f("BCD"), weight=_HALF),
        CompositionStep(y=f("ABCD"), x=f("BCD"), weight=_HALF),
        SubmodularityStep(i_set=f("BC"), j_set=f("AB"), weight=_HALF),
        CompositionStep(y=f("ABC"), x=f("AB"), weight=_HALF),
        SubmodularityStep(i_set=f("ACD"), j_set=f("ABC"), weight=_HALF),
        CompositionStep(y=f("ABCD"), x=f("ABC"), weight=_HALF),
    ]
    return ProofSequence(example1_inequality(), steps)


def example1_theta(n_ab: int, n_bc: int, n_cd: int,
                   n_acd_given_ac: int, n_abd_given_bd: int) -> float:
    """The paper's partition threshold theta (footnote of Table 2)."""
    numerator = n_bc * n_cd * n_abd_given_bd
    denominator = max(1, n_ab * n_acd_given_ac)
    return math.sqrt(numerator / denominator)


def example1_runtime_bound(n_ab: int, n_bc: int, n_cd: int,
                           n_acd_given_ac: int, n_abd_given_bd: int) -> float:
    """The PANDA runtime bound (75): sqrt(N_BC N_CD N_ABD|BD N_AB N_ACD|AC)."""
    return math.sqrt(
        float(n_bc) * n_cd * n_abd_given_bd * n_ab * n_acd_given_ac
    )


def example1_database(scale: int = 200, domain_size: int | None = None,
                      degree_bound: int = 4, seed: int = 0) -> Database:
    """A random database for Example 1 that satisfies its constraint shapes.

    ``scale`` controls the cardinalities of R, S, T; W and V are generated
    with bounded degree (``degree_bound``) over their conditioning pairs so
    that the two proper degree constraints hold by construction.
    """
    if domain_size is None:
        domain_size = max(4, int(round(math.sqrt(scale))))
    r = random_relation("R", ("A", "B"), scale, domain_size, seed=seed)
    s = random_relation("S", ("B", "C"), scale, domain_size, seed=seed + 1)
    t = random_relation("T", ("C", "D"), scale, domain_size, seed=seed + 2)
    w = relation_with_degree_bound(
        "W", ("A", "C", "D"), key=("A", "C"), max_degree=degree_bound,
        num_keys=min(scale, domain_size * domain_size), domain_size=domain_size,
        seed=seed + 3,
    )
    v = relation_with_degree_bound(
        "V", ("A", "B", "D"), key=("B", "D"), max_degree=degree_bound,
        num_keys=min(scale, domain_size * domain_size), domain_size=domain_size,
        seed=seed + 4,
    )
    return Database([r, s, t, w, v])


def observed_statistics(database: Database) -> dict[str, int]:
    """Read the Example 1 statistics (N_AB, ..., N_ABD|BD) off a database."""
    w = database["W"]
    v = database["V"]
    return {
        "N_AB": len(database["R"]),
        "N_BC": len(database["S"]),
        "N_CD": len(database["T"]),
        "N_ACD|AC": relation_degree(w, ("A", "C"), ("D",)) if len(w) else 0,
        "N_ABD|BD": relation_degree(v, ("B", "D"), ("A",)) if len(v) else 0,
    }


@dataclass
class Example1Run:
    """Everything the Example 1 / Table 2 experiment reports.

    Attributes
    ----------
    result:
        The PANDA execution result.
    statistics:
        The observed N_AB, ..., N_ABD|BD statistics.
    runtime_bound:
        The bound (75) evaluated on those statistics.
    theta:
        The partition threshold used.
    matches_generic_join:
        Whether PANDA's output equals Generic-Join's on the same instance.
    """

    result: PandaResult
    statistics: dict[str, int]
    runtime_bound: float
    theta: float
    matches_generic_join: bool


def run_example1(database: Database | None = None, scale: int = 200,
                 seed: int = 0) -> Example1Run:
    """Run PANDA on Example 1 (Table 2's program) and cross-check the output."""
    if database is None:
        database = example1_database(scale=scale, seed=seed)
    stats = observed_statistics(database)
    dc = example1_constraints(
        stats["N_AB"], stats["N_BC"], stats["N_CD"],
        max(1, stats["N_ACD|AC"]), max(1, stats["N_ABD|BD"]),
    )
    query = example1_query()
    sequence = example1_proof_sequence()
    theta = example1_theta(
        stats["N_AB"], stats["N_BC"], stats["N_CD"],
        max(1, stats["N_ACD|AC"]), max(1, stats["N_ABD|BD"]),
    )
    # The only decomposition step is step 0 (partition of S on B).
    interpreter = PandaInterpreter(query, database, dc, sequence,
                                   thresholds={0: theta},
                                   counter=OperationCounter())
    result = interpreter.run()
    expected = generic_join(query, database)
    bound = example1_runtime_bound(
        stats["N_AB"], stats["N_BC"], stats["N_CD"],
        max(1, stats["N_ACD|AC"]), max(1, stats["N_ABD|BD"]),
    )
    return Example1Run(
        result=result,
        statistics=stats,
        runtime_bound=bound,
        theta=theta,
        matches_generic_join=(result.output == expected),
    )


# The operation and action columns of Table 2, keyed by step index.
_TABLE2_OPERATIONS = {
    "decomposition": "partition",
    "submodularity": "NOOP",
    "composition": "join",
}

_TABLE2_ACTIONS = [
    "S -> S_heavy ∪ S_light at threshold theta on B",
    "T(C,D) now affiliated with h(BCD|B)",
    "I1(B,C,D) <- S_heavy(B,C), T(C,D)",
    "V(A,B,D) now affiliated with h(ABCD|BCD)",
    "output_1(A,B,C,D) <- V(A,B,D), I1(B,C,D)",
    "S_light now affiliated with h(ABC|AB)",
    "I2(A,B,C) <- R(A,B), S_light(B,C)",
    "W(A,C,D) now affiliated with h(ABCD|ABC)",
    "output_2(A,B,C,D) <- I2(A,B,C), W(A,C,D)",
]


def table2_rows(run: Example1Run | None = None) -> list[dict[str, str]]:
    """Regenerate the rows of Table 2.

    The "Name", "proof step" and "operation" columns are generated from the
    proof-sequence objects; the "action" column uses the paper's phrasing
    and, when an :class:`Example1Run` is supplied, is augmented with the
    measured action log (relation sizes included).
    """
    sequence = example1_proof_sequence()
    rows = []
    for index, step in enumerate(sequence):
        kind = step_kind(step)
        row = {
            "name": kind,
            "proof_step": step.describe(),
            "operation": _TABLE2_OPERATIONS[kind],
            "action": _TABLE2_ACTIONS[index],
        }
        if run is not None and index < len(run.result.log):
            row["measured"] = run.result.log[index]
        rows.append(row)
    return rows
