"""Observability: query-lifecycle tracing, metrics, and profiling.

Three small, dependency-free modules the engine threads through the
query lifecycle:

* :mod:`repro.obs.trace` — span-based tracing with NDJSON export and a
  no-op tracer (the default) whose overhead is a single attribute check;
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  with a JSON snapshot and Prometheus-style text exposition;
* :mod:`repro.obs.profile` — EXPLAIN ANALYZE: run a query under every
  feasible strategy and report each one's predicted envelope against the
  operations it actually performed (the cost model's calibration).

Nothing here imports from :mod:`repro.engine` (the engine imports *us*),
so the layer stays mountable on future surfaces — the ROADMAP's async
service wants ``metrics.exposition()`` behind a ``/metrics`` endpoint.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.profile import ProfileReport, StrategyProfile, profile_query
from repro.obs.trace import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProfileReport",
    "SpanRecord",
    "StrategyProfile",
    "Tracer",
    "parse_exposition",
    "profile_query",
]
