"""Span-based tracing for the query lifecycle.

A :class:`Tracer` hands out nested *spans* — named intervals with
wall-clock duration and arbitrary attributes — and keeps the finished
:class:`SpanRecord` list for inspection or NDJSON export.  The engine
opens one span per lifecycle stage (``query`` → ``parse`` /
``canonicalize`` / ``plan_cache.lookup`` / ``dispatch.price`` /
``index.resolve`` / ``execute`` / ``deliver``) so a trace shows exactly
where a query's time went and which stages a warm cache skipped.

Tracing is **off by default**: sessions built without a tracer get the
shared :data:`NULL_TRACER`, and every instrumentation site is guarded by
``if tracer.enabled`` — the disabled cost is one attribute read per
stage, not a context-manager entry (the overhead gate lives in
``benchmarks/bench_trace_overhead.py``).

Spans nest lexically via a stack: a span opened while another is active
records that span as its parent, which is the right model for the
engine's strictly call-structured lifecycle.  Work that happens *after*
the enclosing call returned (a lazy stream being drained) is recorded
with :meth:`Tracer.record`, passing explicit timestamps.
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, TextIO


@dataclass
class SpanRecord:
    """One finished span: a named interval with attributes.

    ``start`` is seconds since the tracer was created (monotonic), so
    records from one trace are directly comparable; ``duration_ms`` is
    wall-clock.  ``parent_id`` is ``None`` for root spans.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    duration_ms: float
    attributes: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "duration_ms": round(self.duration_ms, 4),
            "attributes": self.attributes,
        }


class _Span:
    """A live span: a context manager that records itself when closed."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "_start",
                 "attributes")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attributes: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self._start = 0.0

    def set(self, **attributes: Any) -> "_Span":
        """Attach attributes to the span (chainable)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        self._tracer._stack.append(self.span_id)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = time.perf_counter()
        stack = self._tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._finish(self, self._start, end)


class _NullSpan:
    """The do-nothing span: ``set`` and the context protocol are no-ops."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one session; export with :meth:`export_ndjson`.

    Attributes
    ----------
    enabled:
        Always True on a real tracer.  Instrumentation sites check this
        flag *before* building span attributes, so a :class:`NullTracer`
        (enabled=False) costs one attribute read.
    spans:
        Finished :class:`SpanRecord` objects, in completion order
        (children complete before parents).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack: list[int] = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _Span:
        """Open a span; use as ``with tracer.span("parse") as sp: ...``.

        The span's parent is whatever span is currently open (lexical
        nesting); attributes can be passed here or added later with
        ``sp.set(...)``.
        """
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return _Span(self, name, span_id, parent, dict(attributes))

    def record(self, name: str, start: float, end: float,
               parent_id: int | None = None, **attributes: Any) -> SpanRecord:
        """Record a span from explicit ``perf_counter`` timestamps.

        For intervals that outlive their lexical scope — e.g. a lazy
        result stream drained after ``stream()`` returned.
        """
        record = SpanRecord(
            name=name,
            span_id=self._next_id,
            parent_id=parent_id,
            start=start - self._epoch,
            duration_ms=(end - start) * 1000.0,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self.spans.append(record)
        return record

    def _finish(self, span: _Span, start: float, end: float) -> None:
        self.spans.append(SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start=start - self._epoch,
            duration_ms=(end - start) * 1000.0,
            attributes=span.attributes,
        ))

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop collected spans (the id counter keeps counting up)."""
        self.spans.clear()
        self._stack.clear()

    def find(self, name: str) -> list[SpanRecord]:
        """All finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def children(self, span: SpanRecord) -> list[SpanRecord]:
        """Finished spans whose parent is ``span``."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def export_ndjson(self, destination: str | TextIO) -> int:
        """Write one JSON object per span; returns the number written.

        ``destination`` is a path or an open text file.  Span order is
        completion order; consumers reconstruct the tree from
        ``span_id``/``parent_id``.
        """
        if isinstance(destination, (str, bytes)):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.export_ndjson(handle)
        for span in self.spans:
            destination.write(json.dumps(span.as_dict(), sort_keys=True))
            destination.write("\n")
        return len(self.spans)

    def to_ndjson(self) -> str:
        """The NDJSON export as a string."""
        buffer = io.StringIO()
        self.export_ndjson(buffer)
        return buffer.getvalue()

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.spans)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is False, so guarded sites skip attribute construction
    entirely; unguarded ``span()`` calls still work and return the
    shared no-op span.
    """

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float,
               parent_id: int | None = None, **attributes: Any) -> None:
        return None

    def reset(self) -> None:
        return None

    def export_ndjson(self, destination: str | TextIO) -> int:
        return 0

    def to_ndjson(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(())


#: The shared disabled tracer every untraced session uses.
NULL_TRACER = NullTracer()
