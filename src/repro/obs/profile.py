"""EXPLAIN ANALYZE: the cost model's predictions against measured work.

The dispatcher prices every feasible strategy with a *worst-case
envelope* (AGM / degree-aware / FAQ-width estimated operations, see
:mod:`repro.engine.cost`) and runs the cheapest.  Nothing in the survey
guarantees the envelope is *tight* on a given instance — that is exactly
what its worst-case framing leaves open — so this module closes the
loop: run the query under every priced strategy with a detail
:class:`~repro.joins.instrumentation.OperationCounter`, and report per
strategy the **calibration ratio** ``actual operations / predicted
envelope``.  A ratio near 1 means the instance realizes its worst case
(the AGM-tight constructions); a ratio far below 1 quantifies the
slack skew-adaptive dispatch would need to exploit.

``profile_query`` is deliberately engine-agnostic (the engine is passed
in and used through its public ``explain``/``execute`` surface) so this
module never imports :mod:`repro.engine` — the engine imports us.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter


@dataclass(frozen=True)
class StrategyProfile:
    """One strategy's measured run joined to its predicted envelope.

    Attributes
    ----------
    strategy:
        The executor that ran.
    predicted:
        The dispatcher's estimated operations for it (None when the
        profile ran under a forced mode, which skips pricing).
    operations:
        The detail counter's :meth:`~repro.joins.instrumentation.
        OperationCounter.as_dict` — actual work, including ``total``.
    breakdown:
        Per-variable / per-phase attribution (``search_nodes[A]``,
        ``semijoin.bottom_up.tuples_scanned``, ...).
    calibration:
        ``actual total / predicted`` — below 1 the envelope over-states
        the instance, near 1 the instance realizes its worst case; None
        without a finite positive prediction.
    wall_ms:
        Wall-clock of the measured run (context, not the primary axis:
        operation counts are what the bounds speak about).
    rows:
        Result cardinality.
    """

    strategy: str
    predicted: float | None
    operations: dict[str, int]
    breakdown: dict[str, int] = field(default_factory=dict)
    calibration: float | None = None
    wall_ms: float = 0.0
    rows: int = 0

    @property
    def actual(self) -> int:
        """Total measured operations."""
        return self.operations.get("total", 0)


@dataclass(frozen=True, eq=False)
class ProfileReport:
    """Every strategy's calibration for one query, plus the verdict.

    ``dispatch_optimal`` is whether the dispatched strategy's measured
    operation total is the minimum among the profiled strategies — i.e.
    whether the cost model's *ranking* was right on this instance, which
    is a weaker (and more achievable) property than its *values* being
    tight.
    """

    query: str
    mode: str
    dispatched: str
    agm_log2: float
    profiles: tuple[StrategyProfile, ...]
    best_strategy: str | None
    dispatch_optimal: bool

    def profile_for(self, strategy: str) -> StrategyProfile | None:
        for profile in self.profiles:
            if profile.strategy == strategy:
                return profile
        return None

    def render(self) -> str:
        """A human-readable calibration table (used by ``--profile``)."""
        lines = [f"profile:        {self.query}",
                 f"dispatched:     {self.dispatched} (mode={self.mode})"]
        header = (f"  {'strategy':<12} {'predicted':>12} {'actual':>10} "
                  f"{'calibration':>12} {'wall ms':>9} {'rows':>7}")
        lines.append(header)
        for profile in self.profiles:
            predicted = (f"{profile.predicted:.4g}"
                         if profile.predicted is not None else "—")
            ratio = (f"{profile.calibration:.3f}"
                     if profile.calibration is not None else "—")
            marker = " *" if profile.strategy == self.dispatched else ""
            lines.append(
                f"  {profile.strategy:<12} {predicted:>12} "
                f"{profile.actual:>10} {ratio:>12} "
                f"{profile.wall_ms:>9.2f} {profile.rows:>7}{marker}"
            )
        dispatched = self.profile_for(self.dispatched)
        if dispatched is not None and dispatched.breakdown:
            lines.append("  dispatched breakdown:")
            for label in sorted(dispatched.breakdown):
                lines.append(f"    {label} = {dispatched.breakdown[label]}")
        if self.best_strategy is not None:
            verdict = ("dispatch picked the empirically best strategy"
                       if self.dispatch_optimal else
                       f"dispatch picked {self.dispatched}; "
                       f"{self.best_strategy} did fewer operations")
            lines.append(f"  {verdict}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _priced_strategies(costs: dict[str, float]) -> list[tuple[str, float]]:
    """Feasible (finite-cost) strategy entries from a costs dict.

    The dispatcher's costs dict also carries meta entries for resolved
    sub-modes (``agg[recursion]``, ``ranked[anyk]``, ...); strategies are
    exactly the bracket-free keys.
    """
    return [(name, cost) for name, cost in sorted(costs.items())
            if "[" not in name and cost != float("inf")]


def profile_query(engine: Any, query: Any, mode: str = "auto",
                  aggregate_mode: str = "auto",
                  ranked_mode: str = "auto") -> ProfileReport:
    """Run ``query`` under every priced strategy and calibrate the model.

    Each run passes a fresh detail counter, which also bypasses the
    engine's result cache — a cached answer costs zero operations and
    would calibrate the model against nothing.  Under a forced ``mode``
    the dispatcher skips pricing, so only that strategy runs and its
    ``predicted`` is None.
    """
    explanation = engine.explain(query, mode=mode,
                                 aggregate_mode=aggregate_mode,
                                 ranked_mode=ranked_mode)
    priced = _priced_strategies(explanation.costs)
    if not priced:
        priced = [(explanation.strategy, None)]

    profiles: list[StrategyProfile] = []
    for strategy, predicted in priced:
        counter = OperationCounter(detail=True)
        start = time.perf_counter()
        try:
            result = engine.execute(query, mode=strategy, counter=counter,
                                    aggregate_mode=aggregate_mode,
                                    ranked_mode=ranked_mode)
        except QueryError:
            # Priced but unrunnable here (e.g. a stale plan regime);
            # profiling reports what did run rather than failing the lot.
            continue
        wall_ms = (time.perf_counter() - start) * 1000.0
        actual = counter.total()
        calibration = (actual / predicted
                       if predicted is not None and predicted > 0 else None)
        profiles.append(StrategyProfile(
            strategy=strategy,
            predicted=predicted,
            operations=counter.as_dict(),
            breakdown=dict(counter.breakdown),
            calibration=calibration,
            wall_ms=wall_ms,
            rows=len(result),
        ))

    best = min(profiles, key=lambda p: p.actual, default=None)
    dispatched_profile = next(
        (p for p in profiles if p.strategy == explanation.strategy), None)
    dispatch_optimal = (best is not None and dispatched_profile is not None
                        and dispatched_profile.actual == best.actual)
    return ProfileReport(
        query=explanation.query,
        mode=mode,
        dispatched=explanation.strategy,
        agm_log2=explanation.agm_log2,
        profiles=tuple(profiles),
        best_strategy=best.strategy if best is not None else None,
        dispatch_optimal=dispatch_optimal,
    )
