"""A session-level metrics registry with Prometheus-style exposition.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (queries served,
  cache lookups by outcome, dispatched strategies, operation kinds);
* :class:`Gauge` — point-in-time values (cache entry counts, warm
  indexes);
* :class:`Histogram` — distributions over fixed buckets (execution
  seconds, any-k time-to-first-row and inter-row delay).

Instruments are labelled: a metric declares its label *names* once and
each distinct label-value combination gets its own child series, exactly
like ``prometheus_client`` — without the dependency.  The registry
renders either a plain-dict snapshot (:meth:`MetricsRegistry.as_dict`)
or the text exposition format (:meth:`MetricsRegistry.exposition`) that
a future ``/metrics`` endpoint can serve verbatim;
:func:`parse_exposition` is the simple round-trip parser the test suite
checks the format against.

The any-k histograms are the measurable face of the delay guarantees in
*Optimal Join Algorithms Meet Top-k* (Tziavelis et al., PAPERS.md):
``repro_anyk_delay_seconds`` records the gap between consecutive ranked
rows, which an any-k plan bounds and a drain plan does not.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Iterator

#: Exponential bucket boundaries for time-valued histograms (seconds).
#: 10 µs .. ~5 s covers a pure-Python engine's per-query and per-row
#: scales; +Inf is implicit.
DEFAULT_TIME_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _labels_key(label_names: tuple[str, ...],
                labels: dict[str, str]) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _render_labels(label_names: tuple[str, ...],
                   values: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(name, value) for name, value in zip(label_names, values)]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class _Instrument:
    """Shared bookkeeping: name, help text, label names, child series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: tuple[str, ...] = ()):
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], Any] = {}

    def _child(self, labels: dict[str, str]) -> Any:
        key = _labels_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def series(self) -> Iterator[tuple[tuple[str, ...], Any]]:
        """(label values, child) pairs in insertion order."""
        return iter(self._children.items())

    def header(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}"]


class Counter(_Instrument):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def _make_child(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self._child(labels)[0] += amount

    def value(self, **labels: str) -> float:
        key = _labels_key(self.label_names, labels)
        child = self._children.get(key)
        return child[0] if child is not None else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.label_names:
            return {self.name: self.value()}
        return {
            self.name + _render_labels(self.label_names, values): child[0]
            for values, child in self.series()
        }

    def exposition(self) -> list[str]:
        lines = self.header()
        if not self.label_names and not self._children:
            lines.append(f"{self.name} 0")
            return lines
        for values, child in self.series():
            labels = _render_labels(self.label_names, values)
            lines.append(f"{self.name}{labels} {_format(child[0])}")
        return lines


class Gauge(_Instrument):
    """A point-in-time value that can go up or down."""

    kind = "gauge"

    def _make_child(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels: str) -> None:
        self._child(labels)[0] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        self._child(labels)[0] += amount

    def value(self, **labels: str) -> float:
        key = _labels_key(self.label_names, labels)
        child = self._children.get(key)
        return child[0] if child is not None else 0.0

    as_dict = Counter.as_dict
    exposition = Counter.exposition


class _HistogramChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """A distribution over fixed buckets, Prometheus-style.

    Buckets are upper bounds; export is cumulative with a trailing
    ``+Inf`` bucket equal to the observation count.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS):
        super().__init__(name, help_text, label_names)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one finite bucket")

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(len(self.buckets) + 1)

    def observe(self, value: float, **labels: str) -> None:
        child = self._child(labels)
        child.counts[bisect_left(self.buckets, value)] += 1
        child.sum += value
        child.count += 1

    def snapshot(self, **labels: str) -> dict[str, Any]:
        """Cumulative bucket counts plus sum/count for one series."""
        key = _labels_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, child.counts):
            running += count
            cumulative[_format(bound)] = running
        cumulative["+Inf"] = child.count
        return {"buckets": cumulative, "sum": child.sum,
                "count": child.count}

    def as_dict(self) -> dict[str, Any]:
        return {
            self.name + _render_labels(self.label_names, values):
                self.snapshot(**dict(zip(self.label_names, values)))
            for values, _ in self.series()
        }

    def exposition(self) -> list[str]:
        lines = self.header()
        for values, child in self.series():
            running = 0
            for bound, count in zip(self.buckets, child.counts):
                running += count
                labels = _render_labels(self.label_names, values,
                                        extra=(("le", _format(bound)),))
                lines.append(f"{self.name}_bucket{labels} {running}")
            labels = _render_labels(self.label_names, values,
                                    extra=(("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {child.count}")
            plain = _render_labels(self.label_names, values)
            lines.append(f"{self.name}_sum{plain} {_format(child.sum)}")
            lines.append(f"{self.name}_count{plain} {child.count}")
        return lines


def _format(value: float) -> str:
    """Numbers without a trailing ``.0`` on integers (``5`` not ``5.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """All of one session's instruments, by name.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same instrument (and raises if
    the second declaration disagrees on kind or labels).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _declare(self, cls: type, name: str, help_text: str,
                 label_names: tuple[str, ...], **kwargs: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or \
                    existing.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} re-declared with a different "
                    f"kind or labels"
                )
            return existing
        instrument = cls(name, help_text, tuple(label_names), **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "",
                label_names: tuple[str, ...] = ()) -> Counter:
        return self._declare(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: tuple[str, ...] = ()) -> Gauge:
        return self._declare(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  label_names: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        return self._declare(Histogram, name, help_text, label_names,
                             buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._instruments.values())

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of every instrument."""
        snapshot: dict[str, Any] = {}
        for instrument in self._instruments.values():
            snapshot.update(instrument.as_dict())
        return snapshot

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def exposition(self) -> str:
        """The Prometheus text exposition format, ready for ``/metrics``."""
        lines: list[str] = []
        for instrument in self._instruments.values():
            lines.extend(instrument.exposition())
        return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict[str, dict[str, float]]:
    """Parse the text exposition format back into nested dicts.

    Returns ``{metric_name: {rendered_labels: value}}`` where
    ``rendered_labels`` is the ``{a="b",...}`` suffix (empty string for
    unlabelled series).  Histogram ``_bucket``/``_sum``/``_count``
    series parse as ordinary metrics under their suffixed names.  This
    is the round-trip check for :meth:`MetricsRegistry.exposition`, not
    a general Prometheus parser.
    """
    parsed: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_and_labels, _, value = line.rpartition(" ")
        if "{" in name_and_labels:
            name, _, rest = name_and_labels.partition("{")
            labels = "{" + rest
        else:
            name, labels = name_and_labels, ""
        parsed.setdefault(name, {})[labels] = float(value)
    return parsed
