"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A relation or query was constructed with an inconsistent schema.

    Examples: duplicate attribute names, tuples whose arity does not match
    the schema, or joining relations on attributes that do not exist.
    """


class QueryError(ReproError):
    """A conjunctive query is malformed or cannot be evaluated as asked."""


class ParseError(QueryError):
    """The textual (datalog-style) query representation could not be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when the parser knows it (both None otherwise); the position
    is also baked into the message.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        if line is not None:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column


class ConstraintError(ReproError):
    """A degree constraint set is malformed or violated.

    Raised, for instance, when a constraint has no guard among the query
    atoms, when a database fails validation against a constraint set, or when
    an operation requires acyclic constraints but the set is cyclic.
    """


class UnboundedQueryError(ConstraintError):
    """The worst-case output size is unbounded under the given constraints.

    Per Claim 1 in the paper's Proposition 5.2, this happens exactly when
    some output variable is not "bound" by any chain of degree constraints
    starting from a cardinality constraint.
    """


class BoundError(ReproError):
    """An output-size bound could not be computed (e.g. an LP failed)."""


class LPError(BoundError):
    """The underlying linear program solver reported failure."""


class ProofError(ReproError):
    """A PANDA proof sequence is invalid or could not be constructed."""


class NotEntropicError(ReproError):
    """A set function claimed to be entropic/polymatroidal fails the axioms."""
