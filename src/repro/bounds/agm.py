"""The AGM bound (Atserias–Grohe–Marx; Corollary 4.2 in the paper).

For a full conjunctive query Q with hypergraph H = ([n], E) and any
fractional edge cover delta of H,

    |Q(D)| <= prod_{F in E} |R_F|^{delta_F},

and the best such bound is obtained by minimizing
``sum_F delta_F * log2 |R_F|`` over the fractional edge cover polytope.
With all relations of size N the optimum is N^{rho*(H)}.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.covers.edge_cover import (
    fractional_edge_cover,
    weighted_fractional_edge_cover,
)
from repro.errors import BoundError
from repro.query.atoms import ConjunctiveQuery
from repro.query.hypergraph import Hypergraph
from repro.relational.database import Database


@dataclass(frozen=True)
class AGMBound:
    """The AGM bound for a specific query and relation sizes.

    Attributes
    ----------
    log2_bound:
        log2 of the bound (``-inf`` when some weighted relation is empty).
    bound:
        The bound itself, ``2 ** log2_bound`` (0 for empty inputs).  May be
        ``inf`` if it overflows a float.
    cover:
        The optimal fractional edge cover weights delta_F, keyed by edge key.
    sizes:
        The relation sizes used, keyed by edge key.
    """

    log2_bound: float
    cover: dict[str, float]
    sizes: dict[str, int]

    @property
    def bound(self) -> float:
        """The bound as a plain number (2 ** log2_bound)."""
        if self.log2_bound == float("-inf"):
            return 0.0
        try:
            return 2.0 ** self.log2_bound
        except OverflowError:  # pragma: no cover - astronomically large bounds
            return float("inf")

    def permits(self, output_size: int, tolerance: float = 1e-9) -> bool:
        """True if an output of ``output_size`` tuples is within the bound."""
        if output_size == 0:
            return True
        if self.log2_bound == float("-inf"):
            return False
        return math.log2(output_size) <= self.log2_bound + tolerance


def agm_bound_from_sizes(hypergraph: Hypergraph, sizes: Mapping[str, int]) -> AGMBound:
    """Compute the AGM bound given a hypergraph and per-edge relation sizes."""
    for key in hypergraph.edge_keys:
        if key not in sizes:
            raise BoundError(f"no size provided for edge {key!r}")
        if sizes[key] < 0:
            raise BoundError(f"negative size for edge {key!r}")

    # An empty relation forces an empty output; the optimal cover puts all
    # its weight on that edge.
    empty_edges = [key for key in hypergraph.edge_keys if sizes[key] == 0]
    if empty_edges:
        cover = {key: 0.0 for key in hypergraph.edge_keys}
        # Covering every vertex with empty edges may be impossible, but the
        # bound is 0 regardless; report a cover using the unweighted optimum.
        base = fractional_edge_cover(hypergraph)
        cover.update(base.weights)
        return AGMBound(log2_bound=float("-inf"), cover=cover, sizes=dict(sizes))

    costs = {key: math.log2(sizes[key]) if sizes[key] > 1 else 0.0
             for key in hypergraph.edge_keys}
    cover = weighted_fractional_edge_cover(hypergraph, costs)
    log2_bound = sum(cover.weights[key] * costs[key] for key in hypergraph.edge_keys)
    return AGMBound(log2_bound=log2_bound, cover=dict(cover.weights), sizes=dict(sizes))


def agm_bound(query: ConjunctiveQuery, database: Database) -> AGMBound:
    """The AGM bound of ``query`` on the relation sizes found in ``database``."""
    query.validate_against(database)
    hypergraph = query.hypergraph()
    sizes = {
        query.edge_key(i): len(database.get(atom.relation))
        for i, atom in enumerate(query.atoms)
    }
    return agm_bound_from_sizes(hypergraph, sizes)


def rho_star(query: ConjunctiveQuery) -> float:
    """The fractional edge cover number rho*(Q) of the query hypergraph.

    With every relation of size N the AGM bound is N^{rho*}.
    """
    return fractional_edge_cover(query.hypergraph()).objective
