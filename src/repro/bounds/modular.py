"""The modular LP (54) and its dual (57) for acyclic degree constraints.

Proposition 4.4: when the constraint dependency graph G_DC is acyclic,

    max { h([n]) : h in M_n ∩ H_DC }
  = max { h([n]) : h in Gamma*_n-closure ∩ H_DC }
  = max { h([n]) : h in Gamma_n ∩ H_DC },

and the left-hand LP has only n variables (one per query variable):

    max  sum_i v_i
    s.t. sum_{i in Y - X} v_i <= log2 N_{Y|X}   for every (X, Y, N) in DC
         v_i >= 0.

Its dual (57) generalizes the AGM-bound LP: minimize
``sum delta_{Y|X} log2 N_{Y|X}`` subject to every variable being "covered"
with total delta-weight at least 1 by constraints whose free set contains it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.acyclify import all_variables_bound
from repro.constraints.degree import DegreeConstraintSet
from repro.covers.lp import LinearProgram
from repro.errors import UnboundedQueryError
from repro.infotheory.set_functions import SetFunction, modular_from_singletons


@dataclass(frozen=True)
class ModularBound:
    """Result of the modular (primal) LP and its dual.

    Attributes
    ----------
    log2_bound:
        Optimal value of the primal LP (= dual LP by strong duality).
    vertex_values:
        Optimal v_i per variable (the modular function's singleton values).
    dual_weights:
        Optimal dual weights delta_{Y|X} keyed by constraint index in DC.
    num_lp_variables / num_lp_constraints:
        Size of the primal LP (polynomial in n and |DC|).
    """

    log2_bound: float
    vertex_values: dict[str, float]
    dual_weights: dict[int, float]
    num_lp_variables: int
    num_lp_constraints: int

    @property
    def bound(self) -> float:
        """The bound as a plain number (2 ** log2_bound)."""
        try:
            return 2.0 ** self.log2_bound
        except OverflowError:  # pragma: no cover
            return float("inf")

    def modular_function(self, variables: tuple[str, ...]) -> SetFunction:
        """The optimal modular set function f(S) = sum_{i in S} v_i."""
        return modular_from_singletons(variables, self.vertex_values)


def _zero_bound_certificate(dc: DegreeConstraintSet) -> ModularBound | None:
    """The -inf bound forced by a zero-bound constraint, or None.

    A constraint ``(X, Y, 0)`` asserts its guard holds *no* Y-binding —
    an empty (or fully filtered-out) relation — so the output is provably
    empty and the LP is infeasible (its right-hand side would be
    ``log2 0 = -inf``, which the solver rightly rejects).  Mirroring
    :func:`repro.bounds.agm.agm_bound_from_sizes`'s empty-edge
    convention, the bound is reported directly as ``-inf`` with all the
    dual weight on the first empty constraint, instead of handing the
    solver an infinite coefficient.
    """
    for i, constraint in enumerate(dc):
        if constraint.bound == 0:
            return ModularBound(
                log2_bound=float("-inf"),
                vertex_values={v: 0.0 for v in dc.variables},
                dual_weights={j: (1.0 if j == i else 0.0)
                              for j in range(len(dc))},
                num_lp_variables=0,
                num_lp_constraints=0,
            )
    return None


def modular_bound(dc: DegreeConstraintSet) -> ModularBound:
    """Solve the primal modular LP (54) and report primal and dual optima.

    The LP is meaningful for any DC, but it equals the polymatroid bound
    only when DC is acyclic (Proposition 4.4); callers that care should check
    ``dc.is_acyclic()``.

    A constraint with bound 0 (an empty relation) makes the LP infeasible;
    the provably-empty ``-inf`` bound is returned without solving.

    Raises
    ------
    UnboundedQueryError
        If some variable is unbounded (no constraint's free set covers it
        reachable from cardinalities), making the LP unbounded.
    """
    empty = _zero_bound_certificate(dc)
    if empty is not None:
        return empty
    if not all_variables_bound(dc):
        raise UnboundedQueryError(
            "modular bound is infinite: some variable is not bound by the constraints"
        )
    lp = LinearProgram("modular-bound")
    for variable in dc.variables:
        lp.add_variable(f"v[{variable}]", lower=0.0, upper=None)
    lp.maximize({f"v[{variable}]": 1.0 for variable in dc.variables})
    for i, constraint in enumerate(dc):
        coeffs = {f"v[{variable}]": 1.0 for variable in constraint.free_variables}
        lp.add_constraint(f"dc[{i}]", coeffs, "<=", constraint.log_bound)
    solution = lp.solve()
    vertex_values = {
        variable: max(0.0, solution.values[f"v[{variable}]"])
        for variable in dc.variables
    }
    dual_weights = {
        i: abs(solution.dual_values.get(f"dc[{i}]", 0.0)) for i in range(len(dc))
    }
    return ModularBound(
        log2_bound=solution.objective,
        vertex_values=vertex_values,
        dual_weights=dual_weights,
        num_lp_variables=lp.num_variables,
        num_lp_constraints=lp.num_constraints,
    )


def modular_bound_dual(dc: DegreeConstraintSet) -> ModularBound:
    """Solve the dual LP (57) directly.

    min  sum_{(X,Y,N) in DC} delta_{Y|X} * log2 N_{Y|X}
    s.t. sum_{(X,Y) in DC, i in Y-X} delta_{Y|X} >= 1   for every variable i
         delta >= 0.

    Returns a :class:`ModularBound` whose ``dual_weights`` are the decision
    variables of this LP and whose ``vertex_values`` come from the LP duals.
    Strong duality makes its ``log2_bound`` equal to :func:`modular_bound`'s.
    A zero-bound constraint (empty relation) short-circuits to ``-inf``
    exactly like :func:`modular_bound` — here the infinity would land in
    the objective coefficients instead of the right-hand side.
    """
    empty = _zero_bound_certificate(dc)
    if empty is not None:
        return empty
    if not all_variables_bound(dc):
        raise UnboundedQueryError(
            "dual modular bound is infinite: some variable is not bound"
        )
    lp = LinearProgram("modular-bound-dual")
    for i, _ in enumerate(dc):
        lp.add_variable(f"delta[{i}]", lower=0.0, upper=None)
    lp.minimize({f"delta[{i}]": c.log_bound for i, c in enumerate(dc)})
    for variable in dc.variables:
        coeffs = {
            f"delta[{i}]": 1.0
            for i, constraint in enumerate(dc)
            if variable in constraint.free_variables
        }
        if not coeffs:
            raise UnboundedQueryError(
                f"variable {variable!r} is not covered by any constraint's free set"
            )
        lp.add_constraint(f"cover[{variable}]", coeffs, ">=", 1.0)
    solution = lp.solve()
    dual_weights = {
        i: max(0.0, solution.values[f"delta[{i}]"]) for i in range(len(dc))
    }
    vertex_values = {
        variable: abs(solution.dual_values.get(f"cover[{variable}]", 0.0))
        for variable in dc.variables
    }
    return ModularBound(
        log2_bound=solution.objective,
        vertex_values=vertex_values,
        dual_weights=dual_weights,
        num_lp_variables=lp.num_variables,
        num_lp_constraints=lp.num_constraints,
    )
