"""The polymatroid bound (Theorem 4.3, linear program (68)).

    log2 sup_{D |= DC} |Q(D)|  <=  max { h([n]) : h in Gamma_n ∩ H_DC }

where H_DC = { h : h(Y) - h(X) <= log2 N_{Y|X} for every (X, Y, N) in DC }.
The LP has one variable per non-empty subset of the query variables and the
elemental Shannon inequalities as constraints; it is exponential in query
size (as the paper notes) but easily solvable at query scale.

An optional strengthening adds Zhang–Yeung instances (over every ordered
4-tuple of variables) to the constraint set, yielding a bound at least as
tight as the polymatroid bound and still an upper bound on the entropic
bound — this is the knob used in the Table 1 experiment to exhibit the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.constraints.acyclify import all_variables_bound
from repro.constraints.degree import DegreeConstraintSet
from repro.covers.lp import LinearProgram
from repro.errors import UnboundedQueryError
from repro.infotheory.nonshannon import zhang_yeung_expression
from repro.infotheory.set_functions import SetFunction, all_subsets
from repro.infotheory.shannon import elemental_inequalities


def _key(subset: frozenset[str]) -> str:
    return "h[" + ",".join(sorted(subset)) + "]"


@dataclass(frozen=True)
class PolymatroidBound:
    """Result of the polymatroid-bound LP.

    Attributes
    ----------
    log2_bound:
        The optimal objective max h([n]).
    optimal_h:
        An optimizer h* as a :class:`SetFunction` (a polymatroid in H_DC).
    tight_constraints:
        Names of degree constraints with non-zero dual value (informational).
    num_lp_variables / num_lp_constraints:
        LP size, reported for the complexity discussion of Section 4.2.
    """

    log2_bound: float
    optimal_h: SetFunction
    tight_constraints: tuple[str, ...]
    num_lp_variables: int
    num_lp_constraints: int

    @property
    def bound(self) -> float:
        """The bound as a plain number (2 ** log2_bound)."""
        try:
            return 2.0 ** self.log2_bound
        except OverflowError:  # pragma: no cover
            return float("inf")


def polymatroid_bound(dc: DegreeConstraintSet,
                      use_zhang_yeung: bool = False) -> PolymatroidBound:
    """Solve LP (68): maximize h(V) over Gamma_n ∩ H_DC.

    Parameters
    ----------
    dc:
        The degree constraints; every constraint contributes
        ``h(Y) - h(X) <= log2 N``.
    use_zhang_yeung:
        When True and the query has at least 4 variables, also impose every
        instance of the Zhang–Yeung non-Shannon inequality.  The result is
        then a (possibly strictly) tighter upper bound that still dominates
        the entropic bound.

    Raises
    ------
    UnboundedQueryError
        If some variable is not bound by DC (the LP would be unbounded).
    """
    variables = dc.variables
    for i, constraint in enumerate(dc):
        if constraint.bound == 0:
            # An empty guard relation: h(Y) - h(X) <= log2 0 makes the LP
            # infeasible (monotone h has h(Y) >= h(X)); the output is
            # provably empty, so report -inf with the zero polymatroid
            # rather than handing the solver an infinite right-hand side.
            return PolymatroidBound(
                log2_bound=float("-inf"),
                optimal_h=SetFunction(
                    variables,
                    {s: 0.0 for s in all_subsets(variables)},
                ),
                tight_constraints=(f"dc[{i}]",),
                num_lp_variables=0,
                num_lp_constraints=0,
            )
    if not all_variables_bound(dc):
        raise UnboundedQueryError(
            "polymatroid bound is infinite: some variable is not bound by the "
            "degree constraints"
        )

    lp = LinearProgram("polymatroid-bound")
    for subset in all_subsets(variables):
        if subset:
            lp.add_variable(_key(subset), lower=0.0, upper=None)

    full = frozenset(variables)
    lp.maximize({_key(full): 1.0})

    constraint_names: list[str] = []
    for i, constraint in enumerate(dc):
        name = f"dc[{i}]"
        coeffs: dict[str, float] = {_key(constraint.y): 1.0}
        if constraint.x:
            coeffs[_key(constraint.x)] = coeffs.get(_key(constraint.x), 0.0) - 1.0
        lp.add_constraint(name, coeffs, "<=", constraint.log_bound)
        constraint_names.append(name)

    count = 0
    for ineq in elemental_inequalities(variables):
        coeffs = {_key(s): c for s, c in ineq.coefficients if s}
        lp.add_constraint(f"shannon[{count}]", coeffs, ">=", 0.0)
        count += 1

    if use_zhang_yeung and len(variables) >= 4:
        zy_count = 0
        for quad in permutations(variables, 4):
            expr = zhang_yeung_expression(quad)
            coeffs = {}
            for s, c in expr.coefficients:
                if s:
                    coeffs[_key(s)] = coeffs.get(_key(s), 0.0) + c
            lp.add_constraint(f"zy[{zy_count}]", coeffs, ">=", 0.0)
            zy_count += 1

    solution = lp.solve()
    values = {s: solution.values[_key(s)] for s in all_subsets(variables) if s}
    values[frozenset()] = 0.0
    optimal_h = SetFunction(variables, values)
    tight = tuple(
        name for name in constraint_names
        if abs(solution.dual_values.get(name, 0.0)) > 1e-9
    )
    return PolymatroidBound(
        log2_bound=solution.objective,
        optimal_h=optimal_h,
        tight_constraints=tight,
        num_lp_variables=lp.num_variables,
        num_lp_constraints=lp.num_constraints,
    )
