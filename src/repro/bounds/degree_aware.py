"""Bound dispatch: pick the right LP for the constraints at hand.

This is the module a query optimizer would call: given a query, a database
and (optionally) a constraint set, return the tightest computable worst-case
output size bound together with which machinery produced it.

Dispatch rules (mirroring the paper's Table 1 and Proposition 4.4):

* cardinality constraints only  -> AGM bound (fractional edge cover LP);
* acyclic degree constraints    -> modular LP (poly-size; equals polymatroid);
* general degree constraints    -> polymatroid LP (exponential-size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.agm import agm_bound
from repro.bounds.modular import modular_bound
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import DegreeConstraintSet, cardinality_constraints
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database


@dataclass(frozen=True)
class OutputSizeBound:
    """A worst-case output size bound and how it was obtained.

    Attributes
    ----------
    log2_bound:
        log2 of the bound (``-inf`` means the output is provably empty).
    method:
        One of ``"agm"``, ``"modular"``, ``"polymatroid"``.
    detail:
        The underlying bound object (AGMBound / ModularBound /
        PolymatroidBound) for callers that need the LP solution.
    """

    log2_bound: float
    method: str
    detail: object

    @property
    def bound(self) -> float:
        """The bound as a plain number."""
        if self.log2_bound == float("-inf"):
            return 0.0
        try:
            return 2.0 ** self.log2_bound
        except OverflowError:  # pragma: no cover
            return float("inf")


def output_size_bound(query: ConjunctiveQuery, database: Database | None = None,
                      dc: DegreeConstraintSet | None = None) -> OutputSizeBound:
    """The tightest computable worst-case output-size bound.

    Parameters
    ----------
    query:
        The conjunctive query.
    database:
        Needed when ``dc`` is None (cardinalities are read off the data) or
        when the AGM path is taken.
    dc:
        Explicit degree constraints.  When omitted, the cardinality
        constraints implied by the database are used and the AGM bound is
        returned.
    """
    if dc is None:
        if database is None:
            raise ValueError("either a database or a constraint set is required")
        dc = cardinality_constraints(query, database)

    if dc.only_cardinalities() and database is not None:
        detail = agm_bound(query, database)
        return OutputSizeBound(log2_bound=detail.log2_bound, method="agm", detail=detail)

    if dc.is_acyclic():
        detail = modular_bound(dc)
        return OutputSizeBound(log2_bound=detail.log2_bound, method="modular", detail=detail)

    detail = polymatroid_bound(dc)
    return OutputSizeBound(log2_bound=detail.log2_bound, method="polymatroid", detail=detail)


def worst_case_output_size(query: ConjunctiveQuery, database: Database | None = None,
                           dc: DegreeConstraintSet | None = None) -> float:
    """Convenience wrapper returning the numeric bound only."""
    return output_size_bound(query, database=database, dc=dc).bound
