"""Worst-case output size bounds: AGM, polymatroid, modular/acyclic, entropic."""

from repro.bounds.agm import AGMBound, agm_bound, agm_bound_from_sizes, rho_star
from repro.bounds.polymatroid import PolymatroidBound, polymatroid_bound
from repro.bounds.modular import ModularBound, modular_bound, modular_bound_dual
from repro.bounds.entropic import entropic_bound_estimate
from repro.bounds.degree_aware import output_size_bound, worst_case_output_size

__all__ = [
    "AGMBound",
    "agm_bound",
    "agm_bound_from_sizes",
    "rho_star",
    "PolymatroidBound",
    "polymatroid_bound",
    "ModularBound",
    "modular_bound",
    "modular_bound_dual",
    "entropic_bound_estimate",
    "output_size_bound",
    "worst_case_output_size",
]
