"""The entropic bound (Theorem 4.3) and computable estimates of it.

The entropic bound max { h([n]) : h in closure(Gamma*_n) ∩ H_DC } is tight
but not known to be computable (Open Problem 1 in the paper): there is no
finite linear-inequality description of the entropic cone for n >= 4.  This
module provides what *is* computable:

* for n <= 3, closure(Gamma*_n) = Gamma_n, so the entropic bound *equals*
  the polymatroid bound and we return it exactly;
* for n >= 4, we return the polymatroid bound optionally strengthened with
  all Zhang–Yeung inequality instances — an upper bound on the entropic
  bound that is sometimes strictly tighter than the plain polymatroid bound
  (this is exactly how the paper demonstrates the Table 1 gap);
* a lower-bound helper that evaluates h([n]) for entropy functions of
  concrete databases, giving certified two-sided estimates in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.polymatroid import PolymatroidBound, polymatroid_bound
from repro.constraints.degree import DegreeConstraintSet


@dataclass(frozen=True)
class EntropicBoundEstimate:
    """A two-sided estimate of the entropic bound.

    Attributes
    ----------
    upper_log2:
        A valid upper bound on the entropic bound (log2 scale).
    exact:
        True when ``upper_log2`` is known to equal the entropic bound
        (n <= 3, where the Shannon inequalities characterize entropy).
    polymatroid:
        The underlying polymatroid-bound result used.
    used_zhang_yeung:
        Whether Zhang–Yeung strengthening was applied.
    """

    upper_log2: float
    exact: bool
    polymatroid: PolymatroidBound
    used_zhang_yeung: bool

    @property
    def upper(self) -> float:
        """The upper estimate as a plain number."""
        try:
            return 2.0 ** self.upper_log2
        except OverflowError:  # pragma: no cover
            return float("inf")


def entropic_bound_estimate(dc: DegreeConstraintSet,
                            use_zhang_yeung: bool = True) -> EntropicBoundEstimate:
    """Best available upper estimate of the entropic bound for ``dc``.

    For three or fewer variables the estimate is exact; otherwise it is the
    (optionally Zhang–Yeung-strengthened) polymatroid bound, which upper
    bounds the entropic bound by the inclusion chain (34).
    """
    n = len(dc.variables)
    if n <= 3:
        result = polymatroid_bound(dc, use_zhang_yeung=False)
        return EntropicBoundEstimate(
            upper_log2=result.log2_bound,
            exact=True,
            polymatroid=result,
            used_zhang_yeung=False,
        )
    apply_zy = use_zhang_yeung and n >= 4
    result = polymatroid_bound(dc, use_zhang_yeung=apply_zy)
    return EntropicBoundEstimate(
        upper_log2=result.log2_bound,
        exact=False,
        polymatroid=result,
        used_zhang_yeung=apply_zy,
    )
