"""Loomis–Whitney query instances LW(k).

LW(k) has k variables and k atoms, each atom containing all but one
variable; its fractional edge cover number is k / (k - 1), so with every
relation of size N the AGM bound is N^{k/(k-1)}.  These are the queries for
which Ngo et al. proved every join-project plan is worse than the WCOJ
algorithm by a factor of Omega(N^{1 - 1/k}) (Section 1.2).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.query.atoms import ConjunctiveQuery, loomis_whitney_query
from repro.relational.database import Database
from repro.relational.relation import Relation


def _atom_tuples(variables: tuple[str, ...], atom_vars: tuple[str, ...],
                 full_tuples: Iterable[tuple]) -> set[tuple]:
    positions = [variables.index(v) for v in atom_vars]
    return {tuple(t[p] for p in positions) for t in full_tuples}


def loomis_whitney_agm_tight_instance(k: int, n: int
                                      ) -> tuple[ConjunctiveQuery, Database]:
    """The AGM-tight LW(k) instance with every relation of size ~ n.

    The domain of every variable has size m = floor(n^{1/(k-1)}); each atom's
    relation is the full cross product of its k-1 domains (size m^{k-1} ~ n),
    and the output is the full cube of size m^k ~ n^{k/(k-1)}.
    """
    query = loomis_whitney_query(k)
    m = max(1, int(round(n ** (1.0 / (k - 1)))))
    relations = []
    for atom in query.atoms:
        arity = len(atom.variables)
        tuples = _cartesian_power(range(m), arity)
        relations.append(Relation(atom.relation, atom.variables, tuples))
    return query, Database(relations)


def _cartesian_power(values: Iterable[int], arity: int) -> list[tuple]:
    values = list(values)
    tuples: list[tuple] = [()]
    for _ in range(arity):
        tuples = [t + (v,) for t in tuples for v in values]
    return tuples


def loomis_whitney_random_instance(k: int, n: int, domain_size: int | None = None,
                                   seed: int = 0
                                   ) -> tuple[ConjunctiveQuery, Database]:
    """A random LW(k) instance: each relation is n tuples sampled uniformly
    from a domain of the given size (default ~ n^{1/(k-1)} * 2 so relations
    are sparse but joins are non-trivial)."""
    query = loomis_whitney_query(k)
    if domain_size is None:
        domain_size = max(2, int(round(2 * n ** (1.0 / (k - 1)))))
    rng = random.Random(seed)
    relations = []
    for atom in query.atoms:
        arity = len(atom.variables)
        tuples: set[tuple] = set()
        possible = domain_size ** arity
        target = min(n, possible)
        while len(tuples) < target:
            tuples.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
        relations.append(Relation(atom.relation, atom.variables, tuples))
    return query, Database(relations)


def loomis_whitney_expected_output(k: int, n: int) -> float:
    """The AGM bound value n^{k/(k-1)} for reference in experiments."""
    return float(n) ** (k / (k - 1.0))


def loomis_whitney_bound_exponent(k: int) -> float:
    """rho*(LW(k)) = k / (k - 1)."""
    return k / (k - 1.0)


def loomis_whitney_plan_gap_exponent(k: int) -> float:
    """The paper's separation exponent: any join-project plan is worse than
    the WCOJ runtime by a factor Omega(N^{1 - 1/k})."""
    return 1.0 - 1.0 / k


def loomis_whitney_pairwise_lower_bound(k: int, n: int) -> float:
    """A lower bound on the largest intermediate of any pairwise plan on the
    AGM-tight instance.

    On the tight instance every join of two atoms covers all k variables, and
    joining the two relations (each the full (k-1)-cube) produces the set of
    pairs agreeing on their k-2 shared variables: m^{k-2} * m * m = m^k
    tuples where m = n^{1/(k-1)}... which equals the output size; the real
    separation appears for join-*project* plans on skewed instances.  For the
    tight instance we report m^k as the floor on intermediate size, i.e. the
    output size itself, and experiments measure the actual intermediates.
    """
    m = max(1, int(round(n ** (1.0 / (k - 1)))))
    return float(m) ** k


def loomis_whitney_skew_instance(k: int, n: int) -> tuple[ConjunctiveQuery, Database]:
    """A skewed LW(k) instance generalizing the star triangle instance.

    Each relation is a union of (k-1) axis-aligned "beams" through the
    all-zero point: for each of its attributes, the tuples that are zero
    everywhere except possibly that attribute.  Relations have ~ (k-1) * m
    tuples, the output is O(k * m), but pairwise joins blow up to ~ m^2.
    """
    query = loomis_whitney_query(k)
    m = max(1, n // max(1, (k - 1)))
    relations = []
    for atom in query.atoms:
        arity = len(atom.variables)
        tuples: set[tuple] = set()
        tuples.add(tuple(0 for _ in range(arity)))
        for axis in range(arity):
            for value in range(1, m + 1):
                tup = [0] * arity
                tup[axis] = value
                tuples.add(tuple(tup))
        relations.append(Relation(atom.relation, atom.variables, tuples))
    return query, Database(relations)
