"""Random relations under cardinality, degree, and FD constraints.

These generators feed the degree-constraint experiments (Algorithm 3, PANDA,
the bound-tightness checks): they produce relations that *provably* satisfy a
requested maximum degree or functional dependency, so constraint sets built
from the generator parameters are guaranteed to validate.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.relational.relation import Relation


def random_relation(name: str, attributes: Sequence[str], num_tuples: int,
                    domain_size: int, seed: int = 0) -> Relation:
    """A relation of ``num_tuples`` distinct tuples drawn uniformly from
    ``[domain_size]^arity``."""
    rng = random.Random(seed)
    arity = len(attributes)
    possible = domain_size ** arity
    target = min(num_tuples, possible)
    tuples: set[tuple] = set()
    while len(tuples) < target:
        tuples.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
    return Relation(name, attributes, tuples)


def relation_with_degree_bound(name: str, attributes: Sequence[str],
                               key: Sequence[str], max_degree: int,
                               num_keys: int, domain_size: int,
                               seed: int = 0) -> Relation:
    """A relation in which every ``key``-value has at most ``max_degree``
    distinct extensions on the remaining attributes.

    ``num_keys`` distinct key values are generated; each receives between 1
    and ``max_degree`` extensions.  The result therefore guards the degree
    constraint (key, attributes, max_degree) by construction.
    """
    rng = random.Random(seed)
    key = tuple(key)
    rest = tuple(a for a in attributes if a not in key)
    key_positions = {a: i for i, a in enumerate(attributes)}
    tuples: set[tuple] = set()
    seen_keys: set[tuple] = set()
    while len(seen_keys) < num_keys:
        key_value = tuple(rng.randrange(domain_size) for _ in key)
        if key_value in seen_keys:
            continue
        seen_keys.add(key_value)
        extensions = rng.randint(1, max_degree)
        chosen: set[tuple] = set()
        attempts = 0
        while len(chosen) < extensions and attempts < 20 * extensions + 10:
            chosen.add(tuple(rng.randrange(domain_size) for _ in rest))
            attempts += 1
        for ext in chosen:
            row = [None] * len(attributes)
            for i, a in enumerate(key):
                row[key_positions[a]] = key_value[i]
            for i, a in enumerate(rest):
                row[key_positions[a]] = ext[i]
            tuples.add(tuple(row))
    return Relation(name, attributes, tuples)


def relation_with_fd(name: str, attributes: Sequence[str], determinant: Sequence[str],
                     num_tuples: int, domain_size: int, seed: int = 0) -> Relation:
    """A relation satisfying the FD ``determinant -> attributes``.

    Every determinant value maps to exactly one combination of the remaining
    attributes (a degree bound of 1), so key/foreign-key style schemas can be
    assembled from these.
    """
    rng = random.Random(seed)
    determinant = tuple(determinant)
    rest = tuple(a for a in attributes if a not in determinant)
    positions = {a: i for i, a in enumerate(attributes)}
    assignment: dict[tuple, tuple] = {}
    tuples: set[tuple] = set()
    attempts = 0
    while len(tuples) < num_tuples and attempts < 50 * num_tuples + 100:
        attempts += 1
        det_value = tuple(rng.randrange(domain_size) for _ in determinant)
        if det_value not in assignment:
            assignment[det_value] = tuple(rng.randrange(domain_size) for _ in rest)
        rest_value = assignment[det_value]
        row = [None] * len(attributes)
        for i, a in enumerate(determinant):
            row[positions[a]] = det_value[i]
        for i, a in enumerate(rest):
            row[positions[a]] = rest_value[i]
        tuples.add(tuple(row))
    return Relation(name, attributes, tuples)


def functional_chain_database(chain_length: int, fanout: int, num_roots: int,
                              seed: int = 0) -> dict[str, Relation]:
    """Relations forming a chain R1(X1), R2(X1, X2), ..., each R_{i+1}
    mapping X_i to at most ``fanout`` values of X_{i+1}.

    This is the shape of the paper's query (63):
    Q(A,B,C,D) <- R(A), S(A,B), T(B,C), W(C,A,D), where only per-step degree
    bounds (not cardinalities) are known for the later relations.
    """
    rng = random.Random(seed)
    relations: dict[str, Relation] = {}
    roots = list(range(num_roots))
    relations["R1"] = Relation("R1", ("X1",), [(r,) for r in roots])
    current_values = roots
    for step in range(1, chain_length):
        name = f"R{step + 1}"
        attrs = (f"X{step}", f"X{step + 1}")
        tuples = []
        next_values: set[int] = set()
        for value in current_values:
            for _ in range(rng.randint(1, fanout)):
                nxt = rng.randrange(num_roots * fanout * 2)
                tuples.append((value, nxt))
                next_values.add(nxt)
        relations[name] = Relation(name, attrs, set(tuples))
        current_values = sorted(next_values)
    return relations
