"""AGM-tight and skew-hard instances for the canonical cyclic queries.

Two instance families drive the paper's story for the triangle query:

* the *AGM-tight* ("lens") instances — three complete bipartite relations
  over domains of size sqrt(N) — on which the output actually reaches the
  AGM bound N^{3/2} (this is the Atserias et al. tightness construction);
* the *skew* instances — star-shaped relations with one high-degree value —
  on which the output is only O(N) but every pairwise join materializes an
  Omega(N^2) intermediate, the separation that motivates WCOJ algorithms.

The same constructions generalize to k-cliques, k-cycles and Loomis–Whitney
queries (the latter live in :mod:`repro.datagen.loomis_whitney`).
"""

from __future__ import annotations

import math

from repro.query.atoms import ConjunctiveQuery, clique_query, cycle_query, triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


def triangle_database(r: Relation, s: Relation, t: Relation) -> Database:
    """Bundle three relations (schemas (A,B), (B,C), (A,C)) into a database
    named R, S, T, matching :func:`repro.query.atoms.triangle_query`."""
    return Database([
        r.with_name("R") if r.name != "R" else r,
        s.with_name("S") if s.name != "S" else s,
        t.with_name("T") if t.name != "T" else t,
    ])


def triangle_agm_tight_instance(n: int) -> tuple[ConjunctiveQuery, Database]:
    """The AGM-tight triangle instance with |R| = |S| = |T| ~ n.

    Domains of size m = floor(sqrt(n)); each relation is the complete
    bipartite relation [m] x [m], so the output has m^3 ~ n^{3/2} triangles,
    matching the AGM bound sqrt(|R| |S| |T|).
    """
    m = max(1, int(math.isqrt(n)))
    pairs = [(i, j) for i in range(m) for j in range(m)]
    r = Relation("R", ("A", "B"), pairs)
    s = Relation("S", ("B", "C"), pairs)
    t = Relation("T", ("A", "C"), pairs)
    return triangle_query(), Database([r, s, t])


def triangle_skew_instance(n: int) -> tuple[ConjunctiveQuery, Database]:
    """The skew ("star") triangle instance of size ~n per relation.

    Each relation is the union of two stars centered at value 0, e.g.
    R = {(i, 0)} ∪ {(0, j)} for i, j in [m] with m = n // 2.  The output has
    only O(n) triangles, yet R JOIN S (and every other pairwise join)
    contains Omega(n^2 / 4) tuples — the instance from the "skew strikes
    back" discussion that separates WCOJ algorithms from every pairwise plan.
    """
    m = max(1, n // 2)
    star_pairs = [(i, 0) for i in range(1, m + 1)] + [(0, j) for j in range(1, m + 1)]
    star_pairs.append((0, 0))
    r = Relation("R", ("A", "B"), star_pairs)
    s = Relation("S", ("B", "C"), star_pairs)
    t = Relation("T", ("A", "C"), star_pairs)
    return triangle_query(), Database([r, s, t])


def clique_agm_tight_instance(k: int, n: int) -> tuple[ConjunctiveQuery, Database]:
    """The AGM-tight k-clique instance: every pair relation is the complete
    relation over domains of size floor(sqrt(n)), giving output ~ n^{k/2}."""
    query = clique_query(k)
    m = max(1, int(math.isqrt(n)))
    pairs = [(i, j) for i in range(m) for j in range(m)]
    relations = []
    for atom in query.atoms:
        relations.append(Relation(atom.relation, ("A", "B"), pairs))
    return query, Database(relations)


def cycle_agm_tight_instance(k: int, n: int) -> tuple[ConjunctiveQuery, Database]:
    """The AGM-tight k-cycle instance (complete relations over sqrt(n)-sized
    domains); rho* = k/2 so the output is ~ n^{k/2}."""
    query = cycle_query(k)
    m = max(1, int(math.isqrt(n)))
    pairs = [(i, j) for i in range(m) for j in range(m)]
    relations = []
    for atom in query.atoms:
        relations.append(Relation(atom.relation, ("A", "B"), pairs))
    return query, Database(relations)


def triangle_from_graph(edges: Relation) -> tuple[ConjunctiveQuery, Database]:
    """Triangle counting on a single (directed) graph: R = S = T = edges.

    This is the R = S = T = E setting the paper highlights for social-network
    analysis; the same edge relation is bound to all three atoms.
    """
    r = edges.with_name("R")
    s = Relation("S", ("B", "C"), edges.tuples)
    t = Relation("T", ("A", "C"), edges.tuples)
    return triangle_query(), Database([r, s, t])
