"""Synthetic workload generators: graphs, AGM-tight instances, skewed
instances, Loomis–Whitney instances, and degree-constrained relations."""

from repro.datagen.graphs import (
    erdos_renyi_graph,
    zipf_graph,
    complete_bipartite_graph,
    social_graph,
)
from repro.datagen.worstcase import (
    triangle_agm_tight_instance,
    triangle_skew_instance,
    clique_agm_tight_instance,
    cycle_agm_tight_instance,
    triangle_database,
)
from repro.datagen.loomis_whitney import (
    loomis_whitney_agm_tight_instance,
    loomis_whitney_random_instance,
)
from repro.datagen.relations import (
    random_relation,
    relation_with_degree_bound,
    relation_with_fd,
)

__all__ = [
    "erdos_renyi_graph",
    "zipf_graph",
    "complete_bipartite_graph",
    "social_graph",
    "triangle_agm_tight_instance",
    "triangle_skew_instance",
    "clique_agm_tight_instance",
    "cycle_agm_tight_instance",
    "triangle_database",
    "loomis_whitney_agm_tight_instance",
    "loomis_whitney_random_instance",
    "random_relation",
    "relation_with_degree_bound",
    "relation_with_fd",
]
