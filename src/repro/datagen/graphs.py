"""Random and structured graph generators.

Graphs are the paper's motivating workload (triangle counting and subgraph
queries on social networks); all generators return edge relations with schema
(src, dst) named to the caller's liking and are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.query.atoms import triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


def erdos_renyi_graph(num_vertices: int, num_edges: int, seed: int = 0,
                      name: str = "E", attributes: Sequence[str] = ("A", "B"),
                      allow_self_loops: bool = False) -> Relation:
    """A uniform random directed graph with (up to) ``num_edges`` distinct edges.

    Edges are sampled without replacement; if the requested number exceeds
    the number of possible edges the complete graph is returned.
    """
    rng = random.Random(seed)
    possible = num_vertices * (num_vertices - (0 if allow_self_loops else 1))
    target = min(num_edges, possible)
    edges: set[tuple[int, int]] = set()
    while len(edges) < target:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if not allow_self_loops and u == v:
            continue
        edges.add((u, v))
    return Relation(name, attributes, edges)


def zipf_graph(num_vertices: int, num_edges: int, skew: float = 1.0, seed: int = 0,
               name: str = "E", attributes: Sequence[str] = ("A", "B")) -> Relation:
    """A directed graph whose endpoints follow a Zipf-like distribution.

    Vertex i is chosen with probability proportional to 1 / (i + 1)^skew,
    producing the heavy-hitter degree skew that motivates the heavy/light
    algorithms (Algorithm 2, PANDA's partitioning steps).
    """
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** skew for i in range(num_vertices)]
    vertices = list(range(num_vertices))
    edges: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = 50 * num_edges + 100
    while len(edges) < num_edges and attempts < max_attempts:
        u = rng.choices(vertices, weights=weights, k=1)[0]
        v = rng.choices(vertices, weights=weights, k=1)[0]
        attempts += 1
        if u == v:
            continue
        edges.add((u, v))
    return Relation(name, attributes, edges)


def zipf_outdegree_graph(num_sources: int, num_targets: int, num_edges: int,
                         skew: float = 1.0, seed: int = 0, name: str = "E",
                         attributes: Sequence[str] = ("A", "B")) -> Relation:
    """A directed graph with an *exact* Zipf out-degree sequence.

    The source of rank i gets out-degree proportional to 1 / (i + 1)^skew
    (scaled so the total is ~``num_edges``, every source keeping at least
    one edge, capped at ``num_targets``); its targets are sampled
    uniformly without replacement.  Unlike :func:`zipf_graph`'s rejection
    sampling, the degree sequence here is deterministic given the
    parameters — rank 0 *is* the heavy hitter the heavy/light machinery
    partitions out — which is what the skew-workload harness needs to
    sweep exponents reproducibly.
    """
    rng = random.Random(seed)
    weights = [(i + 1) ** -skew for i in range(num_sources)]
    scale = num_edges / sum(weights)
    edges = []
    for i in range(num_sources):
        degree = min(num_targets, max(1, round(scale * weights[i])))
        for target in rng.sample(range(num_targets), degree):
            edges.append((i, target))
    return Relation(name, attributes, edges)


def zipf_triangle_instance(n: int, skew: float = 1.5, seed: int = 0):
    """A triangle query over three Zipf-skewed edge relations of ~n tuples.

    Each relation draws its own out-degree sequence (independent seeds
    derived from ``seed``) over a shared vertex domain of ``max(8, n // 4)``
    ids, so low ranks are heavy in *several* relations at once — the
    workload where the heavy/light hybrid beats both pure strategies.
    Returns ``(query, database)`` like the worst-case instance builders.
    """
    vertices = max(8, n // 4)
    r = zipf_outdegree_graph(vertices, vertices, n, skew=skew,
                             seed=3 * seed + 1, name="R",
                             attributes=("A", "B"))
    s = zipf_outdegree_graph(vertices, vertices, n, skew=skew,
                             seed=3 * seed + 2, name="S",
                             attributes=("B", "C"))
    t = zipf_outdegree_graph(vertices, vertices, n, skew=skew,
                             seed=3 * seed + 3, name="T",
                             attributes=("A", "C"))
    return triangle_query(), Database([r, s, t])


def complete_bipartite_graph(left_size: int, right_size: int, name: str = "E",
                             attributes: Sequence[str] = ("A", "B")) -> Relation:
    """The complete bipartite graph K_{left,right} with disjoint vertex ids.

    Left vertices are 0..left_size-1 and right vertices are offset by
    ``left_size`` so the two sides never collide.
    """
    edges = [
        (i, left_size + j)
        for i in range(left_size)
        for j in range(right_size)
    ]
    return Relation(name, attributes, edges)


def social_graph(num_vertices: int, average_degree: float = 8.0, skew: float = 1.2,
                 seed: int = 0, name: str = "Follows",
                 attributes: Sequence[str] = ("A", "B")) -> Relation:
    """A small synthetic "social network": Zipf-skewed follower edges.

    This is the substitute for the real social-network traces the triangle
    literature uses ([15, 63, 64] in the paper): same shape (power-law-ish
    degree distribution), laptop scale.
    """
    num_edges = int(num_vertices * average_degree)
    return zipf_graph(num_vertices, num_edges, skew=skew, seed=seed, name=name,
                      attributes=attributes)


def undirected_closure(relation: Relation) -> Relation:
    """Add the reverse of every edge (making the edge set symmetric)."""
    edges = set(relation.tuples)
    edges |= {(b, a) for a, b in relation.tuples}
    return Relation(relation.name, relation.attributes, edges)
