"""Fractional and integral edge covers of query hypergraphs.

The fractional edge cover polytope FECP(H) (Section 3.1) is

    { delta >= 0 : sum_{F : v in F} delta_F >= 1  for every vertex v },

and the fractional edge cover number rho*(H) is the minimum total weight of a
point in FECP(H).  The AGM bound (Corollary 4.2) is the weighted variant in
which edge F costs log |R_F| instead of 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping

from repro.covers.lp import LinearProgram
from repro.errors import LPError
from repro.query.hypergraph import Hypergraph


@dataclass(frozen=True)
class EdgeCover:
    """A (fractional) edge cover together with its objective value.

    Attributes
    ----------
    weights:
        Edge key -> weight delta_F (non-negative).
    total_weight:
        The unweighted total sum of delta_F.
    objective:
        The value of the objective that was optimized (equals
        ``total_weight`` for the unweighted cover, or the weighted sum for
        :func:`weighted_fractional_edge_cover`).
    """

    weights: dict[str, float]
    total_weight: float
    objective: float


def is_fractional_edge_cover(hypergraph: Hypergraph,
                             weights: Mapping[str, float],
                             tolerance: float = 1e-9) -> bool:
    """True if ``weights`` is a valid fractional edge cover of ``hypergraph``."""
    return hypergraph.is_cover(weights, tolerance=tolerance)


def _cover_lp(hypergraph: Hypergraph, costs: Mapping[str, float]) -> EdgeCover:
    lp = LinearProgram("fractional-edge-cover")
    for key in hypergraph.edge_keys:
        lp.add_variable(key, lower=0.0)
    lp.minimize({key: costs[key] for key in hypergraph.edge_keys})
    for vertex in hypergraph.vertices:
        covering = hypergraph.edges_containing(vertex)
        if not covering:
            raise LPError(
                f"vertex {vertex!r} is not covered by any edge; cover is infeasible"
            )
        lp.add_constraint(f"cover[{vertex}]", {key: 1.0 for key in covering}, ">=", 1.0)
    solution = lp.solve()
    weights = {key: max(0.0, solution.values[key]) for key in hypergraph.edge_keys}
    return EdgeCover(
        weights=weights,
        total_weight=sum(weights.values()),
        objective=solution.objective,
    )


def fractional_edge_cover(hypergraph: Hypergraph) -> EdgeCover:
    """Minimize the total weight sum_F delta_F over FECP(H).

    Returns the optimal cover; its ``objective`` equals rho*(H).
    """
    return _cover_lp(hypergraph, {key: 1.0 for key in hypergraph.edge_keys})


def fractional_edge_cover_number(hypergraph: Hypergraph) -> float:
    """The fractional edge cover number rho*(H)."""
    return fractional_edge_cover(hypergraph).objective


def weighted_fractional_edge_cover(hypergraph: Hypergraph,
                                   costs: Mapping[str, float]) -> EdgeCover:
    """Minimize ``sum_F costs[F] * delta_F`` over FECP(H).

    With ``costs[F] = log |R_F|`` this is exactly the AGM-bound LP (eq. 5 for
    the triangle, Corollary 4.2 in general).  Negative costs are rejected:
    they would make the LP unbounded below only if a vertex could be
    over-covered for free, which never corresponds to a meaningful instance.
    """
    for key in hypergraph.edge_keys:
        if key not in costs:
            raise LPError(f"no cost provided for edge {key!r}")
        if costs[key] < 0:
            raise LPError(f"negative cost for edge {key!r}: {costs[key]}")
    return _cover_lp(hypergraph, costs)


def integral_edge_cover(hypergraph: Hypergraph) -> EdgeCover:
    """The minimum *integral* edge cover (each delta_F in {0, 1}).

    Solved by brute force over subsets of edges, which is fine for query-size
    hypergraphs (the paper's integral edge cover number appears only as the
    endpoint of the chain M_n ⊆ ... ⊆ SA_n).
    """
    keys = hypergraph.edge_keys
    vertices = set(hypergraph.vertices)
    best: tuple[int, tuple[str, ...]] | None = None
    for size in range(1, len(keys) + 1):
        for subset in combinations(keys, size):
            covered: set[str] = set()
            for key in subset:
                covered |= hypergraph.edge(key)
            if covered == vertices:
                best = (size, subset)
                break
        if best is not None:
            break
    if best is None:
        raise LPError("hypergraph has an uncoverable vertex")
    size, subset = best
    weights = {key: (1.0 if key in subset else 0.0) for key in keys}
    return EdgeCover(weights=weights, total_weight=float(size), objective=float(size))


def fractional_vertex_cover_number(hypergraph: Hypergraph) -> float:
    """The fractional *vertex* cover number tau*(H) (LP dual of fractional
    matching).  Included for completeness of the cover toolbox; not used by
    the bounds themselves."""
    lp = LinearProgram("fractional-vertex-cover")
    for vertex in hypergraph.vertices:
        lp.add_variable(vertex, lower=0.0)
    lp.minimize({vertex: 1.0 for vertex in hypergraph.vertices})
    for key, edge in hypergraph.edges.items():
        lp.add_constraint(f"edge[{key}]", {v: 1.0 for v in edge}, ">=", 1.0)
    return lp.solve().objective
