"""A thin, named-variable linear-programming layer on top of scipy.

All the bounds in the paper are optimal values of linear programs (the
fractional edge cover LP, the polymatroid LP (68), the modular LP (54) and
its dual (57), the Shannon-flow dual (72)).  Building those LPs directly as
coefficient matrices is error prone, so this module provides a small model
class with named variables and named constraints; it converts to the scipy
``linprog`` standard form internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import LPError


@dataclass
class LPSolution:
    """Solution of a linear program.

    Attributes
    ----------
    status:
        scipy status string ("optimal" when solved).
    objective:
        Optimal objective value (in the *original* sense: max problems report
        the max).
    values:
        Variable name -> optimal value.
    dual_values:
        Constraint name -> dual value (marginals), when available.
    """

    status: str
    objective: float
    values: dict[str, float]
    dual_values: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, variable: str) -> float:
        return self.values[variable]


class LinearProgram:
    """A linear program with named variables and constraints.

    The canonical sense is *minimization*; call :meth:`maximize` /
    :meth:`minimize` to set the objective.  Variables are non-negative by
    default with no upper bound; override with :meth:`set_bounds`.
    """

    def __init__(self, name: str = "lp"):
        self.name = name
        self._variables: list[str] = []
        self._objective: dict[str, float] = {}
        self._sense: str = "min"
        # Each constraint: (name, {var: coeff}, op, rhs) with op in {<=, ==, >=}.
        self._constraints: list[tuple[str, dict[str, float], str, float]] = []
        self._bounds: dict[str, tuple[float | None, float | None]] = {}

    # ------------------------------------------------------------------
    # Model building
    # ------------------------------------------------------------------
    def add_variable(self, name: str, lower: float | None = 0.0,
                     upper: float | None = None) -> str:
        """Declare a variable; returns its name for convenience."""
        if name in self._bounds:
            raise LPError(f"variable {name!r} declared twice")
        self._variables.append(name)
        self._bounds[name] = (lower, upper)
        return name

    def has_variable(self, name: str) -> bool:
        """True if the variable has been declared."""
        return name in self._bounds

    def set_bounds(self, name: str, lower: float | None, upper: float | None) -> None:
        """Override the bounds of an existing variable."""
        if name not in self._bounds:
            raise LPError(f"unknown variable {name!r}")
        self._bounds[name] = (lower, upper)

    def minimize(self, coefficients: Mapping[str, float]) -> None:
        """Set a minimization objective (variable -> coefficient)."""
        self._check_known(coefficients)
        self._objective = dict(coefficients)
        self._sense = "min"

    def maximize(self, coefficients: Mapping[str, float]) -> None:
        """Set a maximization objective (variable -> coefficient)."""
        self._check_known(coefficients)
        self._objective = dict(coefficients)
        self._sense = "max"

    def add_constraint(self, name: str, coefficients: Mapping[str, float],
                       op: str, rhs: float) -> None:
        """Add a constraint ``sum coeff*var  op  rhs`` with op in <=, >=, ==."""
        if op not in ("<=", ">=", "=="):
            raise LPError(f"unsupported constraint operator {op!r}")
        self._check_known(coefficients)
        self._constraints.append((name, dict(coefficients), op, rhs))

    def _check_known(self, coefficients: Mapping[str, float]) -> None:
        unknown = [v for v in coefficients if v not in self._bounds]
        if unknown:
            raise LPError(f"unknown variables in expression: {unknown}")

    @property
    def num_variables(self) -> int:
        """Number of declared variables."""
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        """Number of constraints added."""
        return len(self._constraints)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> LPSolution:
        """Solve with scipy's HiGHS backend and return an :class:`LPSolution`.

        Raises
        ------
        LPError
            If the problem is infeasible, unbounded, or the solver fails.
        """
        # Imported here, not at module top: building an LP *model* is pure
        # Python, and the core planner layers must stay importable on
        # installs without the numeric stack (tools/check_no_numpy_in_core).
        import numpy as np  # lint: disable=import-layering -- solve() is the planner's single numeric entry point; lazy so LP *models* build on installs without the numeric stack
        from scipy.optimize import linprog  # lint: disable=import-layering -- same seam as numpy above: only solving, never modeling, touches scipy

        if not self._variables:
            raise LPError("no variables declared")
        index = {v: i for i, v in enumerate(self._variables)}
        n = len(self._variables)

        sign = 1.0 if self._sense == "min" else -1.0
        c = np.zeros(n)
        for var, coeff in self._objective.items():
            c[index[var]] = sign * coeff

        a_ub_rows: list[np.ndarray] = []
        b_ub: list[float] = []
        ub_names: list[str] = []
        a_eq_rows: list[np.ndarray] = []
        b_eq: list[float] = []
        eq_names: list[str] = []
        for name, coeffs, op, rhs in self._constraints:
            row = np.zeros(n)
            for var, coeff in coeffs.items():
                row[index[var]] += coeff
            if op == "<=":
                a_ub_rows.append(row)
                b_ub.append(rhs)
                ub_names.append(name)
            elif op == ">=":
                a_ub_rows.append(-row)
                b_ub.append(-rhs)
                ub_names.append(name)
            else:
                a_eq_rows.append(row)
                b_eq.append(rhs)
                eq_names.append(name)

        bounds = [self._bounds[v] for v in self._variables]
        result = linprog(
            c,
            A_ub=np.array(a_ub_rows) if a_ub_rows else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq_rows) if a_eq_rows else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise LPError(
                f"LP {self.name!r} failed: {result.message} (status={result.status})"
            )
        values = {v: float(result.x[index[v]]) for v in self._variables}
        objective = float(result.fun) * sign

        dual_values: dict[str, float] = {}
        marginals_ub = getattr(getattr(result, "ineqlin", None), "marginals", None)
        marginals_eq = getattr(getattr(result, "eqlin", None), "marginals", None)
        if marginals_ub is not None:
            for name, marginal in zip(ub_names, marginals_ub):
                dual_values[name] = float(sign * marginal)
        if marginals_eq is not None:
            for name, marginal in zip(eq_names, marginals_eq):
                dual_values[name] = float(sign * marginal)

        return LPSolution(
            status="optimal",
            objective=objective,
            values=values,
            dual_values=dual_values,
        )


def solve_lp(objective: Mapping[str, float], constraints: Sequence[
        tuple[Mapping[str, float], str, float]], sense: str = "min",
        bounds: Mapping[str, tuple[float | None, float | None]] | None = None
        ) -> LPSolution:
    """One-shot helper: build and solve an LP from plain dictionaries.

    Parameters
    ----------
    objective:
        Variable -> coefficient of the objective.
    constraints:
        Sequence of ``(coefficients, op, rhs)`` triples.
    sense:
        ``"min"`` or ``"max"``.
    bounds:
        Optional variable bounds; defaults to non-negative.
    """
    lp = LinearProgram()
    variables: set[str] = set(objective)
    for coeffs, _, _ in constraints:
        variables.update(coeffs)
    for var in sorted(variables):
        lower, upper = (bounds or {}).get(var, (0.0, None))
        lp.add_variable(var, lower, upper)
    if sense == "min":
        lp.minimize(objective)
    elif sense == "max":
        lp.maximize(objective)
    else:
        raise LPError(f"unknown sense {sense!r}")
    for i, (coeffs, op, rhs) in enumerate(constraints):
        lp.add_constraint(f"c{i}", coeffs, op, rhs)
    return lp.solve()
