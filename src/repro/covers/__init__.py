"""Linear programming helpers and (fractional) edge covers."""

from repro.covers.lp import LinearProgram, LPSolution, solve_lp
from repro.covers.edge_cover import (
    fractional_edge_cover,
    fractional_edge_cover_number,
    weighted_fractional_edge_cover,
    integral_edge_cover,
    is_fractional_edge_cover,
)

__all__ = [
    "LinearProgram",
    "LPSolution",
    "solve_lp",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "weighted_fractional_edge_cover",
    "integral_edge_cover",
    "is_fractional_edge_cover",
]
