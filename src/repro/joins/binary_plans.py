"""Enumeration of binary (pairwise) join plans — the baseline paradigm.

The paper's headline practical claim is that the "one pair at a time"
paradigm is asymptotically dominated by WCOJ algorithms on cyclic queries:
*every* pairwise plan must materialize a large intermediate on the hard
instances.  To make that comparison airtight in the benchmarks we don't pick
one plan; we enumerate (all or a capped number of) left-deep plans, execute
each, and report the *best* of them — so the baseline gets every benefit of
the doubt and the gap measured against WCOJ engines is a lower bound on the
true gap.
"""

from __future__ import annotations

from itertools import permutations

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.joins.plan import JoinPlan, PlanExecution, execute_plan, left_deep_plan
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database


def greedy_atom_order(query: ConjunctiveQuery, database: Database
                      ) -> tuple[int, ...]:
    """The Selinger-style greedy atom order, as indices into ``query.atoms``.

    Start from the smallest relation and repeatedly add the connected atom
    with the smallest relation (falling back to a cartesian product only when
    no connected atom remains), which is what a simple cost-based optimizer
    without WCOJ support would do.  This single helper feeds the plan
    builder, the engine's binary executor, and the dispatcher's cost
    simulation, so all three always price and run the *same* plan.
    """
    query.validate_against(database)
    sizes = {i: len(database.get(atom.relation))
             for i, atom in enumerate(query.atoms)}
    atom_vars = {i: set(atom.variables)
                 for i, atom in enumerate(query.atoms)}
    remaining = set(sizes.keys())
    first = min(remaining, key=lambda i: (sizes[i], i))
    order = [first]
    covered = set(atom_vars[first])
    remaining.discard(first)
    while remaining:
        connected = [i for i in remaining if atom_vars[i] & covered]
        pool = connected if connected else sorted(remaining)
        chosen = min(pool, key=lambda i: (sizes[i], i))
        order.append(chosen)
        covered |= atom_vars[chosen]
        remaining.discard(chosen)
    return tuple(order)


def greedy_left_deep_plan(query: ConjunctiveQuery, database: Database) -> JoinPlan:
    """A Selinger-style greedy left-deep plan (see :func:`greedy_atom_order`)."""
    order = greedy_atom_order(query, database)
    return left_deep_plan([query.edge_key(i) for i in order])


def all_left_deep_plans(query: ConjunctiveQuery, max_plans: int = 720,
                        connected_only: bool = True) -> list[JoinPlan]:
    """All left-deep plans over the query atoms (up to ``max_plans``).

    ``connected_only`` skips orders that would require a cartesian product
    before the last atom, which no reasonable optimizer would pick.
    """
    edge_keys = [query.edge_key(i) for i in range(len(query.atoms))]
    atom_vars = {
        query.edge_key(i): set(atom.variables) for i, atom in enumerate(query.atoms)
    }
    plans: list[JoinPlan] = []
    for order in permutations(edge_keys):
        if connected_only and len(order) > 1:
            covered = set(atom_vars[order[0]])
            ok = True
            for key in order[1:]:
                if not (atom_vars[key] & covered):
                    ok = False
                    break
                covered |= atom_vars[key]
            if not ok:
                continue
        plans.append(left_deep_plan(order))
        if len(plans) >= max_plans:
            break
    if not plans:
        # Fully disconnected queries: fall back to the natural order.
        plans.append(left_deep_plan(edge_keys))
    return plans


def best_left_deep_execution(query: ConjunctiveQuery, database: Database,
                             max_plans: int = 720,
                             metric: str = "max_intermediate") -> PlanExecution:
    """Execute every (connected) left-deep plan and return the best execution.

    ``metric`` selects what "best" means: ``"max_intermediate"`` (default,
    the quantity the lower bounds speak about), ``"total_intermediate"`` or
    ``"total_work"`` (the counter total).
    """
    plans = all_left_deep_plans(query, max_plans=max_plans)
    best: PlanExecution | None = None
    best_value: float | None = None
    for plan in plans:
        execution = execute_plan(plan, query, database, counter=OperationCounter())
        if metric == "max_intermediate":
            value: float = execution.max_intermediate
        elif metric == "total_intermediate":
            value = execution.total_intermediate
        elif metric == "total_work":
            value = execution.counter.total()
        else:
            raise QueryError(f"unknown plan metric {metric!r}")
        if best_value is None or value < best_value:
            best = execution
            best_value = value
    assert best is not None  # all_left_deep_plans never returns an empty list
    return best
