"""Operation counters shared by every join engine.

Pure-Python wall-clock time is a noisy and unrepresentative proxy for the
asymptotic statements the paper makes, so every engine in this package also
reports *operation counts*: tuples scanned and emitted, hash inserts and
probes, sorted-intersection steps, trie seeks, and search-tree nodes.  The
benchmark harness uses these counts as its primary series (and
pytest-benchmark still records wall clock for the same runs).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class OperationCounter:
    """Mutable counters of the work a join algorithm performs.

    Attributes
    ----------
    tuples_scanned:
        Input tuples read (by scans, build phases, partitioning passes).
    tuples_emitted:
        Tuples produced, including intermediate results of binary plans.
    intermediate_tuples:
        Tuples materialized in intermediate relations (binary plans and
        PANDA); WCOJ engines that pipeline their output keep this at 0.
    hash_inserts / hash_probes:
        Hash-table operations.
    intersection_steps:
        Elements examined while intersecting candidate sets (the O(min size)
        work of Generic-Join / Algorithm 1 / Algorithm 3).
    seeks:
        Sorted-seek operations (Leapfrog Triejoin's galloping).
    search_nodes:
        Nodes expanded in a backtracking search tree.
    detail:
        When True, the algorithms additionally *attribute* work — per
        join variable, per Yannakakis phase — into :attr:`breakdown`.
        Off by default: attribution roughly doubles the bookkeeping on
        the hot recursion.
    breakdown:
        Labelled attributions (``search_nodes[A]``, ``semijoin.bottom_up
        .tuples_scanned``, ...).  Breakdown entries re-slice work already
        charged to the main counters, so they are excluded from
        :meth:`total` and :meth:`as_dict` — unlike :attr:`extra`, whose
        entries are *new* work.
    """

    tuples_scanned: int = 0
    tuples_emitted: int = 0
    intermediate_tuples: int = 0
    hash_inserts: int = 0
    hash_probes: int = 0
    intersection_steps: int = 0
    seeks: int = 0
    search_nodes: int = 0
    extra: dict[str, int] = field(default_factory=dict)
    detail: bool = False
    breakdown: dict[str, int] = field(default_factory=dict)

    _KNOWN = (
        "tuples_scanned",
        "tuples_emitted",
        "intermediate_tuples",
        "hash_inserts",
        "hash_probes",
        "intersection_steps",
        "seeks",
        "search_nodes",
    )

    def charge(self, **amounts: int) -> None:
        """Add the given amounts to the named counters.

        Unknown counter names accumulate in :attr:`extra`, so callers can
        introduce algorithm-specific counters without touching this class.
        """
        for name, amount in amounts.items():
            if name in self._KNOWN:
                setattr(self, name, getattr(self, name) + amount)
            else:
                self.extra[name] = self.extra.get(name, 0) + amount

    def attribute(self, label: str, amount: int = 1) -> None:
        """Re-slice already-charged work under a breakdown label.

        Unlike :meth:`charge`, this never affects :meth:`total` — the
        work was charged to a main counter at the same site.  Callers
        guard with :attr:`detail` so the disabled cost is one branch.
        """
        self.breakdown[label] = self.breakdown.get(label, 0) + amount

    def total(self) -> int:
        """Total work: the sum of every counter (including extras)."""
        return sum(getattr(self, name) for name in self._KNOWN) + sum(self.extra.values())

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dictionary."""
        result = {name: getattr(self, name) for name in self._KNOWN}
        result.update(self.extra)
        result["total"] = self.total()
        return result

    def reset(self) -> None:
        """Zero every counter (the ``detail`` flag is configuration and
        survives)."""
        for name in self._KNOWN:
            setattr(self, name, 0)
        self.extra.clear()
        self.breakdown.clear()

    def merge(self, other: "OperationCounter") -> None:
        """Add another counter's tallies (and breakdown) into this one."""
        for name in self._KNOWN:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value
        for key, value in other.breakdown.items():
            self.breakdown[key] = self.breakdown.get(key, 0) + value

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "OperationCounter(" + ", ".join(parts) + ")"


@contextmanager
def phase(counter: OperationCounter | None, label: str) -> Iterator[None]:
    """Attribute every counter delta inside the block to ``label``.

    Used for coarse per-phase breakdowns (Yannakakis' semijoin passes,
    message passes, frontier expansion): snapshot the known counters on
    entry, and on exit write each field's delta into the breakdown as
    ``{label}.{field}``.  A no-op unless ``counter.detail`` is set, so
    undetailed runs pay one branch per phase, not per operation.
    """
    if counter is None or not counter.detail:
        yield
        return
    before = [getattr(counter, name) for name in OperationCounter._KNOWN]
    try:
        yield
    finally:
        for name, start in zip(OperationCounter._KNOWN, before):
            delta = getattr(counter, name) - start
            if delta:
                counter.attribute(f"{label}.{name}", delta)
