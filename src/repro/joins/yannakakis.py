"""Yannakakis' algorithm for alpha-acyclic queries.

The classical counterpoint to WCOJ algorithms: when the query hypergraph is
alpha-acyclic, a full semijoin reduction along a join tree followed by joins
in reverse order evaluates the query in O(|D| + |output|) — no pairwise plan
pathology, no need for multiway intersection.  The paper's separation results
are precisely about the *cyclic* queries where this classical route is
unavailable; having Yannakakis in the library lets the optimizer (and the
experiments) treat the acyclic case with the right tool and makes the
"cyclic is where WCOJ matters" story executable.

Two extensions serve the engine's richer surface:

* cross-atom comparison predicates can be handed to :func:`yannakakis`
  (``selections``) and are applied *during* the bottom-up joins, at the
  first join where both sides are bound, instead of filtering the finished
  output;
* :func:`yannakakis_aggregate_stream` evaluates semiring aggregates
  **inside** the semijoin/join passes (AJAR-style early aggregation): each
  input tuple is annotated with semiring values, join-tree messages are
  aggregated down to the parent separator before joining (``⊕`` over
  eliminated variables, ``⊗`` across joined tuples), and group-by columns
  survive to the root — so an acyclic group-by never materializes the join,
  keeping the output-linear guarantee for the *aggregate* output.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.joins.plan import apply_covered_selections, raise_if_pending
from repro.query.atoms import ConjunctiveQuery
from repro.query.decomposition import gyo_reduction
from repro.query.semiring import Aggregate, Semiring
from repro.query.terms import Comparison
from repro.relational.database import Database
from repro.relational.operators import natural_join, semijoin
from repro.relational.relation import Relation


def _join_tree(query: ConjunctiveQuery):
    """GYO join tree: (parent map, children map, bottom-up order, root).

    Raises :class:`QueryError` when the query is not alpha-acyclic.
    """
    reduction = gyo_reduction(query.hypergraph())
    if not reduction.acyclic:
        raise QueryError(
            f"query {query.name!r} is not alpha-acyclic; use a WCOJ algorithm instead"
        )
    parent = dict(reduction.parent)
    order = list(reduction.elimination_order)
    children: dict[str, list[str]] = {key: [] for key in parent}
    root = None
    for child, par in parent.items():
        if par is None:
            root = child
        else:
            children[par].append(child)
    if root is None:
        # Single-edge query: the only edge is its own root.
        root = order[-1]
    return parent, children, order, root


def _semijoin_passes(relations: dict[str, Relation], parent: dict[str, str | None],
                     children: dict[str, list[str]], order: list[str],
                     counter: OperationCounter | None) -> None:
    """The two semijoin passes (bottom-up then top-down), in place."""
    for node in order:
        par = parent.get(node)
        if par is None:
            continue
        relations[par] = semijoin(relations[par], relations[node], counter=counter)
    for node in reversed(order):
        for child in children.get(node, ()):
            relations[child] = semijoin(relations[child], relations[node],
                                        counter=counter)


def yannakakis(query: ConjunctiveQuery, database: Database,
               counter: OperationCounter | None = None,
               selections: Sequence[Comparison] = ()) -> Relation:
    """Evaluate an alpha-acyclic full conjunctive query with Yannakakis'
    algorithm.

    Phases:

    1. build a join tree from the GYO reduction;
    2. bottom-up semijoin pass (children reduce their parents);
    3. top-down semijoin pass (parents reduce their children);
    4. join bottom-up; after the two passes every intermediate join result
       is no larger than the final output times the subtree's contribution,
       giving the classical O(|D| + |output|) guarantee for full queries.

    ``selections`` (comparison predicates over the query variables, e.g.
    the cross-atom residue the engine cannot push into a single scan) are
    applied mid-plan: at the first relation — base or intermediate join
    result — whose schema covers all their variables, so predicates
    spanning atoms prune during phase 4 instead of post-filtering the
    output.

    Raises
    ------
    QueryError
        If the query hypergraph is not alpha-acyclic.
    """
    parent, children, order, root = _join_tree(query)
    relations = dict(query.bind(database))
    pending = list(selections)
    if pending:
        relations = {key: apply_covered_selections(rel, pending, counter)
                     for key, rel in relations.items()}

    # Phases 2–3: the semijoin reduction.
    _semijoin_passes(relations, parent, children, order, counter)

    # Phase 4: join bottom-up, firing cross-atom predicates as soon as a
    # join binds all their variables.
    for node in order:
        par = parent.get(node)
        if par is None:
            continue
        joined = natural_join(relations[par], relations[node], counter=counter)
        if pending:
            joined = apply_covered_selections(joined, pending, counter)
        if counter is not None:
            counter.charge(intermediate_tuples=len(joined))
        relations[par] = joined

    result = relations[root]
    raise_if_pending(pending, query)
    variables = query.variables
    missing = [v for v in variables if v not in result.schema]
    if missing:
        raise QueryError(
            f"internal error: join tree result is missing variables {missing}"
        )
    ordered = result.reorder(variables, name=query.name)
    if tuple(query.head) != tuple(variables):
        ordered = ordered.project(query.head, name=query.name)
    return ordered


def semijoin_reduce(query: ConjunctiveQuery, database: Database,
                    counter: OperationCounter | None = None) -> dict[str, Relation]:
    """The full (bottom-up + top-down) semijoin reduction only.

    Returns the reduced relation per edge key.  After this pass every
    remaining tuple participates in at least one output tuple (for acyclic
    queries), which is the precondition for output-linear join evaluation.
    """
    reduction = gyo_reduction(query.hypergraph())
    if not reduction.acyclic:
        raise QueryError("semijoin reduction to a consistent state requires acyclicity")
    parent, children, order, _root = _join_tree(query)
    relations = dict(query.bind(database))
    _semijoin_passes(relations, parent, children, order, counter)
    return relations


# ----------------------------------------------------------------------
# In-pass semiring aggregation (AJAR-style early aggregation).
# ----------------------------------------------------------------------

#: An annotated relation: variable schema plus one annotation list (one
#: semiring value per aggregate) for each tuple.
_AnnTable = tuple[tuple[str, ...], dict[tuple, list]]


def _ann_project(table: _AnnTable, keep: Sequence[str],
                 semirings: Sequence[Semiring],
                 counter: OperationCounter | None) -> _AnnTable:
    """Aggregate an annotated relation onto ``keep`` columns (``⊕``)."""
    schema, rows = table
    keep = tuple(keep)
    if keep == schema:
        return table
    positions = [schema.index(v) for v in keep]
    out: dict[tuple, list] = {}
    for row, ann in rows.items():
        key = tuple(row[p] for p in positions)
        existing = out.get(key)
        if existing is None:
            out[key] = list(ann)
        else:
            for i, sr in enumerate(semirings):
                existing[i] = sr.plus(existing[i], ann[i])
    if counter is not None:
        counter.charge(tuples_scanned=len(rows), tuples_emitted=len(out))
    return keep, out


def _ann_join(left: _AnnTable, right: _AnnTable,
              semirings: Sequence[Semiring],
              pending: list[Comparison],
              counter: OperationCounter | None) -> _AnnTable:
    """Annotated natural join (``⊗`` on annotations), firing any pending
    comparison predicate the joined schema newly covers."""
    left_schema, left_rows = left
    right_schema, right_rows = right
    common = [v for v in left_schema if v in right_schema]
    extra = [v for v in right_schema if v not in left_schema]
    out_schema = left_schema + tuple(extra)
    covered = [sel for sel in pending
               if sel.variables <= set(out_schema)]
    for sel in covered:
        pending.remove(sel)

    left_common = [left_schema.index(v) for v in common]
    right_common = [right_schema.index(v) for v in common]
    right_extra = [right_schema.index(v) for v in extra]

    table: dict[tuple, list[tuple[tuple, list]]] = {}
    for row, ann in right_rows.items():
        key = tuple(row[p] for p in right_common)
        table.setdefault(key, []).append((row, ann))
    if counter is not None:
        counter.charge(tuples_scanned=len(right_rows),
                       hash_inserts=len(right_rows))

    out: dict[tuple, list] = {}
    names = out_schema
    for row, ann in left_rows.items():
        if counter is not None:
            counter.charge(tuples_scanned=1, hash_probes=1)
        key = tuple(row[p] for p in left_common)
        for other, other_ann in table.get(key, ()):
            joined = row + tuple(other[p] for p in right_extra)
            if covered:
                binding = dict(zip(names, joined))
                if not all(sel.evaluate(binding) for sel in covered):
                    continue
            out[joined] = [sr.times(a, b) for sr, a, b
                           in zip(semirings, ann, other_ann)]
            if counter is not None:
                counter.charge(tuples_emitted=1)
    return out_schema, out


def yannakakis_aggregate_stream(query: ConjunctiveQuery, database: Database,
                                group: Sequence[str],
                                aggregates: Sequence[Aggregate],
                                selections: Sequence[Comparison] = (),
                                counter: OperationCounter | None = None,
                                ) -> Iterator[tuple]:
    """Aggregate an alpha-acyclic query *inside* the join-tree passes.

    Yields finalized rows ``group values + aggregate values`` without ever
    materializing the join: after the semijoin reduction, every tuple is
    annotated with one semiring value per aggregate (the designated atom of
    an aggregate lifts its input variable; every other atom contributes the
    semiring's ``one``), messages up the join tree are aggregated onto the
    parent separator plus the still-needed columns (group-by variables and
    variables of comparison predicates that have not fired yet), and joins
    combine annotations with ``⊗``.  Distributivity is what makes the early
    ``⊕`` sound — which is why this mode requires every aggregate's
    semiring to define a product (``times``/``one``); plus-only monoids
    fall back to the engine's stream-fold mode.

    ``selections`` should be the cross-atom residue only (single-atom
    predicates belong in the scans); each fires at the first annotated join
    whose schema covers it.
    """
    semirings = [agg.semiring() for agg in aggregates]
    for agg, sr in zip(aggregates, semirings):
        if not sr.has_product:
            raise QueryError(
                f"aggregate {agg} uses the plus-only semiring {sr.name!r}; "
                "in-pass aggregation needs a product semiring (times/one)"
            )
    group = tuple(group)
    parent, children, order, root = _join_tree(query)
    relations = dict(query.bind(database))
    _semijoin_passes(relations, parent, children, order, counter)

    # Designated atom per aggregate: the first (body order) atom holding
    # the aggregate's input variable lifts it; everything else lifts one.
    designated: dict[int, str] = {}
    for i, agg in enumerate(aggregates):
        if agg.var is None:
            continue
        for j, atom in enumerate(query.atoms):
            if agg.var in atom.variable_set:
                designated[i] = query.edge_key(j)
                break
        else:
            raise QueryError(
                f"aggregate {agg} reads {agg.var!r}, which no atom binds"
            )

    tables: dict[str, _AnnTable] = {}
    for edge_key, relation in relations.items():
        schema = tuple(relation.attributes)
        var_pos = {v: p for p, v in enumerate(schema)}
        rows: dict[tuple, list] = {}
        for t in relation:
            rows[t] = [
                sr.lift(t[var_pos[aggregates[i].var]])
                if designated.get(i) == edge_key else sr.one
                for i, sr in enumerate(semirings)
            ]
        if counter is not None:
            counter.charge(tuples_scanned=len(relation))
        tables[edge_key] = (schema, rows)

    pending = list(selections)
    group_set = set(group)

    def keep_columns(schema: Sequence[str], separator: set[str]) -> tuple[str, ...]:
        still_needed = set(group_set)
        for sel in pending:
            still_needed |= sel.variables
        return tuple(v for v in schema
                     if v in separator or v in still_needed)

    # Bottom-up: aggregate each node onto its message columns, join into
    # the parent (``⊗``), firing cross-atom predicates as they bind.
    for node in order:
        par = parent.get(node)
        if par is None:
            continue
        schema, _rows = tables[node]
        par_schema, _par_rows = tables[par]
        separator = set(schema) & set(par_schema)
        message = _ann_project(tables[node], keep_columns(schema, separator),
                               semirings, counter)
        del tables[node]
        tables[par] = _ann_join(tables[par], message, semirings, pending,
                                counter)

    raise_if_pending(pending, query)

    _schema, result = _ann_project(tables[root], group, semirings, counter)
    if not result and not group:
        # SQL-style group-free aggregate of an empty join.
        if counter is not None:
            counter.charge(tuples_emitted=1)
        yield tuple(sr.finish(sr.zero) for sr in semirings)
        return
    for key, ann in result.items():
        if counter is not None:
            counter.charge(tuples_emitted=1)
        yield key + tuple(sr.finish(a) for sr, a in zip(semirings, ann))
