"""Yannakakis' algorithm for alpha-acyclic queries.

The classical counterpoint to WCOJ algorithms: when the query hypergraph is
alpha-acyclic, a full semijoin reduction along a join tree followed by joins
in reverse order evaluates the query in O(|D| + |output|) — no pairwise plan
pathology, no need for multiway intersection.  The paper's separation results
are precisely about the *cyclic* queries where this classical route is
unavailable; having Yannakakis in the library lets the optimizer (and the
experiments) treat the acyclic case with the right tool and makes the
"cyclic is where WCOJ matters" story executable.

Two extensions serve the engine's richer surface:

* cross-atom comparison predicates can be handed to :func:`yannakakis`
  (``selections``) and are applied *during* the bottom-up joins, at the
  first join where both sides are bound, instead of filtering the finished
  output;
* :func:`yannakakis_aggregate_stream` evaluates semiring aggregates
  **inside** the semijoin/join passes (AJAR-style early aggregation): each
  input tuple is annotated with semiring values, join-tree messages are
  aggregated down to the parent separator before joining (``⊕`` over
  eliminated variables, ``⊗`` across joined tuples), and group-by columns
  survive to the root — so an acyclic group-by never materializes the join,
  keeping the output-linear guarantee for the *aggregate* output;
* :func:`yannakakis_ranked_stream` is the any-k instance of the same
  annotated-message machinery: tuples are annotated in the **ordering
  semiring** (:func:`repro.query.semiring.ranking_semiring`) with the best
  sort-key contribution of their join-tree subtree, and a Lawler/REA-style
  priority frontier expands root-down tuple assignments in exact bound
  order — ``ORDER BY ... LIMIT k`` emits k rows after the reduction plus
  the bottom-up DP, never materializing the join.

The annotated-message primitives are exported for reuse:
:func:`join_tree_of` (the GYO join tree as a :class:`JoinTree`),
:func:`ann_project` (the ``⊕`` message projection) and :func:`ann_join`
(the ``⊗`` annotated join).  They are the *message re-derivation* entry
points incremental view maintenance (:mod:`repro.ivm`) builds on: a
standing query's per-node state is exactly the annotated tables and
messages these produce, and a tuple-level delta re-derives only the
messages on the changed leaf's root path with the same two operations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter, phase
from repro.joins.plan import apply_covered_selections, raise_if_pending
from repro.query.atoms import ConjunctiveQuery
from repro.query.decomposition import gyo_reduction
from repro.query.semiring import (
    RANKING,
    Aggregate,
    Semiring,
    rank_component,
)
from repro.query.terms import Comparison
from repro.relational.database import Database
from repro.relational.operators import natural_join, semijoin
from repro.relational.relation import Relation


def _join_tree(query: ConjunctiveQuery):
    """GYO join tree: (parent map, children map, bottom-up order, root).

    Raises :class:`QueryError` when the query is not alpha-acyclic.
    """
    reduction = gyo_reduction(query.hypergraph())
    if not reduction.acyclic:
        raise QueryError(
            f"query {query.name!r} is not alpha-acyclic; use a WCOJ algorithm instead"
        )
    parent = dict(reduction.parent)
    order = list(reduction.elimination_order)
    children: dict[str, list[str]] = {key: [] for key in parent}
    root = None
    for child, par in parent.items():
        if par is None:
            root = child
        else:
            children[par].append(child)
    if root is None:
        # Single-edge query: the only edge is its own root.
        root = order[-1]
    return parent, children, order, root


@dataclass(frozen=True)
class JoinTree:
    """A GYO join tree over a query's edge keys.

    ``order`` is the bottom-up (ear-elimination) sequence — every node
    appears before its parent — and ``children`` lists each node's
    children in that same absorption order, which is the deterministic
    schema-construction order the annotated passes (and the IVM view
    state) rely on.
    """

    parent: Mapping[str, str | None]
    children: Mapping[str, tuple[str, ...]]
    order: tuple[str, ...]
    root: str


def join_tree_of(query: ConjunctiveQuery) -> JoinTree:
    """The query's GYO join tree (raises :class:`QueryError` if cyclic)."""
    parent, children, order, root = _join_tree(query)
    return JoinTree(
        parent=dict(parent),
        children={node: tuple(kids) for node, kids in children.items()},
        order=tuple(order),
        root=root,
    )


def _semijoin_passes(relations: dict[str, Relation], parent: dict[str, str | None],
                     children: dict[str, list[str]], order: list[str],
                     counter: OperationCounter | None) -> None:
    """The two semijoin passes (bottom-up then top-down), in place.

    With a detail counter, each pass attributes its work under
    ``semijoin.bottom_up`` / ``semijoin.top_down``.
    """
    with phase(counter, "semijoin.bottom_up"):
        for node in order:
            par = parent.get(node)
            if par is None:
                continue
            relations[par] = semijoin(relations[par], relations[node],
                                      counter=counter)
    with phase(counter, "semijoin.top_down"):
        for node in reversed(order):
            for child in children.get(node, ()):
                relations[child] = semijoin(relations[child], relations[node],
                                            counter=counter)


def yannakakis(query: ConjunctiveQuery, database: Database,
               counter: OperationCounter | None = None,
               selections: Sequence[Comparison] = ()) -> Relation:
    """Evaluate an alpha-acyclic full conjunctive query with Yannakakis'
    algorithm.

    Phases:

    1. build a join tree from the GYO reduction;
    2. bottom-up semijoin pass (children reduce their parents);
    3. top-down semijoin pass (parents reduce their children);
    4. join bottom-up; after the two passes every intermediate join result
       is no larger than the final output times the subtree's contribution,
       giving the classical O(|D| + |output|) guarantee for full queries.

    ``selections`` (comparison predicates over the query variables, e.g.
    the cross-atom residue the engine cannot push into a single scan) are
    applied mid-plan: at the first relation — base or intermediate join
    result — whose schema covers all their variables, so predicates
    spanning atoms prune during phase 4 instead of post-filtering the
    output.

    Raises
    ------
    QueryError
        If the query hypergraph is not alpha-acyclic.
    """
    parent, children, order, root = _join_tree(query)
    relations = dict(query.bind(database))
    pending = list(selections)
    if pending:
        relations = {key: apply_covered_selections(rel, pending, counter)
                     for key, rel in relations.items()}

    # Phases 2–3: the semijoin reduction.
    _semijoin_passes(relations, parent, children, order, counter)

    # Phase 4: join bottom-up, firing cross-atom predicates as soon as a
    # join binds all their variables.
    with phase(counter, "join"):
        for node in order:
            par = parent.get(node)
            if par is None:
                continue
            joined = natural_join(relations[par], relations[node],
                                  counter=counter)
            if pending:
                joined = apply_covered_selections(joined, pending, counter)
            if counter is not None:
                counter.charge(intermediate_tuples=len(joined))
            relations[par] = joined

    result = relations[root]
    raise_if_pending(pending, query)
    variables = query.variables
    missing = [v for v in variables if v not in result.schema]
    if missing:
        raise QueryError(
            f"internal error: join tree result is missing variables {missing}"
        )
    ordered = result.reorder(variables, name=query.name)
    if tuple(query.head) != tuple(variables):
        ordered = ordered.project(query.head, name=query.name)
    return ordered


def semijoin_reduce(query: ConjunctiveQuery, database: Database,
                    counter: OperationCounter | None = None) -> dict[str, Relation]:
    """The full (bottom-up + top-down) semijoin reduction only.

    Returns the reduced relation per edge key.  After this pass every
    remaining tuple participates in at least one output tuple (for acyclic
    queries), which is the precondition for output-linear join evaluation.
    """
    reduction = gyo_reduction(query.hypergraph())
    if not reduction.acyclic:
        raise QueryError("semijoin reduction to a consistent state requires acyclicity")
    parent, children, order, _root = _join_tree(query)
    relations = dict(query.bind(database))
    _semijoin_passes(relations, parent, children, order, counter)
    return relations


# ----------------------------------------------------------------------
# In-pass semiring aggregation (AJAR-style early aggregation).
# ----------------------------------------------------------------------

#: An annotated relation: variable schema plus one annotation list (one
#: semiring value per aggregate) for each tuple.
AnnTable = tuple[tuple[str, ...], dict[tuple, list]]
_AnnTable = AnnTable


def _ann_project(table: _AnnTable, keep: Sequence[str],
                 semirings: Sequence[Semiring],
                 counter: OperationCounter | None) -> _AnnTable:
    """Aggregate an annotated relation onto ``keep`` columns (``⊕``)."""
    schema, rows = table
    keep = tuple(keep)
    if keep == schema:
        return table
    positions = [schema.index(v) for v in keep]
    out: dict[tuple, list] = {}
    for row, ann in rows.items():
        key = tuple(row[p] for p in positions)
        existing = out.get(key)
        if existing is None:
            out[key] = list(ann)
        else:
            for i, sr in enumerate(semirings):
                existing[i] = sr.plus(existing[i], ann[i])
    if counter is not None:
        counter.charge(tuples_scanned=len(rows), tuples_emitted=len(out))
    return keep, out


def _ann_join(left: _AnnTable, right: _AnnTable,
              semirings: Sequence[Semiring],
              pending: list[Comparison],
              counter: OperationCounter | None) -> _AnnTable:
    """Annotated natural join (``⊗`` on annotations), firing any pending
    comparison predicate the joined schema newly covers."""
    left_schema, left_rows = left
    right_schema, right_rows = right
    common = [v for v in left_schema if v in right_schema]
    extra = [v for v in right_schema if v not in left_schema]
    out_schema = left_schema + tuple(extra)
    covered = [sel for sel in pending
               if sel.variables <= set(out_schema)]
    for sel in covered:
        pending.remove(sel)

    left_common = [left_schema.index(v) for v in common]
    right_common = [right_schema.index(v) for v in common]
    right_extra = [right_schema.index(v) for v in extra]

    table: dict[tuple, list[tuple[tuple, list]]] = {}
    for row, ann in right_rows.items():
        key = tuple(row[p] for p in right_common)
        table.setdefault(key, []).append((row, ann))
    if counter is not None:
        counter.charge(tuples_scanned=len(right_rows),
                       hash_inserts=len(right_rows))

    out: dict[tuple, list] = {}
    names = out_schema
    for row, ann in left_rows.items():
        if counter is not None:
            counter.charge(tuples_scanned=1, hash_probes=1)
        key = tuple(row[p] for p in left_common)
        for other, other_ann in table.get(key, ()):
            joined = row + tuple(other[p] for p in right_extra)
            if covered:
                binding = dict(zip(names, joined))
                if not all(sel.evaluate(binding) for sel in covered):
                    continue
            out[joined] = [sr.times(a, b) for sr, a, b
                           in zip(semirings, ann, other_ann)]
            if counter is not None:
                counter.charge(tuples_emitted=1)
    return out_schema, out


def ann_project(table: AnnTable, keep: Sequence[str],
                semirings: Sequence[Semiring],
                counter: OperationCounter | None = None) -> AnnTable:
    """Public ``⊕`` message derivation: aggregate onto ``keep`` columns.

    This is the message-projection half of the annotated join-tree pass,
    exported so incremental maintenance can re-derive a single node's
    message from its (updated) annotated table without re-running the
    whole bottom-up sweep.
    """
    return _ann_project(table, keep, semirings, counter)


def ann_join(left: AnnTable, right: AnnTable,
             semirings: Sequence[Semiring],
             counter: OperationCounter | None = None) -> AnnTable:
    """Public ``⊗`` annotated join (no selection side-channel).

    The join half of the annotated pass: combine two annotated tables on
    their common columns, multiplying annotations coordinatewise.  Used
    by the IVM view state both when building per-node state and when
    joining a delta against unchanged sibling messages.
    """
    return _ann_join(left, right, semirings, [], counter)


def yannakakis_aggregate_stream(query: ConjunctiveQuery, database: Database,
                                group: Sequence[str],
                                aggregates: Sequence[Aggregate],
                                selections: Sequence[Comparison] = (),
                                counter: OperationCounter | None = None,
                                ) -> Iterator[tuple]:
    """Aggregate an alpha-acyclic query *inside* the join-tree passes.

    Yields finalized rows ``group values + aggregate values`` without ever
    materializing the join: after the semijoin reduction, every tuple is
    annotated with one semiring value per aggregate (the designated atom of
    an aggregate lifts its input variable; every other atom contributes the
    semiring's ``one``), messages up the join tree are aggregated onto the
    parent separator plus the still-needed columns (group-by variables and
    variables of comparison predicates that have not fired yet), and joins
    combine annotations with ``⊗``.  Distributivity is what makes the early
    ``⊕`` sound — which is why this mode requires every aggregate's
    semiring to define a product (``times``/``one``); plus-only monoids
    fall back to the engine's stream-fold mode.

    ``selections`` should be the cross-atom residue only (single-atom
    predicates belong in the scans); each fires at the first annotated join
    whose schema covers it.
    """
    semirings = [agg.semiring() for agg in aggregates]
    for agg, sr in zip(aggregates, semirings):
        if not sr.has_product:
            raise QueryError(
                f"aggregate {agg} uses the plus-only semiring {sr.name!r}; "
                "in-pass aggregation needs a product semiring (times/one)"
            )
    group = tuple(group)
    parent, children, order, root = _join_tree(query)
    relations = dict(query.bind(database))
    _semijoin_passes(relations, parent, children, order, counter)

    # Designated atom per aggregate: the first (body order) atom holding
    # the aggregate's input variable lifts it; everything else lifts one.
    designated: dict[int, str] = {}
    for i, agg in enumerate(aggregates):
        if agg.var is None:
            continue
        for j, atom in enumerate(query.atoms):
            if agg.var in atom.variable_set:
                designated[i] = query.edge_key(j)
                break
        else:
            raise QueryError(
                f"aggregate {agg} reads {agg.var!r}, which no atom binds"
            )

    tables: dict[str, _AnnTable] = {}
    with phase(counter, "annotate"):
        for edge_key, relation in relations.items():
            schema = tuple(relation.attributes)
            var_pos = {v: p for p, v in enumerate(schema)}
            rows: dict[tuple, list] = {}
            for t in relation:
                rows[t] = [
                    sr.lift(t[var_pos[aggregates[i].var]])
                    if designated.get(i) == edge_key else sr.one
                    for i, sr in enumerate(semirings)
                ]
            if counter is not None:
                counter.charge(tuples_scanned=len(relation))
            tables[edge_key] = (schema, rows)

    pending = list(selections)
    group_set = set(group)

    def keep_columns(schema: Sequence[str], separator: set[str]) -> tuple[str, ...]:
        still_needed = set(group_set)
        for sel in pending:
            still_needed |= sel.variables
        return tuple(v for v in schema
                     if v in separator or v in still_needed)

    # Bottom-up: aggregate each node onto its message columns, join into
    # the parent (``⊗``), firing cross-atom predicates as they bind.
    with phase(counter, "messages"):
        for node in order:
            par = parent.get(node)
            if par is None:
                continue
            schema, _rows = tables[node]
            par_schema, _par_rows = tables[par]
            separator = set(schema) & set(par_schema)
            message = _ann_project(tables[node],
                                   keep_columns(schema, separator),
                                   semirings, counter)
            del tables[node]
            tables[par] = _ann_join(tables[par], message, semirings, pending,
                                    counter)

    raise_if_pending(pending, query)

    _schema, result = _ann_project(tables[root], group, semirings, counter)
    if not result and not group:
        # SQL-style group-free aggregate of an empty join.
        if counter is not None:
            counter.charge(tuples_emitted=1)
        yield tuple(sr.finish(sr.zero) for sr in semirings)
        return
    for key, ann in result.items():
        if counter is not None:
            counter.charge(tuples_emitted=1)
        yield key + tuple(sr.finish(a) for sr, a in zip(semirings, ann))


# ----------------------------------------------------------------------
# Any-k ranked enumeration over the annotated join tree (Lawler/REA).
# ----------------------------------------------------------------------


def yannakakis_ranked_stream(query: ConjunctiveQuery, database: Database,
                             head: Sequence[str],
                             order_by: Sequence[tuple[str, bool]],
                             selections: Sequence[Comparison] = (),
                             counter: OperationCounter | None = None,
                             ) -> Iterator[tuple]:
    """Enumerate an alpha-acyclic query's head rows in exact sort order.

    The any-k counterpart of :func:`yannakakis_aggregate_stream`: instead
    of materializing the join and heap-selecting, the join tree itself is
    annotated in the ordering semiring and enumerated best-first.

    1. *Reduce*: the full (bottom-up + top-down) semijoin reduction, after
       which every surviving tuple participates in at least one result —
       the frontier never expands a dead branch.
    2. *Annotate* (bottom-up DP): every sort-key column is owned by the
       tree node closest to the root whose schema contains it; each
       tuple's annotation is the ``⊗``-merge of its own key components
       with, per child, the ``⊕``-minimum annotation among the child
       tuples matching it on the separator — i.e. the lexicographically
       best sort-key contribution its whole subtree can achieve (the
       join-tree analogue of the WCOJ per-separator best-suffix bounds).
    3. *Enumerate* (Lawler/REA successor expansion): states assign tuples
       to a root-down prefix of the tree nodes; a state's priority is the
       exact best full key among its completions — chosen tuples
       contribute their actual components, unassigned subtrees their
       annotations.  Popping a state pushes its first extension (next
       node's best matching tuple, same priority) and its last-choice
       successor (the next tuple in that node's annotation-sorted
       candidate list), so every assignment is reached exactly once and
       pops are monotone in the sort order.  Complete assignments are
       buffered per key class and emitted in the drain tie-break order
       (ascending head row), making the stream prefix bit-identical to
       sort-and-drain.

    ``selections`` are the engine's cross-atom residue: predicates a
    single node's schema covers are filtered into the scans before the
    reduction; genuinely cross-node predicates are checked on complete
    assignments (their pruning is invisible to the bounds, which stay
    admissible, so rank order is unaffected).

    Raises :class:`QueryError` when the query is not alpha-acyclic.
    """
    keys = [(variable, bool(descending)) for variable, descending in order_by]
    if not keys:
        raise QueryError("ranked enumeration needs at least one ORDER BY key")
    head = tuple(head)
    variables = set(query.variables)
    unknown = sorted({v for v, _d in keys if v not in variables}
                     | {h for h in head if h not in variables})
    if unknown:
        raise QueryError(
            f"ranked head/ORDER BY variables {unknown} are not query "
            f"variables {query.variables}"
        )
    parent, children, order, root = _join_tree(query)
    relations = dict(query.bind(database))
    pending = list(selections)
    if pending:
        relations = {key: apply_covered_selections(rel, pending, counter)
                     for key, rel in relations.items()}
    residual = pending  # cross-node predicates: checked on completions
    _semijoin_passes(relations, parent, children, order, counter)

    # Root-down node sequence (parents before children) and, per node, the
    # schema, the separator with the parent, and the owned key positions.
    sequence = [node for node in reversed(order)]
    if root in sequence:
        sequence.remove(root)
    sequence.insert(0, root)
    node_index = {node: i for i, node in enumerate(sequence)}
    schemas = {node: tuple(relations[node].attributes) for node in sequence}
    owner: dict[int, str] = {}
    for p, (variable, _descending) in enumerate(keys):
        owner[p] = min((node for node in sequence
                        if variable in schemas[node]),
                       key=lambda node: node_index[node])
    owned: dict[str, list[int]] = {node: [] for node in sequence}
    for p, node in owner.items():
        owned[node].append(p)
    separators = {
        node: tuple(sorted(set(schemas[node]) & set(schemas[parent[node]])))
        for node in sequence if parent.get(node) is not None
    }
    # Separator columns as precomputed positions on both sides, so the
    # per-tuple DP loops and per-pop candidate lookups index directly.
    child_sep_positions = {
        node: tuple(schemas[node].index(v) for v in separator)
        for node, separator in separators.items()
    }
    parent_sep_positions = {
        node: tuple(schemas[parent[node]].index(v) for v in separator)
        for node, separator in separators.items()
    }

    def pick(row: tuple, positions: tuple[int, ...]) -> tuple:
        return tuple(row[p] for p in positions)

    # Bottom-up DP: annotate every tuple with its subtree's best key
    # contribution; per node, candidate lists sorted by annotation.
    annotations: dict[str, dict[tuple, tuple]] = {}
    candidates: dict[str, dict[tuple, list[tuple]]] = {}
    with phase(counter, "annotate"):
        for node in reversed(sequence):  # children before parents
            schema = schemas[node]
            positions = [(p, schema.index(keys[p][0]), keys[p][1])
                         for p in sorted(owned[node])]
            messages = []
            for child in children.get(node, ()):
                best: dict[tuple, tuple] = {}
                child_positions = child_sep_positions[child]
                for row, ann in annotations[child].items():
                    key = pick(row, child_positions)
                    best[key] = RANKING.plus(best.get(key), ann)
                messages.append((parent_sep_positions[child], best))
            table: dict[tuple, tuple] = {}
            for row in relations[node]:
                ann = tuple((p, rank_component(row[i], d))
                            for p, i, d in positions)
                for own_positions, best in messages:
                    child_best = best.get(pick(row, own_positions))
                    if child_best is None:  # subtree died under selections
                        ann = None
                        break
                    ann = RANKING.times(ann, child_best)
                if ann is not None:
                    table[row] = ann
            if counter is not None:
                counter.charge(tuples_scanned=len(relations[node]))
            annotations[node] = table
            if parent.get(node) is not None:
                grouped: dict[tuple, list[tuple]] = {}
                for row, ann in table.items():
                    key = pick(row, child_sep_positions[node])
                    grouped.setdefault(key, []).append((ann, row))
                for group_rows in grouped.values():
                    group_rows.sort(
                        key=lambda pair: tuple(c for _p, c in pair[0]))
                candidates[node] = grouped

    root_list = sorted(((ann, row) for row, ann in annotations[root].items()),
                       key=lambda pair: tuple(c for _p, c in pair[0]))
    if not root_list:
        return

    def dense(priority: tuple, ann: tuple) -> tuple:
        """Replace an annotation's positions inside a dense priority."""
        components = list(priority)
        for p, component in ann:
            components[p] = component
        return tuple(components)

    def candidate_list(state_rows: tuple, depth: int) -> list[tuple]:
        node = sequence[depth]
        if depth == 0:
            return root_list
        parent_row = state_rows[node_index[parent[node]]]
        return candidates[node][pick(parent_row, parent_sep_positions[node])]

    initial_ann, initial_row = root_list[0]
    heap: list = [(dense((None,) * len(keys), initial_ann),
                   0, (0,), (initial_row,))]
    tick = itertools.count(1)

    # Tie-class buffer: rows of one key class are collected and emitted in
    # ascending row order (the drain tie-break) once the frontier proves no
    # more rows of that class remain (heap minimum strictly larger).
    buffer_key: tuple | None = None
    buffer_rows: set[tuple] = set()

    def complete_row(rows: tuple) -> tuple | None:
        binding = {}
        for node, row in zip(sequence, rows):  # lint: disable=counter-honesty -- one row per join-tree node (query-sized), not relation tuples; each completion is charged as a frontier pop
            binding.update(zip(schemas[node], row))
        if residual and not all(sel.evaluate(binding) for sel in residual):
            return None
        return tuple(binding[h] for h in head)

    with phase(counter, "frontier"):
        while heap:
            priority, _tick, indices, rows = heapq.heappop(heap)
            if counter is not None:
                counter.charge(search_nodes=1)
            if buffer_rows and priority > buffer_key:
                for row in sorted(buffer_rows):
                    if counter is not None:
                        counter.charge(tuples_emitted=1)
                    yield row
                buffer_key, buffer_rows = None, set()
            depth = len(indices) - 1
            # Successor: the next candidate at the last assigned node.
            successor_list = candidate_list(rows, depth)
            nxt = indices[depth] + 1
            if nxt < len(successor_list):
                ann, row = successor_list[nxt]
                heapq.heappush(heap, (
                    dense(priority, ann), next(tick),
                    indices[:depth] + (nxt,), rows[:depth] + (row,),
                ))
            if depth + 1 < len(sequence):
                # Extension: the next node's best matching tuple.  Its
                # subtree bound is already in the priority (the DP minimum
                # equals the sorted candidate list's head), so the priority
                # is unchanged.
                extension_list = candidate_list(rows, depth + 1)
                _ann, row = extension_list[0]
                heapq.heappush(heap, (
                    priority, next(tick), indices + (0,), rows + (row,),
                ))
            else:
                row = complete_row(rows)
                if row is not None:
                    if buffer_key is None:
                        buffer_key = priority
                    buffer_rows.add(row)
        for row in sorted(buffer_rows):
            if counter is not None:
                counter.charge(tuples_emitted=1)
            yield row
