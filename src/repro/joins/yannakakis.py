"""Yannakakis' algorithm for alpha-acyclic queries.

The classical counterpoint to WCOJ algorithms: when the query hypergraph is
alpha-acyclic, a full semijoin reduction along a join tree followed by joins
in reverse order evaluates the query in O(|D| + |output|) — no pairwise plan
pathology, no need for multiway intersection.  The paper's separation results
are precisely about the *cyclic* queries where this classical route is
unavailable; having Yannakakis in the library lets the optimizer (and the
experiments) treat the acyclic case with the right tool and makes the
"cyclic is where WCOJ matters" story executable.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.query.decomposition import gyo_reduction
from repro.relational.database import Database
from repro.relational.operators import natural_join, semijoin
from repro.relational.relation import Relation


def yannakakis(query: ConjunctiveQuery, database: Database,
               counter: OperationCounter | None = None) -> Relation:
    """Evaluate an alpha-acyclic full conjunctive query with Yannakakis'
    algorithm.

    Phases:

    1. build a join tree from the GYO reduction;
    2. bottom-up semijoin pass (children reduce their parents);
    3. top-down semijoin pass (parents reduce their children);
    4. join bottom-up; after the two passes every intermediate join result
       is no larger than the final output times the subtree's contribution,
       giving the classical O(|D| + |output|) guarantee for full queries.

    Raises
    ------
    QueryError
        If the query hypergraph is not alpha-acyclic.
    """
    hypergraph = query.hypergraph()
    reduction = gyo_reduction(hypergraph)
    if not reduction.acyclic:
        raise QueryError(
            f"query {query.name!r} is not alpha-acyclic; use a WCOJ algorithm instead"
        )

    relations = dict(query.bind(database))
    parent = dict(reduction.parent)
    # Children lists per node, and a bottom-up order (the GYO elimination
    # order visits leaves before the nodes that absorbed them).
    order = list(reduction.elimination_order)
    children: dict[str, list[str]] = {key: [] for key in parent}
    root = None
    for child, par in parent.items():
        if par is None:
            root = child
        else:
            children[par].append(child)
    if root is None:
        # Single-edge query: the only edge is its own root.
        root = order[-1]

    # Phase 2: bottom-up semijoins (each node reduces its parent).
    for node in order:
        par = parent.get(node)
        if par is None:
            continue
        relations[par] = semijoin(relations[par], relations[node], counter=counter)

    # Phase 3: top-down semijoins (each parent reduces its children).
    for node in reversed(order):
        for child in children.get(node, ()):
            relations[child] = semijoin(relations[child], relations[node],
                                        counter=counter)

    # Phase 4: join bottom-up.
    for node in order:
        par = parent.get(node)
        if par is None:
            continue
        joined = natural_join(relations[par], relations[node], counter=counter)
        if counter is not None:
            counter.charge(intermediate_tuples=len(joined))
        relations[par] = joined

    result = relations[root]
    variables = query.variables
    missing = [v for v in variables if v not in result.schema]
    if missing:
        raise QueryError(
            f"internal error: join tree result is missing variables {missing}"
        )
    ordered = result.reorder(variables, name=query.name)
    if tuple(query.head) != tuple(variables):
        ordered = ordered.project(query.head, name=query.name)
    return ordered


def semijoin_reduce(query: ConjunctiveQuery, database: Database,
                    counter: OperationCounter | None = None) -> dict[str, Relation]:
    """The full (bottom-up + top-down) semijoin reduction only.

    Returns the reduced relation per edge key.  After this pass every
    remaining tuple participates in at least one output tuple (for acyclic
    queries), which is the precondition for output-linear join evaluation.
    """
    hypergraph = query.hypergraph()
    reduction = gyo_reduction(hypergraph)
    if not reduction.acyclic:
        raise QueryError("semijoin reduction to a consistent state requires acyclicity")
    relations = dict(query.bind(database))
    parent = dict(reduction.parent)
    order = list(reduction.elimination_order)
    children: dict[str, list[str]] = {key: [] for key in parent}
    for child, par in parent.items():
        if par is not None:
            children[par].append(child)
    for node in order:
        par = parent.get(node)
        if par is not None:
            relations[par] = semijoin(relations[par], relations[node], counter=counter)
    for node in reversed(order):
        for child in children.get(node, ()):
            relations[child] = semijoin(relations[child], relations[node],
                                        counter=counter)
    return relations
