"""A naive nested-loop join used as the ground-truth oracle in tests.

Every other engine in this package (Generic-Join, Leapfrog Triejoin, the
triangle algorithms, Algorithm 3, binary plans, PANDA) is checked against
this implementation on small instances: they must all produce exactly the
same set of output tuples.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation


def nested_loop_stream(query: ConjunctiveQuery, database: Database,
                       counter: OperationCounter | None = None,
                       selections: Sequence = ()) -> Iterator[tuple]:
    """Lazily enumerate the join by brute-force backtracking over atom tuples.

    Yields duplicate-free tuples over ``query.variables``: a full binding
    determines the supporting tuple of every atom uniquely (relations are
    sets), so each binding is reached along exactly one search path.

    ``selections`` (:class:`~repro.query.terms.Comparison` predicates) are
    checked at the earliest atom whose extension binds all their variables,
    pruning partial bindings instead of filtering finished tuples.
    """
    bound_relations = query.bind(database)
    atoms = [(query.edge_key(i), atom) for i, atom in enumerate(query.atoms)]
    variables = query.variables

    # Each selection fires at the first atom index covering its variables.
    checks_at: list[list] = [[] for _ in atoms]
    covered: set[str] = set()
    pending = list(selections)
    for index, (_key, atom) in enumerate(atoms):
        covered |= atom.variable_set
        still_pending = []
        for sel in pending:
            if sel.variables <= covered:
                checks_at[index].append(sel)
            else:
                still_pending.append(sel)
        pending = still_pending
    if pending:
        raise ValueError(
            f"selections {[str(s) for s in pending]} mention variables "
            f"outside the query variables {variables}"
        )

    def extend(index: int, binding: dict[str, Any]) -> Iterator[tuple]:
        if index == len(atoms):
            if counter is not None:
                counter.charge(tuples_emitted=1)
            yield tuple(binding[v] for v in variables)
            return
        edge_key, atom = atoms[index]
        relation = bound_relations[edge_key]
        for tup in relation:
            if counter is not None:
                counter.charge(tuples_scanned=1)
            consistent = True
            for var, value in zip(atom.variables, tup):
                if var in binding and binding[var] != value:
                    consistent = False
                    break
            if not consistent:
                continue
            new_binding = dict(binding)
            new_binding.update(zip(atom.variables, tup))
            if all(sel.evaluate(new_binding) for sel in checks_at[index]):
                yield from extend(index + 1, new_binding)

    yield from extend(0, {})


def nested_loop_join(query: ConjunctiveQuery, database: Database,
                     counter: OperationCounter | None = None) -> Relation:
    """Evaluate the query by brute-force backtracking over atom tuples.

    The algorithm picks atoms one at a time (in body order) and extends a
    partial variable binding with every compatible tuple; it is exponential
    but obviously correct, which is the point.
    """
    results = nested_loop_stream(query, database, counter=counter)
    output = Relation(query.name, query.variables, results)
    if tuple(query.head) != tuple(query.variables):
        output = output.project(query.head, name=query.name)
    return output
