"""A naive nested-loop join used as the ground-truth oracle in tests.

Every other engine in this package (Generic-Join, Leapfrog Triejoin, the
triangle algorithms, Algorithm 3, binary plans, PANDA) is checked against
this implementation on small instances: they must all produce exactly the
same set of output tuples.
"""

from __future__ import annotations

from typing import Any

from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation


def nested_loop_join(query: ConjunctiveQuery, database: Database,
                     counter: OperationCounter | None = None) -> Relation:
    """Evaluate the query by brute-force backtracking over atom tuples.

    The algorithm picks atoms one at a time (in body order) and extends a
    partial variable binding with every compatible tuple; it is exponential
    but obviously correct, which is the point.
    """
    bound_relations = query.bind(database)
    atoms = [(query.edge_key(i), atom) for i, atom in enumerate(query.atoms)]
    variables = query.variables
    results: set[tuple] = set()

    def extend(index: int, binding: dict[str, Any]) -> None:
        if index == len(atoms):
            results.add(tuple(binding[v] for v in variables))
            if counter is not None:
                counter.charge(tuples_emitted=1)
            return
        edge_key, atom = atoms[index]
        relation = bound_relations[edge_key]
        for tup in relation:
            if counter is not None:
                counter.charge(tuples_scanned=1)
            consistent = True
            for var, value in zip(atom.variables, tup):
                if var in binding and binding[var] != value:
                    consistent = False
                    break
            if not consistent:
                continue
            new_binding = dict(binding)
            new_binding.update(zip(atom.variables, tup))
            extend(index + 1, new_binding)

    extend(0, {})
    head = query.head
    output = Relation(query.name, variables, results)
    if tuple(head) != tuple(variables):
        output = output.project(head, name=query.name)
    return output
