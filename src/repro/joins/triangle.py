"""The two triangle algorithms of Section 2, implemented verbatim.

Both evaluate Q(A,B,C) <- R(A,B), S(B,C), T(A,C) in time
O~(N + sqrt(|R| |S| |T|)):

* :func:`triangle_algorithm1` follows the Hölder/Bollobás–Thomason proof —
  it is the three nested intersection loops of Algorithm 1 (a special case
  of Generic-Join with order A, B, C).
* :func:`triangle_algorithm2` follows the entropy proof (eq. 20–24) — it
  partitions R into heavy and light parts at the threshold
  theta = sqrt(|R| |S| / |T|) and takes the union of two binary-join plans
  (Algorithm 2).

:func:`triangle_binary_plan` is the traditional (R JOIN S) JOIN T pairwise
plan used as the baseline in the scaling experiment.
"""

from __future__ import annotations

import math

from repro.joins.instrumentation import OperationCounter
from repro.relational.operators import natural_join, semijoin
from repro.relational.relation import Relation


def _check_triangle_schemas(r: Relation, s: Relation, t: Relation) -> None:
    expected = {("A", "B"): r, ("B", "C"): s, ("A", "C"): t}
    for attrs, rel in expected.items():
        if tuple(rel.attributes) != attrs:
            raise ValueError(
                f"relation {rel.name!r} must have schema {attrs}, got {rel.attributes}; "
                "rename columns before calling the triangle algorithms"
            )


def triangle_algorithm1(r: Relation, s: Relation, t: Relation,
                        counter: OperationCounter | None = None) -> Relation:
    """Algorithm 1: nested intersections following the Hölder-inequality proof.

    ``r``, ``s``, ``t`` must have schemas (A, B), (B, C), (A, C) respectively.
    Returns the triangle relation over (A, B, C).
    """
    _check_triangle_schemas(r, s, t)

    def charge(**kw: int) -> None:
        if counter is not None:
            counter.charge(**kw)

    # Index R and S by their first attribute, T by A; store sets of second
    # attribute values so intersections iterate the smaller side.
    r_by_a: dict[object, set] = {}
    for a, b in r:
        r_by_a.setdefault(a, set()).add(b)
    s_by_b: dict[object, set] = {}
    for b, c in s:
        s_by_b.setdefault(b, set()).add(c)
    t_by_a: dict[object, set] = {}
    for a, c in t:
        t_by_a.setdefault(a, set()).add(c)
    charge(tuples_scanned=len(r) + len(s) + len(t),
           hash_inserts=len(r) + len(s) + len(t))

    pi_a_r = set(r_by_a.keys())
    pi_a_t = set(t_by_a.keys())
    pi_b_s = set(s_by_b.keys())

    results = []
    outer = pi_a_r if len(pi_a_r) <= len(pi_a_t) else pi_a_t
    other = pi_a_t if outer is pi_a_r else pi_a_r
    charge(intersection_steps=len(outer))
    for a in outer:
        if a not in other:
            continue
        r_a = r_by_a[a]
        t_a = t_by_a[a]
        inner_b = r_a if len(r_a) <= len(pi_b_s) else pi_b_s
        other_b = pi_b_s if inner_b is r_a else r_a
        charge(intersection_steps=len(inner_b))
        for b in inner_b:
            if b not in other_b:
                continue
            s_b = s_by_b[b]
            inner_c = s_b if len(s_b) <= len(t_a) else t_a
            other_c = t_a if inner_c is s_b else s_b
            charge(intersection_steps=len(inner_c))
            for c in inner_c:
                if c in other_c:
                    results.append((a, b, c))
                    charge(tuples_emitted=1)
    return Relation("Q_triangle", ("A", "B", "C"), results)


def triangle_algorithm2(r: Relation, s: Relation, t: Relation,
                        counter: OperationCounter | None = None,
                        theta: float | None = None) -> Relation:
    """Algorithm 2: the heavy/light partition join from the entropy proof.

    theta defaults to sqrt(|R| * |S| / |T|) as in the paper.  Returns the
    triangle relation over (A, B, C); the two branches' intermediate sizes
    are charged to ``counter`` as ``intermediate_tuples``.
    """
    _check_triangle_schemas(r, s, t)
    if len(r) == 0 or len(s) == 0 or len(t) == 0:
        return Relation("Q_triangle", ("A", "B", "C"), ())
    if theta is None:
        theta = math.sqrt(len(r) * len(s) / len(t))

    # Degree of each A-value in R decides heavy vs light.
    degree_a: dict[object, int] = {}
    for a, _ in r:
        degree_a[a] = degree_a.get(a, 0) + 1
    if counter is not None:
        counter.charge(tuples_scanned=len(r))

    heavy_tuples = [(a, b) for a, b in r if degree_a[a] > theta]
    light_tuples = [(a, b) for a, b in r if degree_a[a] <= theta]
    r_heavy = Relation("R_heavy", ("A", "B"), heavy_tuples)
    r_light = Relation("R_light", ("A", "B"), light_tuples)

    # Heavy branch: (R_heavy JOIN S) SEMIJOIN T.
    heavy_join = natural_join(r_heavy, s, counter=counter)
    if counter is not None:
        counter.charge(intermediate_tuples=len(heavy_join))
    heavy_result = semijoin(heavy_join, t, counter=counter)

    # Light branch: (R_light JOIN T) SEMIJOIN S.
    light_join = natural_join(r_light, t, counter=counter)
    if counter is not None:
        counter.charge(intermediate_tuples=len(light_join))
    light_result = semijoin(light_join, s, counter=counter)

    combined = {
        tuple(row) for row in heavy_result.reorder(("A", "B", "C"))
    } | {
        tuple(row) for row in light_result.reorder(("A", "B", "C"))
    }
    return Relation("Q_triangle", ("A", "B", "C"), combined)


def triangle_binary_plan(r: Relation, s: Relation, t: Relation,
                         counter: OperationCounter | None = None) -> Relation:
    """The traditional pairwise plan (R JOIN S) JOIN T.

    Its intermediate result R JOIN S can be as large as |R| * |S| even when
    the final output is small, which is exactly the behaviour the WCOJ
    algorithms avoid; ``intermediate_tuples`` records it.
    """
    _check_triangle_schemas(r, s, t)
    first = natural_join(r, s, counter=counter)
    if counter is not None:
        counter.charge(intermediate_tuples=len(first))
    second = natural_join(first, t, counter=counter)
    return second.reorder(("A", "B", "C"), name="Q_triangle")
