"""Heavy/light partitioning — the data-structure move behind Algorithm 2 and
PANDA's decomposition steps.

Partitioning a relation R on the degree of a variable set X (tuples whose
X-value has more than ``threshold`` extensions are "heavy", the rest "light")
is the operational counterpart of the entropy chain-rule step
h(Y) -> h(X) + h(Y | X): the heavy part has few distinct X-values
(<= |R| / threshold) and the light part has bounded degree (<= threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.joins.instrumentation import OperationCounter
from repro.relational.relation import Relation
from repro.relational.statistics import degree as relation_degree


@dataclass(frozen=True)
class HeavyLightSplit:
    """The result of a heavy/light partition.

    Attributes
    ----------
    heavy:
        Tuples whose key value has degree > threshold.
    light:
        Tuples whose key value has degree <= threshold.
    threshold:
        The threshold used.
    key:
        The partitioning attributes X.
    """

    heavy: Relation
    light: Relation
    threshold: float
    key: tuple[str, ...]

    def verify(self) -> bool:
        """Check the two defining properties of the partition:

        * the heavy part has at most |R| / threshold distinct key values,
        * every key value of the light part has degree <= threshold.
        """
        total = len(self.heavy) + len(self.light)
        if self.threshold > 0:
            heavy_keys = len(self.heavy.columns(self.key))
            if heavy_keys > total / self.threshold + 1e-9:
                return False
        if len(self.light) > 0:
            rest = tuple(a for a in self.light.attributes if a not in self.key)
            if rest:
                if relation_degree(self.light, self.key, rest) > self.threshold + 1e-9:
                    return False
        return True


def heavy_light_partition(relation: Relation, key: Sequence[str], threshold: float,
                          counter: OperationCounter | None = None) -> HeavyLightSplit:
    """Split ``relation`` into heavy and light parts on the degree of ``key``.

    A tuple is *heavy* when its key value appears in more than ``threshold``
    tuples of the relation, *light* otherwise.  The general case is a
    counting pass plus a splitting pass, charged as two scans.  Two cases
    are decidable cheaper and charged honestly: an empty relation needs no
    scan at all, and ``threshold < 1`` makes every key heavy (all counts
    are integers >= 1), so the counting pass is skipped and only one scan
    is charged.
    """
    key = tuple(key)
    positions = relation.schema.positions(key)
    if len(relation) == 0:
        heavy = Relation(f"{relation.name}_heavy", relation.schema, [])
        light = Relation(f"{relation.name}_light", relation.schema, [])
        return HeavyLightSplit(heavy=heavy, light=light, threshold=threshold,
                               key=key)
    if threshold < 1:
        if counter is not None:
            counter.charge(tuples_scanned=len(relation))
        heavy = Relation(f"{relation.name}_heavy", relation.schema,
                         relation.tuples)
        light = Relation(f"{relation.name}_light", relation.schema, [])
        return HeavyLightSplit(heavy=heavy, light=light, threshold=threshold,
                               key=key)
    counts: dict[tuple, int] = {}
    for tup in relation:
        k = tuple(tup[p] for p in positions)
        counts[k] = counts.get(k, 0) + 1
    if counter is not None:
        counter.charge(tuples_scanned=2 * len(relation))

    heavy_tuples = []
    light_tuples = []
    for tup in relation:
        k = tuple(tup[p] for p in positions)
        if counts[k] > threshold:
            heavy_tuples.append(tup)
        else:
            light_tuples.append(tup)
    heavy = Relation(f"{relation.name}_heavy", relation.schema, heavy_tuples)
    light = Relation(f"{relation.name}_light", relation.schema, light_tuples)
    return HeavyLightSplit(heavy=heavy, light=light, threshold=threshold, key=key)
