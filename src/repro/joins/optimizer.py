"""A small strategy chooser: pairwise plans for acyclic queries, WCOJ for
cyclic ones.

This is deliberately minimal — the paper's Open Problem 8 is precisely that a
principled multiway-join optimizer does not exist yet.  The rule implemented
here captures the actionable part of the theory:

* alpha-acyclic queries are handled optimally (output-linear after a
  semijoin pass) by classical plans, so a greedy left-deep plan is used;
* cyclic queries are exactly where pairwise plans can be asymptotically
  suboptimal, so Generic-Join is used.

The chooser also reports the AGM bound it computed, so callers can log the
evidence behind the decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.agm import AGMBound, agm_bound
from repro.joins.binary_plans import greedy_left_deep_plan
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.joins.plan import execute_plan
from repro.query.atoms import ConjunctiveQuery
from repro.query.decomposition import is_alpha_acyclic
from repro.relational.database import Database
from repro.relational.relation import Relation


@dataclass(frozen=True)
class StrategyChoice:
    """The optimizer's decision and the evidence used to make it.

    Attributes
    ----------
    strategy:
        ``"binary"`` or ``"wcoj"``.
    acyclic:
        Whether the query hypergraph is alpha-acyclic.
    agm:
        The AGM bound of the query on the given database.
    """

    strategy: str
    acyclic: bool
    agm: AGMBound


def choose_strategy(query: ConjunctiveQuery, database: Database) -> StrategyChoice:
    """Pick an evaluation strategy for the query on this database."""
    acyclic = is_alpha_acyclic(query.hypergraph())
    bound = agm_bound(query, database)
    strategy = "binary" if acyclic else "wcoj"
    return StrategyChoice(strategy=strategy, acyclic=acyclic, agm=bound)


def evaluate(query: ConjunctiveQuery, database: Database,
             strategy: str | None = None,
             counter: OperationCounter | None = None) -> Relation:
    """Evaluate the query with the chosen (or automatically chosen) strategy.

    Parameters
    ----------
    strategy:
        ``"binary"``, ``"wcoj"`` or None (auto-choose).
    """
    if strategy is None:
        strategy = choose_strategy(query, database).strategy
    if strategy == "binary":
        plan = greedy_left_deep_plan(query, database)
        execution = execute_plan(plan, query, database, counter=counter)
        return execution.result
    if strategy == "wcoj":
        return generic_join(query, database, counter=counter)
    raise ValueError(f"unknown strategy {strategy!r}")
