"""Binary join plan trees and their executor.

Traditional query plans evaluate one (pairwise) join at a time, materializing
every intermediate result.  The plan tree here supports exactly that
paradigm; the executor records the size of every intermediate relation, which
is the quantity the WCOJ lower-bound arguments are about (a pairwise plan for
the triangle query must materialize an Omega(N^2) intermediate on the hard
instances even though the output is O(N^{3/2})).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import natural_join, project
from repro.relational.relation import Relation


@dataclass(frozen=True)
class PlanLeaf:
    """A plan leaf: scan of the relation bound to one query atom."""

    edge_key: str

    def atoms(self) -> tuple[str, ...]:
        """Edge keys of the atoms under this subtree."""
        return (self.edge_key,)

    def __str__(self) -> str:
        return self.edge_key


@dataclass(frozen=True)
class PlanJoin:
    """An inner plan node: the natural join of two sub-plans.

    ``project_to`` optionally projects the join result onto a subset of
    variables, enabling the *join-project* plans of Grohe–Marx / Atserias et
    al. (Section 1.2) in addition to join-only plans.
    """

    left: "JoinPlan"
    right: "JoinPlan"
    project_to: tuple[str, ...] | None = None

    def atoms(self) -> tuple[str, ...]:
        """Edge keys of the atoms under this subtree."""
        return self.left.atoms() + self.right.atoms()

    def __str__(self) -> str:
        inner = f"({self.left} JOIN {self.right})"
        if self.project_to is not None:
            return f"pi[{','.join(self.project_to)}]{inner}"
        return inner


JoinPlan = Union[PlanLeaf, PlanJoin]


@dataclass
class PlanExecution:
    """The outcome of executing a plan.

    Attributes
    ----------
    result:
        The final relation.
    intermediate_sizes:
        Sizes of every materialized intermediate (inner node), in execution
        order.
    counter:
        The operation counter used during execution.
    """

    result: Relation
    intermediate_sizes: list[int] = field(default_factory=list)
    counter: OperationCounter = field(default_factory=OperationCounter)

    @property
    def max_intermediate(self) -> int:
        """The largest intermediate relation size (0 if none)."""
        return max(self.intermediate_sizes, default=0)

    @property
    def total_intermediate(self) -> int:
        """Total tuples across all intermediates."""
        return sum(self.intermediate_sizes)


def apply_covered_selections(relation: Relation, pending: list,
                             counter: OperationCounter | None) -> Relation:
    """Filter by (and consume from ``pending``) every comparison predicate
    the relation's schema covers.

    The shared primitive behind cross-atom selection pushdown in the
    materializing executors: both the binary-plan executor and Yannakakis
    call it on base scans and on every pairwise join result, so each
    predicate fires exactly once, at the first relation binding all its
    variables.
    """
    covered = [sel for sel in pending
               if sel.variables <= set(relation.schema)]
    if not covered:
        return relation
    for sel in covered:
        pending.remove(sel)
    if counter is not None:
        counter.charge(tuples_scanned=len(relation))
    return relation.filter(
        lambda row: all(sel.evaluate(row) for sel in covered),
        name=relation.name,
    )


def raise_if_pending(pending: list, query: ConjunctiveQuery) -> None:
    """Reject selections no relation ever covered, saying why.

    Either the selection mentions variables the query does not have, or a
    join-project plan projected a needed variable away before the first
    node whose schema covered the whole predicate.
    """
    if not pending:
        return
    variables = set(query.variables)
    unknown = [s for s in pending if not (s.variables <= variables)]
    if unknown:
        raise QueryError(
            f"selections {[str(s) for s in unknown]} mention variables "
            f"outside the query variables {query.variables}"
        )
    raise QueryError(
        f"selections {[str(s) for s in pending]} never fired: a projection "
        "removed their variables before any node's schema covered them"
    )


def _validate_plan(plan: JoinPlan, query: ConjunctiveQuery) -> None:
    edge_keys = {query.edge_key(i) for i in range(len(query.atoms))}
    used = plan.atoms()
    if sorted(used) != sorted(edge_keys):
        raise QueryError(
            f"plan covers atoms {sorted(used)} but the query has {sorted(edge_keys)}"
        )


def execute_plan(plan: JoinPlan, query: ConjunctiveQuery, database: Database,
                 counter: OperationCounter | None = None,
                 selections: Sequence = ()) -> PlanExecution:
    """Execute a binary join plan bottom-up, materializing intermediates.

    The result is reordered to the query's head variables.  Every inner
    node's output size is recorded and also charged to the counter as
    ``intermediate_tuples``.

    ``selections`` (comparison predicates over the query variables) fire at
    the lowest plan node whose schema covers all their variables — a leaf
    scan for single-atom predicates, the first pairwise join binding both
    sides for cross-atom ones — and are applied *before* any join-project
    projection, so predicates prune intermediates instead of filtering the
    finished output.
    """
    _validate_plan(plan, query)
    execution = PlanExecution(result=None, counter=counter or OperationCounter())  # type: ignore[arg-type]
    bound_relations = query.bind(database)
    pending = list(selections)

    def run(node: JoinPlan) -> Relation:
        if isinstance(node, PlanLeaf):
            return apply_covered_selections(bound_relations[node.edge_key],
                                            pending, execution.counter)
        left = run(node.left)
        right = run(node.right)
        joined = natural_join(left, right, counter=execution.counter)
        if pending:
            joined = apply_covered_selections(joined, pending,
                                              execution.counter)
        if node.project_to is not None:
            joined = project(joined, node.project_to, counter=execution.counter)
        execution.intermediate_sizes.append(len(joined))
        execution.counter.charge(intermediate_tuples=len(joined))
        return joined

    result = run(plan)
    raise_if_pending(pending, query)
    # The final node is the query output, not an intermediate.
    if execution.intermediate_sizes:
        final_size = execution.intermediate_sizes.pop()
        execution.counter.charge(intermediate_tuples=-final_size)

    variables = query.variables
    missing = [v for v in variables if v not in result.schema]
    if missing:
        raise QueryError(
            f"plan result is missing variables {missing}; a projection removed them"
        )
    ordered = result.reorder(tuple(v for v in variables if v in result.schema),
                             name=query.name)
    if tuple(query.head) != tuple(ordered.attributes):
        ordered = ordered.project(query.head, name=query.name)
    execution.result = ordered
    return execution


def left_deep_plan(edge_keys: Sequence[str]) -> JoinPlan:
    """Build the left-deep plan ((k1 JOIN k2) JOIN k3) ... for the given atom
    order."""
    if not edge_keys:
        raise QueryError("cannot build a plan over zero atoms")
    plan: JoinPlan = PlanLeaf(edge_keys[0])
    for key in edge_keys[1:]:
        plan = PlanJoin(plan, PlanLeaf(key))
    return plan
