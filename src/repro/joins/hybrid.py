"""Heavy/light hybrid join plans — partitioning a whole *instance* on the
degree of one skew variable.

``heavy_light_partition`` splits a single relation; the hybrid strategy
(Ngo/Ré/Rudra, "Skew Strikes Back", arXiv:1310.3314) needs the instance-level
counterpart: pick a skew variable v, call every v-value *heavy* when it
exceeds the degree threshold in **any** relation touching v, and split each
touched relation into the tuples whose v-value is heavy and the rest.
Because heaviness is a property of the *value* (not of the tuple within one
relation), every output tuple of the join lands on exactly one side:

* the **heavy** sub-instance binds v to one of the few (<= sum |R_i| / t)
  heavy values — high fanout, but so few keys that materializing binary or
  Yannakakis sub-plans amortizes;
* the **light** sub-instance has per-value degree <= t in every touched
  relation — exactly the bounded-degree setting where generic join's
  intersections stay cheap.

Result streams of the two sides are disjoint on v's binding, so the ⊕-stitch
is concatenation (plus a projection-boundary dedup only when v is projected
away).  Relations not touching v are shared by both sides unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.joins.heavy_light import HeavyLightSplit, heavy_light_partition
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation


@dataclass(frozen=True)
class HybridPartition:
    """One instance-level heavy/light partition on a skew variable.

    ``heavy_query``/``heavy_db`` and ``light_query``/``light_db`` are
    ready-to-run sub-instances: touched atoms point at derived relations
    (named ``R#hyb<i>h`` / ``R#hyb<i>l``), untouched atoms at the original
    relations shared by both sides.
    """

    variable: str
    threshold: float
    heavy_keys: frozenset
    heavy_query: ConjunctiveQuery
    heavy_db: Database
    light_query: ConjunctiveQuery
    light_db: Database
    heavy_total: int
    light_total: int
    touched: tuple[int, ...]
    splits: tuple[HeavyLightSplit, ...]

    def verify(self, query: ConjunctiveQuery, database: Database) -> bool:
        """Check the partition invariants against the original instance:

        * per touched atom, heavy + light is a disjoint cover of the
          original relation;
        * every light tuple's key has degree <= threshold in its relation
          (the per-relation ``HeavyLightSplit`` invariant);
        * the heavy side binds at most sum(|R_i|) / threshold distinct
          key values (the global distinct-key bound — a key promoted by
          one relation may ride along in another, so the bound is on the
          union, not per relation).
        """
        total = 0
        for index, split in zip(self.touched, self.splits):
            atom = query.atoms[index]
            original = database.get(atom.relation)
            total += len(original)
            if split.heavy.tuples & split.light.tuples:
                return False
            if split.heavy.tuples | split.light.tuples != original.tuples:
                return False
            if not split.verify():
                return False
            pos = atom.variables.index(self.variable)
            if any(tup[pos] not in self.heavy_keys for tup in split.heavy):
                return False
            if any(tup[pos] in self.heavy_keys for tup in split.light):
                return False
        if self.threshold > 0:
            if len(self.heavy_keys) > total / self.threshold + 1e-9:
                return False
        return True


def residual_query(query: ConjunctiveQuery, variable: str
                   ) -> ConjunctiveQuery | None:
    """The query's structure once ``variable`` is bound and dropped.

    Binding the skew variable is what simplifies the heavy side: each
    atom loses the variable (atoms over *only* the variable disappear —
    they become per-key existence gates), so e.g. a triangle's residual
    is a 2-path and a 4-cycle's is a 3-path — acyclic, which licenses
    per-key Yannakakis sub-plans.  Returns None when no atoms survive
    (every atom was unary on the variable).
    """
    atoms = []
    for atom in query.atoms:
        rest = tuple(v for v in atom.variables if v != variable)
        if rest:
            atoms.append(Atom(atom.relation, rest))
    if not atoms:
        return None
    return ConjunctiveQuery(atoms, name=f"{query.name}#residual")


def partition_instance(query: ConjunctiveQuery, database: Database,
                       variable: str, threshold: float,
                       counter: OperationCounter | None = None) -> HybridPartition:
    """Partition every relation touching ``variable`` by value heaviness.

    A value is heavy when its degree exceeds ``threshold`` in *any* touched
    relation; light tuples whose value turns out heavy elsewhere are then
    promoted so both sides agree on the key set (the promotion pass is
    charged per re-scanned light part, and skipped when only one relation
    touches the variable).
    """
    touched = tuple(i for i, atom in enumerate(query.atoms)
                    if variable in atom.variable_set)
    splits: list[HeavyLightSplit] = []
    positions: list[int] = []
    heavy_keys: set = set()
    for index in touched:
        atom = query.atoms[index]
        relation = database.get(atom.relation)
        attr = relation.attributes[atom.variables.index(variable)]
        split = heavy_light_partition(relation, (attr,), threshold, counter)
        pos = atom.variables.index(variable)
        heavy_keys.update(tup[pos] for tup in split.heavy)
        splits.append(split)
        positions.append(pos)
    if len(touched) > 1:
        for i, split in enumerate(splits):
            pos = positions[i]
            moved = [tup for tup in split.light if tup[pos] in heavy_keys]
            if not moved:
                continue
            if counter is not None:
                counter.charge(tuples_scanned=len(split.light))
            moved_set = set(moved)
            splits[i] = HeavyLightSplit(
                heavy=Relation(split.heavy.name, split.heavy.schema,
                               split.heavy.tuples | moved_set),
                light=Relation(split.light.name, split.light.schema,
                               split.light.tuples - moved_set),
                threshold=split.threshold,
                key=split.key,
            )

    heavy_atoms: list[Atom] = []
    light_atoms: list[Atom] = []
    heavy_rels: dict[str, Relation] = {}
    light_rels: dict[str, Relation] = {}
    heavy_total = 0
    light_total = 0
    by_index = dict(zip(touched, splits))
    for i, atom in enumerate(query.atoms):
        if i in by_index:
            split = by_index[i]
            heavy_name = f"{atom.relation}#hyb{i}h"
            light_name = f"{atom.relation}#hyb{i}l"
            heavy_rels[heavy_name] = Relation(
                heavy_name, split.heavy.schema, split.heavy.tuples)
            light_rels[light_name] = Relation(
                light_name, split.light.schema, split.light.tuples)
            heavy_atoms.append(Atom(heavy_name, atom.variables))
            light_atoms.append(Atom(light_name, atom.variables))
            heavy_total += len(split.heavy)
            light_total += len(split.light)
        else:
            shared = database.get(atom.relation)
            heavy_rels.setdefault(atom.relation, shared)
            light_rels.setdefault(atom.relation, shared)
            heavy_atoms.append(atom)
            light_atoms.append(atom)
    return HybridPartition(
        variable=variable,
        threshold=threshold,
        heavy_keys=frozenset(heavy_keys),
        heavy_query=ConjunctiveQuery(heavy_atoms, name=f"{query.name}#heavy"),
        heavy_db=Database(heavy_rels.values()),
        light_query=ConjunctiveQuery(light_atoms, name=f"{query.name}#light"),
        light_db=Database(light_rels.values()),
        heavy_total=heavy_total,
        light_total=light_total,
        touched=touched,
        splits=tuple(splits),
    )
