"""Leapfrog Triejoin (Veldhuizen 2014).

Leapfrog Triejoin is the trie-based, sort-merge-flavoured WCOJ algorithm that
LogicBlox ships as its work-horse join (Section 1.2 of the paper).  Each
relation is stored as a trie whose levels follow a single global variable
order; at every variable the per-relation sorted value lists are intersected
with the *leapfrog* procedure, which repeatedly seeks each iterator to the
current maximum key.  The number of seeks is O(min size * log(max/min)),
satisfying the O~(min size) intersection requirement and hence the AGM
runtime bound.

Like :mod:`repro.joins.generic_join`, the algorithm is exposed both as a
lazy generator (:func:`leapfrog_stream`, used by the engine for ``LIMIT``
pushdown) and as the batch API (:func:`leapfrog_triejoin`), and both accept
prebuilt tries so index construction can be amortized across queries.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Mapping, Sequence

from repro.joins.generic_join import wcoj_stream
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.query.semiring import Aggregate
from repro.relational.database import Database
from repro.relational.index import TrieIndex
from repro.relational.relation import Relation


class LeapfrogIterator:
    """A linear iterator over one sorted value list with a seek operation."""

    __slots__ = ("keys", "position")

    def __init__(self, keys: Sequence[Any]):
        self.keys = keys
        self.position = 0

    def at_end(self) -> bool:
        """True when the iterator has run off the end of its list."""
        return self.position >= len(self.keys)

    def key(self) -> Any:
        """The current key (undefined when at end)."""
        return self.keys[self.position]

    def next(self) -> None:
        """Advance to the next key."""
        self.position += 1

    def seek(self, target: Any) -> None:
        """Advance to the least key >= ``target`` (galloping via bisect)."""
        self.position = bisect.bisect_left(self.keys, target, self.position)


def leapfrog_intersect(sorted_lists: Sequence[Sequence[Any]],
                       counter: OperationCounter | None = None) -> list[Any]:
    """Intersect several sorted duplicate-free lists with the leapfrog scheme.

    Returns the sorted intersection.  Every ``seek`` and output element is
    charged to ``counter``.
    """
    if not sorted_lists:
        return []
    if any(len(lst) == 0 for lst in sorted_lists):
        return []
    if len(sorted_lists) == 1:
        return list(sorted_lists[0])

    iterators = [LeapfrogIterator(lst) for lst in sorted_lists]
    iterators.sort(key=lambda it: it.key())
    result: list[Any] = []
    k = len(iterators)
    p = 0
    max_key = iterators[-1].key()
    while True:
        it = iterators[p]
        if counter is not None:
            counter.charge(seeks=1)
        key = it.key()
        if key == max_key:
            # All iterators agree on this key.
            result.append(key)
            it.next()
            if it.at_end():
                break
            max_key = it.key()
            p = (p + 1) % k
        else:
            it.seek(max_key)
            if it.at_end():
                break
            max_key = it.key()
            p = (p + 1) % k
    return result


def leapfrog_stream(query: ConjunctiveQuery, database: Database,
                    order: Sequence[str] | None = None,
                    counter: OperationCounter | None = None,
                    tries: Mapping[str, TrieIndex] | None = None,
                    selections: Sequence = (),
                    head: Sequence[str] | None = None,
                    aggregates: Sequence[Aggregate] | None = None,
                    ranked: Sequence[tuple[str, bool]] | None = None,
                    factorize: bool = True,
                    ) -> Iterator[tuple]:
    """Lazily enumerate the full join with Leapfrog Triejoin.

    Parameters are identical to
    :func:`repro.joins.generic_join.generic_join_stream` (including
    binding-level ``selections`` pushdown, early-deduplicating ``head``
    projection, in-recursion semiring ``aggregates`` with
    component-``factorize``d elimination, any-k ``ranked``
    enumeration, and per-variable search-node attribution under a
    ``counter`` with ``detail`` set); the difference is purely in how the
    per-variable
    intersections are computed (sorted leapfrog seeks instead of hash
    probes), which is the design-choice ablation benchmarked in
    ``benchmarks/bench_intersection.py``.  Both share the
    variable-at-a-time recursion of
    :func:`repro.joins.generic_join.wcoj_stream`.
    """
    return wcoj_stream(query, database, leapfrog_intersect,
                       order=order, counter=counter, tries=tries,
                       selections=selections, head=head,
                       aggregates=aggregates, ranked=ranked,
                       factorize=factorize)


def leapfrog_triejoin(query: ConjunctiveQuery, database: Database,
                      order: Sequence[str] | None = None,
                      counter: OperationCounter | None = None,
                      tries: Mapping[str, TrieIndex] | None = None) -> Relation:
    """Evaluate a full conjunctive query with Leapfrog Triejoin.

    Parameters are those of :func:`leapfrog_stream`; the stream is
    materialized into a :class:`Relation` over the query's head variables.
    """
    results = leapfrog_stream(query, database, order=order,
                              counter=counter, tries=tries)
    output = Relation(query.name, query.variables, results)
    if tuple(query.head) != tuple(query.variables):
        output = output.project(query.head, name=query.name)
    return output
