"""Leapfrog Triejoin (Veldhuizen 2014).

Leapfrog Triejoin is the trie-based, sort-merge-flavoured WCOJ algorithm that
LogicBlox ships as its work-horse join (Section 1.2 of the paper).  Each
relation is stored as a trie whose levels follow a single global variable
order; at every variable the per-relation sorted value lists are intersected
with the *leapfrog* procedure, which repeatedly seeks each iterator to the
current maximum key.  The number of seeks is O(min size * log(max/min)),
satisfying the O~(min size) intersection requirement and hence the AGM
runtime bound.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.query.variable_order import min_degree_order, validate_order
from repro.relational.database import Database
from repro.relational.index import TrieIndex
from repro.relational.relation import Relation


class LeapfrogIterator:
    """A linear iterator over one sorted value list with a seek operation."""

    __slots__ = ("keys", "position")

    def __init__(self, keys: Sequence[Any]):
        self.keys = keys
        self.position = 0

    def at_end(self) -> bool:
        """True when the iterator has run off the end of its list."""
        return self.position >= len(self.keys)

    def key(self) -> Any:
        """The current key (undefined when at end)."""
        return self.keys[self.position]

    def next(self) -> None:
        """Advance to the next key."""
        self.position += 1

    def seek(self, target: Any) -> None:
        """Advance to the least key >= ``target`` (galloping via bisect)."""
        self.position = bisect.bisect_left(self.keys, target, self.position)


def leapfrog_intersect(sorted_lists: Sequence[Sequence[Any]],
                       counter: OperationCounter | None = None) -> list[Any]:
    """Intersect several sorted duplicate-free lists with the leapfrog scheme.

    Returns the sorted intersection.  Every ``seek`` and output element is
    charged to ``counter``.
    """
    if not sorted_lists:
        return []
    if any(len(lst) == 0 for lst in sorted_lists):
        return []
    if len(sorted_lists) == 1:
        return list(sorted_lists[0])

    iterators = [LeapfrogIterator(lst) for lst in sorted_lists]
    iterators.sort(key=lambda it: it.key())
    result: list[Any] = []
    k = len(iterators)
    p = 0
    max_key = iterators[-1].key()
    while True:
        it = iterators[p]
        if counter is not None:
            counter.charge(seeks=1)
        key = it.key()
        if key == max_key:
            # All iterators agree on this key.
            result.append(key)
            it.next()
            if it.at_end():
                break
            max_key = it.key()
            p = (p + 1) % k
        else:
            it.seek(max_key)
            if it.at_end():
                break
            max_key = it.key()
            p = (p + 1) % k
    return result


def leapfrog_triejoin(query: ConjunctiveQuery, database: Database,
                      order: Sequence[str] | None = None,
                      counter: OperationCounter | None = None) -> Relation:
    """Evaluate a full conjunctive query with Leapfrog Triejoin.

    Parameters are identical to :func:`repro.joins.generic_join.generic_join`;
    the difference is purely in how the per-variable intersections are
    computed (sorted leapfrog seeks instead of hash probes), which is the
    design-choice ablation benchmarked in ``benchmarks/bench_intersection.py``.
    """
    if order is None:
        order = min_degree_order(query)
    else:
        order = validate_order(query, order)

    bound_relations = query.bind(database)
    tries: dict[str, TrieIndex] = {}
    trie_orders: dict[str, tuple[str, ...]] = {}
    for edge_key, relation in bound_relations.items():
        atom_order = tuple(v for v in order if v in relation.schema)
        tries[edge_key] = TrieIndex(relation, atom_order)
        trie_orders[edge_key] = atom_order

    relevant: dict[str, list[str]] = {v: [] for v in order}
    for edge_key, atom_order in trie_orders.items():
        for v in atom_order:
            relevant[v].append(edge_key)

    variables = query.variables
    results: list[tuple] = []
    binding: dict[str, Any] = {}

    def candidates_for(variable: str) -> list[Any]:
        value_lists = []
        for edge_key in relevant[variable]:
            atom_order = trie_orders[edge_key]
            depth = atom_order.index(variable)
            prefix = tuple(binding[v] for v in atom_order[:depth])
            value_lists.append(tries[edge_key].values(prefix))
        return leapfrog_intersect(value_lists, counter)

    def recurse(depth: int) -> None:
        if depth == len(order):
            results.append(tuple(binding[v] for v in variables))
            if counter is not None:
                counter.charge(tuples_emitted=1)
            return
        variable = order[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        for value in candidates_for(variable):
            binding[variable] = value
            recurse(depth + 1)
            del binding[variable]

    recurse(0)
    output = Relation(query.name, variables, results)
    if tuple(query.head) != tuple(variables):
        output = output.project(query.head, name=query.name)
    return output
