"""Join algorithms: WCOJ engines, the paper's pseudo-code algorithms, and
traditional binary-join baselines."""

from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_join
from repro.joins.generic_join import generic_join
from repro.joins.leapfrog import leapfrog_triejoin, leapfrog_intersect
from repro.joins.triangle import (
    triangle_algorithm1,
    triangle_algorithm2,
    triangle_binary_plan,
)
from repro.joins.backtracking import backtracking_search, backtracking_join
from repro.joins.plan import JoinPlan, PlanLeaf, PlanJoin, execute_plan, PlanExecution
from repro.joins.binary_plans import (
    greedy_atom_order,
    greedy_left_deep_plan,
    all_left_deep_plans,
    best_left_deep_execution,
)
from repro.joins.heavy_light import heavy_light_partition
from repro.joins.hybrid import (HybridPartition, partition_instance,
                                residual_query)
from repro.joins.optimizer import choose_strategy, evaluate
from repro.joins.yannakakis import yannakakis, semijoin_reduce
from repro.joins.counting import count_join, group_count, sum_product

__all__ = [
    "OperationCounter",
    "nested_loop_join",
    "generic_join",
    "leapfrog_triejoin",
    "leapfrog_intersect",
    "triangle_algorithm1",
    "triangle_algorithm2",
    "triangle_binary_plan",
    "backtracking_search",
    "backtracking_join",
    "JoinPlan",
    "PlanLeaf",
    "PlanJoin",
    "execute_plan",
    "PlanExecution",
    "greedy_atom_order",
    "greedy_left_deep_plan",
    "all_left_deep_plans",
    "best_left_deep_execution",
    "heavy_light_partition",
    "HybridPartition",
    "partition_instance",
    "residual_query",
    "choose_strategy",
    "evaluate",
    "yannakakis",
    "semijoin_reduce",
    "count_join",
    "group_count",
    "sum_product",
]
