"""Generic-Join (Ngo–Ré–Rudra 2013), the recursive WCOJ algorithm.

Generic-Join fixes a global variable order and computes the join one
variable at a time: at depth i, the candidate values for variable v_i are
the intersection, over all atoms containing v_i, of the values consistent
with the bindings chosen so far.  The only data-structure requirement is the
paper's assumption from Section 2: the intersection of k sets can be
enumerated in time proportional to the smallest set (times log factors).

With cardinality constraints only, the total work is within the AGM bound
O(N^{rho*}), which the benchmark harness verifies via operation counts.
Algorithm 1 of the paper is exactly this algorithm specialized to the
triangle query with the order (A, B, C).

The shared recursion (:func:`wcoj_stream`) is FAQ-shaped: variables that no
output head needs are *eliminated in-recursion* — each such subtree
collapses to one semiring value per aggregate instead of being enumerated
into output tuples.  The boolean semiring instance of this machinery is the
classical existential tail of a projection (find one witness and stop);
``COUNT``/``SUM``/``MIN``/``MAX``/``AVG`` heads reuse the identical
recursion with their own semirings, and a separator-keyed memo collapses
repeated subproblems so acyclic group-bys run output-linear instead of
join-linear.

The module exposes two entry points sharing one recursion:

* :func:`generic_join_stream` — a generator that lazily yields result
  tuples.  Because the recursion suspends at every ``yield``, abandoning the
  generator abandons the remaining search tree, which is how the query
  engine pushes ``LIMIT`` down into the join itself.
* :func:`generic_join` — the classical batch API returning a
  :class:`Relation`.

Both accept prebuilt :class:`TrieIndex` objects per atom so a long-lived
engine can amortize index construction across queries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Collection, Iterator, Mapping, Sequence

from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.query.semiring import (
    BOOLEAN,
    RANKING,
    Aggregate,
    rank_component,
    times_fold,
)
from repro.query.variable_order import min_degree_order, validate_order
from repro.relational.database import Database
from repro.relational.index import TrieIndex
from repro.relational.relation import Relation


def resolve_tries(query: ConjunctiveQuery, database: Database,
                  order: Sequence[str],
                  tries: Mapping[str, TrieIndex] | None = None,
                  ) -> tuple[dict[str, TrieIndex], dict[str, tuple[str, ...]]]:
    """Per-atom tries and per-atom variable orders for a WCOJ run.

    Missing entries of ``tries`` are built from scratch; provided entries
    must have been built level-compatible with the restriction of ``order``
    to the atom's variables (the engine's index registry guarantees this by
    construction).
    """
    bound_relations = query.bind(database)
    trie_map: dict[str, TrieIndex] = {}
    trie_orders: dict[str, tuple[str, ...]] = {}
    for edge_key, relation in bound_relations.items():
        atom_order = tuple(v for v in order if v in relation.schema)
        trie_orders[edge_key] = atom_order
        provided = tries.get(edge_key) if tries is not None else None
        if provided is not None:
            trie_map[edge_key] = provided
        else:
            trie_map[edge_key] = TrieIndex(relation, atom_order)
    return trie_map, trie_orders


#: Lift factorization of the boolean existential lift: it reads no
#: variables, so the bound prefix carries the whole lift and every
#: residual component contributes the boolean ``one`` (True) — a
#: component's fold is then exactly "does this sub-problem have a
#: witness", short-circuited per component by the absorbing element.
_BOOLEAN_FACTORS = ((frozenset(), lambda _subset: (lambda: True)),)


def wcoj_stream(query: ConjunctiveQuery, database: Database,
                intersect: Callable[[list, OperationCounter | None], list],
                order: Sequence[str] | None = None,
                counter: OperationCounter | None = None,
                tries: Mapping[str, TrieIndex] | None = None,
                selections: Sequence = (),
                head: Sequence[str] | None = None,
                aggregates: Sequence[Aggregate] | None = None,
                ranked: Sequence[tuple[str, bool]] | None = None,
                factorize: bool = True,
                ) -> Iterator[tuple]:
    """The shared variable-at-a-time WCOJ recursion.

    Generic-Join and Leapfrog Triejoin differ *only* in how they enumerate
    the intersection of the per-atom candidate sets (the paper's single
    algorithmic assumption); everything else — trie resolution, the
    relevant-atom map, the suspending recursion, in-recursion semiring
    elimination — is this one generator.  ``intersect(value_lists,
    counter)`` supplies that primitive: it receives the per-atom sorted
    value lists and returns their intersection.

    Selections (:class:`~repro.query.terms.Comparison` predicates over the
    query variables) are pushed into the recursion at the *binding* level:
    each predicate fires at the shallowest depth where all its variables
    are bound, pruning the candidate loop there instead of filtering
    finished tuples — constants and comparisons therefore cut the search
    tree below the join, not after it.

    **Projection.**  With ``head`` (a subset/permutation of the variables)
    the stream yields *deduplicated head tuples*.  When every non-head
    variable preceding the last head variable in ``order`` is pinned by a
    ``== constant`` selection, the tail variables after the head prefix
    are existential and collapse through the boolean-semiring eliminator:
    one witness saturates the fold (``absorbing``), the rest of the
    subtree is abandoned, and a separator-keyed memo reuses witnesses
    across head prefixes that agree on the variables the tail can actually
    see.  Otherwise a seen-set fallback keeps the semantics.

    **Aggregation.**  With ``aggregates``, ``head`` is the group-by prefix
    and the stream yields finalized aggregate rows ``group values +
    aggregate values`` directly out of the recursion (FAQ-style variable
    elimination): every variable after the group prefix is folded into the
    aggregates' semirings bottom-up, with the same separator memo, so the
    full join is never enumerated.  ``order`` must keep the group
    variables (plus constant-pinned variables) as a prefix — the
    aggregate-aware planner (:func:`repro.query.variable_order.
    aggregate_elimination_order`) constructs such orders.  A group-free
    aggregation over an empty join yields the single all-identities row
    (SQL-style ``COUNT() = 0``).

    **Component factorization.**  With ``factorize`` (the default), the
    eliminators additionally split the residual tail into the connected
    components of the residual hypergraph conditioned on the bound
    prefix (plus any tail selections gluing components together), fold
    each component independently with its own, smaller separator memo,
    and combine the per-component values with the semiring product —
    the exact FAQ bound ``N^{max component width}`` instead of the
    monolithic ``N^{tail width}`` on star/tree/product-shaped tails.
    Results are identical either way (the distributive law is what
    licenses the split); ``factorize=False`` keeps the monolithic fold
    for ablation, and lifts over semirings without a product fall back
    to it automatically.

    **Ranked enumeration.**  With ``ranked`` (ORDER BY keys as
    ``(variable, descending)`` pairs, each variable in ``head``), the
    stream yields head tuples in exact sort order *without materializing
    the join* — any-k ranked enumeration hosted in the same elimination
    machinery.  The ranking-semiring eliminators
    (:func:`repro.query.semiring.ranking_semiring`) compute, per
    separator and bottom-up, the lexicographically best sort-key suffix
    any completion of a prefix binding can achieve; a priority frontier
    (Lawler/REA-style successor expansion) then pops prefix bindings by
    ``bound key components + best-suffix bound`` — an exact bound, so
    pops occur in final-key order — and each popped complete key class
    is emitted in the drain tie-break order (ascending full row).
    ``order`` must keep the key variables as a prefix (after pinned
    variables, before the remaining head variables); the ranked planner
    (:func:`repro.query.variable_order.ranked_order`) constructs such
    orders.  Abandoning the iterator after k results abandons the
    frontier, which is what bounds ``ORDER BY ... LIMIT k`` by the
    bottom-up DP plus k delays instead of the full join.

    Yields tuples over ``query.variables`` (or ``head`` / the aggregate
    row shape); because the recursion suspends at every ``yield``,
    abandoning the iterator abandons the remaining search tree (``LIMIT``
    pushdown).
    """
    if order is None:
        order = min_degree_order(query)
    else:
        order = validate_order(query, order)

    trie_map, trie_orders = resolve_tries(query, database, order, tries)

    # For each variable, the atoms whose candidate sets constrain it.
    relevant: dict[str, list[str]] = {v: [] for v in order}
    for edge_key, atom_order in trie_orders.items():
        for v in atom_order:
            relevant[v].append(edge_key)

    variables = query.variables
    binding: dict[str, Any] = {}

    # Per-variable search-node attribution (EXPLAIN ANALYZE / metrics):
    # opt-in via the counter's ``detail`` flag, with the labels prebuilt
    # so the hot recursion pays one dict lookup per node, not a format.
    detail = counter is not None and counter.detail
    node_labels = ({v: f"search_nodes[{v}]" for v in order} if detail
                   else {})

    # Selection pushdown: each predicate fires at the shallowest depth
    # where all of its variables are bound.
    position = {v: i for i, v in enumerate(order)}
    checks_at: list[list] = [[] for _ in order]
    for sel in selections:
        unknown = [v for v in sel.variables if v not in position]
        if unknown:
            raise ValueError(
                f"selection {sel} mentions variables {unknown} "
                f"outside the query variables {variables}"
            )
        checks_at[max(position[v] for v in sel.variables)].append(sel)

    pinned = {sel.lhs for sel in selections
              if getattr(sel, "is_constant_equality", False)}

    def candidates_for(variable: str) -> list[Any]:
        value_lists: list[list[Any]] = []
        for edge_key in relevant[variable]:
            atom_order = trie_orders[edge_key]
            depth = atom_order.index(variable)
            prefix = tuple(binding[v] for v in atom_order[:depth])
            value_lists.append(trie_map[edge_key].values(prefix))
        return intersect(value_lists, counter)

    def passes(depth: int) -> bool:
        return all(sel.evaluate(binding) for sel in checks_at[depth])

    def make_eliminator(start: int, semirings: Sequence,
                        lifts: Sequence[Callable[[], Any]],
                        lift_needs: Collection[str] | None = None,
                        lift_factors: Sequence[tuple] | None = None):
        """A bottom-up semiring fold over the variables ``order[start:]``.

        ``eliminate(depth)`` returns one accumulator per semiring — the
        fold, over every assignment of ``order[depth:]`` consistent with
        the current prefix binding, of the per-assignment lifts — or
        ``None`` when no consistent assignment exists (so callers can
        distinguish an empty subtree from one that folds to the zeros).

        Three things make this cheaper than enumerating the subtree into
        tuples:

        * *saturation*: when every semiring has an absorbing ``plus``
          element, the candidate loop stops as soon as all accumulators
          reach it (the boolean semiring's one-witness existential
          search);
        * *memoization*: the subtree's value can only depend on the
          earlier-bound variables that the subtree can see — those
          sharing an atom with a subtree variable, those read by a
          selection firing inside the subtree, and the prefix-bound
          variables the lifts read (``lift_needs``: the aggregate input
          variables by default, the sort-key variables for the ranked
          eliminators).  Depths where that separator is strictly smaller
          than the full prefix carry a memo keyed on it, which is what
          collapses acyclic group-bys from join-linear to output-linear;
        * *component factorization* (the exact-FAQ-bound refinement):
          once the prefix is bound, the residual hypergraph on the tail
          variables may fall apart into connected components —
          conditionally-independent sub-problems that share no atom and
          no selection.  When every semiring carries a product and the
          lifts declare how they factor (``lift_factors``), each
          component is folded *independently* (its own memo, keyed on
          the typically much smaller per-component separator) and the
          per-component values combine with the semiring ``times``
          (:func:`repro.query.semiring.times_fold`).  A monolithic fold
          would instead thread a value-carrying variable of one
          component through the separators of all the others, paying a
          product ``N^{tail width}`` where the factorized fold pays
          ``N^{max component width}``.

        ``lift_factors`` holds one ``(reads, partial)`` pair per lift:
        ``reads`` is the set of variables the lift's value depends on and
        ``partial(subset)`` (for ``subset`` a subset of ``reads`` inside
        the tail) returns a component-local lift such that the
        ``times``-product of ``partial`` factors over a partition of the
        tail reads, times the full lift when no read is in the tail,
        equals the original lift.  Omitting it (or any semiring lacking
        ``times``) disables factorization and keeps the monolithic fold.

        The combine step deliberately short-circuits only on an *empty*
        component (``None`` — the semiring zero annihilates a product);
        a ``plus``-absorbing value such as the boolean ``True`` is **not**
        a license to skip the remaining components, whose sub-problems
        may still be empty.
        """
        n = len(order)
        # Variables co-occurring (in some atom) with each variable.
        covars: dict[str, set[str]] = {v: set() for v in order}
        for atom_order in trie_orders.values():
            for v in atom_order:
                covars[v].update(atom_order)
        if lift_needs is None:
            lift_needs = {
                agg.var for agg in (aggregates or ()) if agg.var is not None
            }
        can_saturate = all(sr.has_absorbing for sr in semirings)
        saturated = [sr.absorbing for sr in semirings] if can_saturate else None
        can_factor = (factorize and lift_factors is not None
                      and len(lift_factors) == len(lifts)
                      and all(sr.has_product for sr in semirings))

        def make_fold(positions: tuple[int, ...],
                      fold_lifts: Sequence[Callable[[], Any]],
                      seed_needs: Collection[str]):
            """A memoized ⊕-fold over the order positions ``positions``.

            The monolithic fold uses all of ``order[start:]``; component
            folds use one component's positions.  Either way the fold at
            index ``j`` may only depend on the bound variables the
            remaining sub-positions can see, so depths with a proper
            separator carry a memo keyed on it.
            """
            k = len(positions)
            needed: list[set[str]] = [set()] * k
            acc = set(seed_needs)
            for j in range(k - 1, -1, -1):
                d = positions[j]
                acc = set(acc)
                acc.update(covars[order[d]])
                for sel in checks_at[d]:
                    acc.update(sel.variables)
                needed[j] = acc
            base = positions[0] if positions else n
            memo_keys: dict[int, tuple[str, ...]] = {}
            memo: dict[int, dict[tuple, list | None]] = {}
            for j in range(k):
                bound_before = (order[:base]
                                + tuple(order[p] for p in positions[:j]))
                key = tuple(u for u in bound_before if u in needed[j])
                if len(key) < len(bound_before):  # a proper separator
                    memo_keys[j] = key
                    memo[j] = {}

            def fold(j: int) -> list | None:
                if j == k:
                    return [lift() for lift in fold_lifts]
                table = memo.get(j)
                if table is not None:
                    mkey = tuple(binding[u] for u in memo_keys[j])
                    try:
                        return table[mkey]
                    except KeyError:
                        pass
                depth = positions[j]
                variable = order[depth]
                if counter is not None:
                    counter.charge(search_nodes=1)
                    if detail:
                        counter.attribute(node_labels[variable])
                total: list | None = None
                for value in candidates_for(variable):
                    binding[variable] = value
                    sub = fold(j + 1) if passes(depth) else None
                    del binding[variable]
                    if sub is None:
                        continue
                    if total is None:
                        total = list(sub)
                    else:
                        for i, sr in enumerate(semirings):
                            total[i] = sr.plus(total[i], sub[i])
                    if saturated is not None and total == saturated:
                        break
                if table is not None:
                    table[mkey] = total
                return total

            return fold

        def tail_components(depth: int) -> list[tuple[int, ...]] | None:
            """Position groups of the residual components below ``depth``.

            The single shared split rule
            (:meth:`repro.query.hypergraph.Hypergraph.residual_components`
            with the selections as couplings — a selection's truth
            couples the assignments of the tail variables it reads, so
            the components it spans are glued).  Returns None when the
            tail does not decompose.
            """
            groups = query.hypergraph().residual_components(
                order[:depth],
                couplings=[sel.variables for sel in selections])
            if len(groups) <= 1:
                return None
            return [tuple(sorted(position[v] for v in g)) for g in groups]

        # Per-invocation-depth factorization structure, built lazily and
        # cached: callers re-enter the eliminator at a handful of depths
        # (its start; the emit depth for ranked tie classes) and the
        # per-component memo tables must persist across separator
        # bindings — that reuse is the point.
        structures: dict[int, tuple | None] = {}
        mono_fold = None

        def structure(depth: int) -> tuple | None:
            try:
                return structures[depth]
            except KeyError:
                pass
            result = None
            components = tail_components(depth) if can_factor else None
            if components is not None:
                tail_vars = frozenset(order[p] for p in range(depth, n))
                prefix_parts: list = []
                tail_partials: list = []
                for (reads, partial), lift, sr in zip(lift_factors, lifts,
                                                      semirings):
                    tail_reads = frozenset(reads) & tail_vars
                    if not tail_reads:
                        # The lift's value is fully determined by the
                        # bound prefix: it becomes the prefix factor and
                        # every component contributes the identity.
                        prefix_parts.append(lift)
                        tail_partials.append(None)
                    elif frozenset(reads) <= tail_vars:
                        prefix_parts.append(lambda _one=sr.one: _one)
                        tail_partials.append(partial)
                    else:  # reads spanning prefix and tail: don't factor
                        components = None
                        break
                if components is not None:
                    comp_folds = []
                    for comp_positions in components:
                        comp_vars = frozenset(order[p]
                                              for p in comp_positions)
                        comp_lifts = []
                        seed: set[str] = set()
                        for (reads, _partial), partial, sr in zip(
                                lift_factors, tail_partials, semirings):
                            if partial is None:
                                comp_lifts.append(lambda _one=sr.one: _one)
                            else:
                                local = frozenset(reads) & comp_vars
                                seed |= local
                                comp_lifts.append(partial(local))
                        comp_folds.append(
                            make_fold(comp_positions, comp_lifts, seed))
                    result = (comp_folds, prefix_parts)
            structures[depth] = result
            return result

        def eliminate(depth: int) -> list | None:
            nonlocal mono_fold
            if depth >= n:
                return [lift() for lift in lifts]
            struct = structure(depth)
            if struct is None:
                if mono_fold is None:
                    mono_fold = make_fold(tuple(range(start, n)), lifts,
                                          lift_needs)
                return mono_fold(depth - start)
            comp_folds, prefix_parts = struct
            values = []
            for fold in comp_folds:
                sub = fold(0)
                if sub is None:
                    return None  # an empty component empties the product
                values.append(sub)
            return [
                times_fold(sr, [prefix_parts[i]()]
                           + [value[i] for value in values])
                for i, sr in enumerate(semirings)
            ]

        return eliminate

    if ranked is not None and aggregates is not None:
        raise ValueError(
            "ranked enumeration does not apply to aggregate heads; "
            "ordered aggregate queries drain and sort their group rows"
        )

    # ------------------------------------------------------------------
    # Any-k ranked enumeration: a priority frontier over the search tree,
    # ordered by exact best-suffix bounds from the ranking semiring.
    # ------------------------------------------------------------------
    if ranked is not None:
        keys = [(v, bool(descending)) for v, descending in ranked]
        if not keys:
            raise ValueError("ranked enumeration needs at least one sort key")
        unknown = [v for v, _d in keys if v not in position]
        if unknown:
            raise ValueError(
                f"ORDER BY variables {unknown} are not query variables")
        head_vars = tuple(head) if head is not None else tuple(variables)
        unknown = [h for h in head_vars if h not in position]
        if unknown:
            raise ValueError(f"head variables {unknown} are not query variables")
        head_set = set(head_vars)
        key_set = {v for v, _d in keys}
        stray = sorted(key_set - head_set)
        if stray:
            raise ValueError(
                f"ORDER BY variables {stray} are not head variables; "
                "a row's sort key must be a function of the row"
            )
        n = len(order)
        ob_depth = max(position[v] for v in key_set) + 1
        emit_depth = max(ob_depth,
                         max((position[h] for h in head_vars), default=0) + 1)
        blockers = [v for v in order[:ob_depth]
                    if v not in key_set and v not in pinned]
        if blockers:
            raise ValueError(
                f"variable order {order} interleaves unpinned non-key "
                f"variables {blockers} before the last ORDER BY variable; "
                "any-k enumeration needs the sort keys as a prefix"
            )
        blockers = [v for v in order[ob_depth:emit_depth]
                    if v not in head_set and v not in pinned]
        if blockers:
            raise ValueError(
                f"variable order {order} interleaves unpinned non-head "
                f"variables {blockers} before the last head variable; "
                "any-k emission needs the head as a prefix"
            )

        # One ranking-semiring eliminator per frontier depth: the depth-d
        # eliminator folds the subtree below a d-prefix binding into the
        # lexicographically best completion of the *still-unbound* key
        # components (memoized per separator — the bottom-up DP).  Depths
        # with every key bound fall through to the boolean existential
        # eliminator, whose absorbing element keeps subtree checks at
        # one-witness cost.
        rank_eliminators: dict[int, Callable[[int], list | None]] = {}
        for start in range(1, ob_depth):
            suffix = tuple((p, v, descending)
                           for p, (v, descending) in enumerate(keys)
                           if position[v] >= start)
            if not suffix:
                continue

            def suffix_lift(_suffix=suffix):
                return tuple((p, rank_component(binding[v], descending))
                             for p, v, descending in _suffix)

            def suffix_partial(subset, _suffix=suffix):
                # The sort-key sub-vector a component can see; vectors
                # over disjoint key positions recompose with the ranking
                # semiring's ⊗ (positionwise merge), so the combined
                # best-suffix bound stays exact — the lexicographic
                # minimum of independent blocks is the merge of the
                # blocks' minima.
                chosen = tuple(entry for entry in _suffix
                               if entry[1] in subset)

                def partial_lift(_chosen=chosen):
                    return tuple((p, rank_component(binding[v], descending))
                                 for p, v, descending in _chosen)

                return partial_lift

            rank_eliminators[start] = make_eliminator(
                start, (RANKING,), (suffix_lift,),
                lift_needs={v for _p, v, _d in suffix},
                lift_factors=((frozenset(v for _p, v, _d in suffix),
                               suffix_partial),))
        exists = (make_eliminator(ob_depth, (BOOLEAN,),
                                  (lambda: BOOLEAN.lift(None),),
                                  lift_factors=_BOOLEAN_FACTORS)
                  if ob_depth < n else None)

        def frontier_priority(depth: int) -> tuple | None:
            """The exact best full sort key reachable under the current
            ``depth``-prefix binding (None: the subtree is empty)."""
            components: list = [None] * len(keys)
            for p, (v, descending) in enumerate(keys):
                if position[v] < depth:
                    components[p] = rank_component(binding[v], descending)
            eliminator = rank_eliminators.get(depth)
            if eliminator is not None:
                best_suffix = eliminator(depth)
                if best_suffix is None:
                    return None
                for p, component in best_suffix[0]:
                    components[p] = component
            elif exists is not None and exists(depth) is None:
                return None
            return tuple(components)

        heap: list = []
        tick = itertools.count()  # heap tiebreak; bindings never compare

        def expand(depth: int) -> None:
            variable = order[depth]
            if counter is not None:
                counter.charge(search_nodes=1)
                if detail:
                    counter.attribute(node_labels[variable])
            prefix = tuple(binding[v] for v in order[:depth])
            for value in candidates_for(variable):
                binding[variable] = value
                if passes(depth):
                    priority = frontier_priority(depth + 1)
                    if priority is not None:
                        heapq.heappush(heap, (priority, next(tick),
                                              depth + 1, prefix + (value,)))
                del binding[variable]

        def tie_class(depth: int) -> Iterator[tuple]:
            """Head rows of one popped key class (depths ``ob_depth`` to
            ``emit_depth``), existential tail collapsed per row."""
            if depth == emit_depth:
                if emit_depth < n and exists(emit_depth) is None:
                    return
                yield tuple(binding[h] for h in head_vars)
                return
            variable = order[depth]
            if counter is not None:
                counter.charge(search_nodes=1)
                if detail:
                    counter.attribute(node_labels[variable])
            for value in candidates_for(variable):
                binding[variable] = value
                if passes(depth):
                    yield from tie_class(depth + 1)
                del binding[variable]

        expand(0)
        while heap:
            _priority, _tick, depth, values = heapq.heappop(heap)
            binding.clear()
            binding.update(zip(order[:depth], values))
            if depth == ob_depth:
                # Distinct pops carry distinct keys (the key variables are
                # the only branching prefix variables), so one pop is one
                # whole tie class: emit it in the drain tie-break order.
                rows = sorted(tie_class(depth))
                binding.clear()
                for row in rows:
                    if counter is not None:
                        counter.charge(tuples_emitted=1)
                    yield row
            else:
                expand(depth)
                binding.clear()
        return

    # ------------------------------------------------------------------
    # Aggregate mode: head = group-by prefix, tail folded in-recursion.
    # ------------------------------------------------------------------
    if aggregates is not None:
        group = tuple(head or ())
        missing = [g for g in group if g not in position]
        if missing:
            raise ValueError(f"group variables {missing} are not query variables")
        group_set = set(group)
        agg_start = max((position[g] for g in group), default=-1) + 1
        blockers = [v for v in order[:agg_start]
                    if v not in group_set and v not in pinned]
        if blockers:
            raise ValueError(
                f"variable order {order} interleaves unpinned non-group "
                f"variables {blockers} before the last group variable; "
                "in-recursion aggregation needs the group as a prefix"
            )
        semirings = [agg.semiring() for agg in aggregates]
        lifts = [
            (lambda sr=sr: sr.lift(None)) if agg.var is None
            else (lambda v=agg.var, sr=sr: sr.lift(binding[v]))
            for agg, sr in zip(aggregates, semirings)
        ]
        # How each aggregate lift factorizes across residual components:
        # the component holding the aggregated variable carries the lift,
        # every other component contributes the semiring ``one`` (their
        # folds then count multiplicity, which ``times`` distributes over
        # the value-carrying factor).  Variable-free lifts (COUNT) stay
        # with the prefix factor.
        lift_factors = [
            (frozenset() if agg.var is None else frozenset({agg.var}),
             (lambda subset, lift=lift, sr=sr:
              lift if subset else (lambda _one=sr.one: _one)))
            for agg, sr, lift in zip(aggregates, semirings, lifts)
        ]
        eliminate = make_eliminator(agg_start, semirings, lifts,
                                    lift_factors=lift_factors)

        def emit_group() -> tuple | None:
            values = eliminate(agg_start)
            if values is None:
                return None
            if counter is not None:
                counter.charge(tuples_emitted=1)
            return (tuple(binding[g] for g in group)
                    + tuple(sr.finish(v) for sr, v in zip(semirings, values)))

        def group_recurse(depth: int) -> Iterator[tuple]:
            if depth == agg_start:
                row = emit_group()
                if row is not None:
                    yield row
                return
            variable = order[depth]
            if counter is not None:
                counter.charge(search_nodes=1)
                if detail:
                    counter.attribute(node_labels[variable])
            for value in candidates_for(variable):
                binding[variable] = value
                if passes(depth):
                    yield from group_recurse(depth + 1)
                del binding[variable]

        produced = False
        for row in group_recurse(0):
            produced = True
            yield row
        if not produced and not group:
            # SQL-style group-free aggregate of an empty join.
            if counter is not None:
                counter.charge(tuples_emitted=1)
            yield tuple(sr.finish(sr.zero) for sr in semirings)
        return

    # ------------------------------------------------------------------
    # Projection / full-enumeration mode.
    # ------------------------------------------------------------------
    # Find the depth after which all head variables are bound, and whether
    # the prefix guarantees distinct head tuples (every non-head variable
    # in it is pinned to one value by a constant equality), enabling the
    # boolean-semiring existential tail.
    if head is not None:
        head = tuple(head)
        missing = [h for h in head if h not in position]
        if missing:
            raise ValueError(f"head variables {missing} are not query variables")
        head_set = set(head)
        prefix_depth = max((position[h] for h in head), default=0) + 1 if head else 0
        early_distinct = all(v in head_set or v in pinned
                             for v in order[:prefix_depth])
    else:
        prefix_depth = len(order) + 1
        early_distinct = True

    if head is not None and early_distinct and prefix_depth < len(order):
        exists = make_eliminator(prefix_depth, (BOOLEAN,),
                                 (lambda: BOOLEAN.lift(None),),
                                 lift_factors=_BOOLEAN_FACTORS)
    else:
        exists = None

    def emit() -> tuple:
        if counter is not None:
            counter.charge(tuples_emitted=1)
        if head is None:
            return tuple(binding[v] for v in variables)
        return tuple(binding[h] for h in head)

    def recurse(depth: int) -> Iterator[tuple]:
        if exists is not None and depth == prefix_depth:
            if exists(prefix_depth) is not None:
                yield emit()
            return
        if depth == len(order):
            yield emit()
            return
        variable = order[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
            if detail:
                counter.attribute(node_labels[variable])
        for value in candidates_for(variable):
            binding[variable] = value
            if passes(depth):
                yield from recurse(depth + 1)
            del binding[variable]

    if head is not None and not early_distinct and set(head) != set(variables):
        # Fallback: the order interleaves unpinned non-head variables with
        # the head, so distinctness needs a seen-set.
        def deduplicated() -> Iterator[tuple]:
            seen: set[tuple] = set()
            for projected in recurse(0):
                if projected not in seen:
                    seen.add(projected)
                    yield projected
        yield from deduplicated()
    else:
        yield from recurse(0)


def hash_probe_intersect(value_lists: list,
                         counter: OperationCounter | None = None) -> list:
    """Intersect sorted value lists smallest-first with hash probes.

    This is Generic-Join's realization of the O(min size) intersection
    assumption: iterate the smallest list and probe the others as sets.
    """
    if not value_lists:
        return []
    value_lists = sorted(value_lists, key=len)
    smallest = value_lists[0]
    if counter is not None:
        counter.charge(intersection_steps=len(smallest))
    if len(value_lists) == 1:
        return list(smallest)
    other_sets = [set(lst) for lst in value_lists[1:]]
    return [v for v in smallest if all(v in s for s in other_sets)]


def generic_join_stream(query: ConjunctiveQuery, database: Database,
                        order: Sequence[str] | None = None,
                        counter: OperationCounter | None = None,
                        tries: Mapping[str, TrieIndex] | None = None,
                        selections: Sequence = (),
                        head: Sequence[str] | None = None,
                        aggregates: Sequence[Aggregate] | None = None,
                        ranked: Sequence[tuple[str, bool]] | None = None,
                        factorize: bool = True,
                        ) -> Iterator[tuple]:
    """Lazily enumerate the full join, yielding tuples over ``query.variables``.

    Parameters
    ----------
    query:
        The conjunctive query.
    database:
        Relations for every atom.
    order:
        Optional global variable order; defaults to the min-degree heuristic.
        Any order yields a worst-case optimal run for cardinality
        constraints.
    counter:
        Optional operation counter; intersection steps, emitted tuples and
        search nodes are charged to it.  With ``counter.detail`` set,
        search nodes are additionally attributed per join variable into
        ``counter.breakdown`` (``search_nodes[A]``, ...).
    tries:
        Optional prebuilt tries keyed by edge key (see :func:`resolve_tries`).
    selections:
        Comparison predicates pushed into the recursion at the binding
        level (see :func:`wcoj_stream`).
    head:
        Optional projection; with it the stream yields deduplicated head
        tuples (collapsing the existential tail through the boolean
        semiring when the order allows).  With ``aggregates`` it is the
        group-by prefix instead.
    aggregates:
        Optional semiring aggregates evaluated *in-recursion* (FAQ-style
        variable elimination); the stream then yields finalized rows
        ``head values + aggregate values`` (see :func:`wcoj_stream`).
    ranked:
        Optional ORDER BY keys as ``(variable, descending)`` pairs; the
        stream then yields head tuples in exact sort order via any-k
        ranked enumeration (see :func:`wcoj_stream`), so abandoning it
        after k tuples never pays for the full join.
    factorize:
        Whether eliminators split the residual tail into connected
        components and combine the per-component folds with the semiring
        product (see :func:`wcoj_stream`); results are identical either
        way, so False exists for ablation and benchmarking only.
    """
    return wcoj_stream(query, database, hash_probe_intersect,
                       order=order, counter=counter, tries=tries,
                       selections=selections, head=head,
                       aggregates=aggregates, ranked=ranked,
                       factorize=factorize)


def generic_join(query: ConjunctiveQuery, database: Database,
                 order: Sequence[str] | None = None,
                 counter: OperationCounter | None = None,
                 tries: Mapping[str, TrieIndex] | None = None) -> Relation:
    """Evaluate a full conjunctive query with Generic-Join.

    Parameters are those of :func:`generic_join_stream`; the stream is
    materialized into a :class:`Relation` over the query's head variables.
    """
    results = generic_join_stream(query, database, order=order,
                                  counter=counter, tries=tries)
    output = Relation(query.name, query.variables, results)
    if tuple(query.head) != tuple(query.variables):
        output = output.project(query.head, name=query.name)
    return output
