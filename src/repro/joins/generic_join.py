"""Generic-Join (Ngo–Ré–Rudra 2013), the recursive WCOJ algorithm.

Generic-Join fixes a global variable order and computes the join one
variable at a time: at depth i, the candidate values for variable v_i are
the intersection, over all atoms containing v_i, of the values consistent
with the bindings chosen so far.  The only data-structure requirement is the
paper's assumption from Section 2: the intersection of k sets can be
enumerated in time proportional to the smallest set (times log factors).

With cardinality constraints only, the total work is within the AGM bound
O(N^{rho*}), which the benchmark harness verifies via operation counts.
Algorithm 1 of the paper is exactly this algorithm specialized to the
triangle query with the order (A, B, C).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.query.variable_order import min_degree_order, validate_order
from repro.relational.database import Database
from repro.relational.index import TrieIndex
from repro.relational.relation import Relation


def generic_join(query: ConjunctiveQuery, database: Database,
                 order: Sequence[str] | None = None,
                 counter: OperationCounter | None = None) -> Relation:
    """Evaluate a full conjunctive query with Generic-Join.

    Parameters
    ----------
    query:
        The conjunctive query.
    database:
        Relations for every atom.
    order:
        Optional global variable order; defaults to the min-degree heuristic.
        Any order yields a worst-case optimal run for cardinality
        constraints.
    counter:
        Optional operation counter; intersection steps, emitted tuples and
        search nodes are charged to it.

    Returns
    -------
    Relation
        The join result over the query's head variables.
    """
    if order is None:
        order = min_degree_order(query)
    else:
        order = validate_order(query, order)

    bound_relations = query.bind(database)

    # One trie per atom, levels ordered by the global variable order.
    tries: dict[str, TrieIndex] = {}
    trie_orders: dict[str, tuple[str, ...]] = {}
    for edge_key, relation in bound_relations.items():
        atom_order = tuple(v for v in order if v in relation.schema)
        tries[edge_key] = TrieIndex(relation, atom_order)
        trie_orders[edge_key] = atom_order

    # For each variable, the atoms whose candidate sets constrain it.
    relevant: dict[str, list[str]] = {v: [] for v in order}
    for edge_key, atom_order in trie_orders.items():
        for v in atom_order:
            relevant[v].append(edge_key)

    variables = query.variables
    results: list[tuple] = []
    binding: dict[str, Any] = {}

    def candidates_for(variable: str) -> list[Any]:
        """Intersect, smallest-first, the per-atom candidate sets."""
        value_lists: list[list[Any]] = []
        for edge_key in relevant[variable]:
            atom_order = trie_orders[edge_key]
            depth = atom_order.index(variable)
            prefix = tuple(binding[v] for v in atom_order[:depth])
            value_lists.append(tries[edge_key].values(prefix))
        if not value_lists:
            return []
        value_lists.sort(key=len)
        smallest = value_lists[0]
        if counter is not None:
            counter.charge(intersection_steps=len(smallest))
        if len(value_lists) == 1:
            return list(smallest)
        other_sets = [set(lst) for lst in value_lists[1:]]
        return [v for v in smallest if all(v in s for s in other_sets)]

    def recurse(depth: int) -> None:
        if depth == len(order):
            results.append(tuple(binding[v] for v in variables))
            if counter is not None:
                counter.charge(tuples_emitted=1)
            return
        variable = order[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        for value in candidates_for(variable):
            binding[variable] = value
            recurse(depth + 1)
            del binding[variable]

    recurse(0)
    output = Relation(query.name, variables, results)
    if tuple(query.head) != tuple(variables):
        output = output.project(query.head, name=query.name)
    return output
