"""Generic-Join (Ngo–Ré–Rudra 2013), the recursive WCOJ algorithm.

Generic-Join fixes a global variable order and computes the join one
variable at a time: at depth i, the candidate values for variable v_i are
the intersection, over all atoms containing v_i, of the values consistent
with the bindings chosen so far.  The only data-structure requirement is the
paper's assumption from Section 2: the intersection of k sets can be
enumerated in time proportional to the smallest set (times log factors).

With cardinality constraints only, the total work is within the AGM bound
O(N^{rho*}), which the benchmark harness verifies via operation counts.
Algorithm 1 of the paper is exactly this algorithm specialized to the
triangle query with the order (A, B, C).

The module exposes two entry points sharing one recursion:

* :func:`generic_join_stream` — a generator that lazily yields result
  tuples.  Because the recursion suspends at every ``yield``, abandoning the
  generator abandons the remaining search tree, which is how the query
  engine pushes ``LIMIT`` down into the join itself.
* :func:`generic_join` — the classical batch API returning a
  :class:`Relation`.

Both accept prebuilt :class:`TrieIndex` objects per atom so a long-lived
engine can amortize index construction across queries.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.query.variable_order import min_degree_order, validate_order
from repro.relational.database import Database
from repro.relational.index import TrieIndex
from repro.relational.relation import Relation


def resolve_tries(query: ConjunctiveQuery, database: Database,
                  order: Sequence[str],
                  tries: Mapping[str, TrieIndex] | None = None,
                  ) -> tuple[dict[str, TrieIndex], dict[str, tuple[str, ...]]]:
    """Per-atom tries and per-atom variable orders for a WCOJ run.

    Missing entries of ``tries`` are built from scratch; provided entries
    must have been built level-compatible with the restriction of ``order``
    to the atom's variables (the engine's index registry guarantees this by
    construction).
    """
    bound_relations = query.bind(database)
    trie_map: dict[str, TrieIndex] = {}
    trie_orders: dict[str, tuple[str, ...]] = {}
    for edge_key, relation in bound_relations.items():
        atom_order = tuple(v for v in order if v in relation.schema)
        trie_orders[edge_key] = atom_order
        provided = tries.get(edge_key) if tries is not None else None
        if provided is not None:
            trie_map[edge_key] = provided
        else:
            trie_map[edge_key] = TrieIndex(relation, atom_order)
    return trie_map, trie_orders


def wcoj_stream(query: ConjunctiveQuery, database: Database,
                intersect: Callable[[list, OperationCounter | None], list],
                order: Sequence[str] | None = None,
                counter: OperationCounter | None = None,
                tries: Mapping[str, TrieIndex] | None = None,
                selections: Sequence = (),
                head: Sequence[str] | None = None,
                ) -> Iterator[tuple]:
    """The shared variable-at-a-time WCOJ recursion.

    Generic-Join and Leapfrog Triejoin differ *only* in how they enumerate
    the intersection of the per-atom candidate sets (the paper's single
    algorithmic assumption); everything else — trie resolution, the
    relevant-atom map, the suspending recursion — is this one generator.
    ``intersect(value_lists, counter)`` supplies that primitive: it receives
    the per-atom sorted value lists and returns their intersection.

    Selections (:class:`~repro.query.terms.Comparison` predicates over the
    query variables) are pushed into the recursion at the *binding* level:
    each predicate fires at the shallowest depth where all its variables
    are bound, pruning the candidate loop there instead of filtering
    finished tuples — constants and comparisons therefore cut the search
    tree below the join, not after it.

    With ``head`` (a subset/permutation of the variables) the stream yields
    *deduplicated head tuples*.  When every non-head variable preceding the
    last head variable in ``order`` is pinned by a ``== constant``
    selection, deduplication is *early*: the tail variables after the head
    prefix are existential, so the recursion probes them for a single
    witness and abandons the rest of that subtree — no seen-set, no wasted
    enumeration.  Otherwise a seen-set fallback keeps the semantics.

    Yields tuples over ``query.variables`` (or ``head``); because the
    recursion suspends at every ``yield``, abandoning the iterator abandons
    the remaining search tree (``LIMIT`` pushdown).
    """
    if order is None:
        order = min_degree_order(query)
    else:
        order = validate_order(query, order)

    trie_map, trie_orders = resolve_tries(query, database, order, tries)

    # For each variable, the atoms whose candidate sets constrain it.
    relevant: dict[str, list[str]] = {v: [] for v in order}
    for edge_key, atom_order in trie_orders.items():
        for v in atom_order:
            relevant[v].append(edge_key)

    variables = query.variables
    binding: dict[str, Any] = {}

    # Selection pushdown: each predicate fires at the shallowest depth
    # where all of its variables are bound.
    position = {v: i for i, v in enumerate(order)}
    checks_at: list[list] = [[] for _ in order]
    for sel in selections:
        unknown = [v for v in sel.variables if v not in position]
        if unknown:
            raise ValueError(
                f"selection {sel} mentions variables {unknown} "
                f"outside the query variables {variables}"
            )
        checks_at[max(position[v] for v in sel.variables)].append(sel)

    # Projection: find the depth after which all head variables are bound,
    # and whether the prefix guarantees distinct head tuples (every
    # non-head variable in it is pinned to one value by a constant
    # equality), enabling the existential early-stop.
    if head is not None:
        head = tuple(head)
        missing = [h for h in head if h not in position]
        if missing:
            raise ValueError(f"head variables {missing} are not query variables")
        head_set = set(head)
        prefix_depth = max((position[h] for h in head), default=0) + 1 if head else 0
        pinned = {sel.lhs for sel in selections
                  if getattr(sel, "is_constant_equality", False)}
        early_distinct = all(v in head_set or v in pinned
                             for v in order[:prefix_depth])
    else:
        head_set = set()
        prefix_depth = len(order) + 1
        early_distinct = True

    def candidates_for(variable: str) -> list[Any]:
        value_lists: list[list[Any]] = []
        for edge_key in relevant[variable]:
            atom_order = trie_orders[edge_key]
            depth = atom_order.index(variable)
            prefix = tuple(binding[v] for v in atom_order[:depth])
            value_lists.append(trie_map[edge_key].values(prefix))
        return intersect(value_lists, counter)

    def passes(depth: int) -> bool:
        return all(sel.evaluate(binding) for sel in checks_at[depth])

    def exists(depth: int) -> bool:
        """One-witness search over the existential tail variables."""
        if depth == len(order):
            return True
        variable = order[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        for value in candidates_for(variable):
            binding[variable] = value
            found = passes(depth) and exists(depth + 1)
            del binding[variable]
            if found:
                return True
        return False

    def emit() -> tuple:
        if counter is not None:
            counter.charge(tuples_emitted=1)
        if head is None:
            return tuple(binding[v] for v in variables)
        return tuple(binding[h] for h in head)

    def recurse(depth: int) -> Iterator[tuple]:
        if head is not None and depth == prefix_depth and early_distinct:
            if depth == len(order) or exists(depth):
                yield emit()
            return
        if depth == len(order):
            yield emit()
            return
        variable = order[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        for value in candidates_for(variable):
            binding[variable] = value
            if passes(depth):
                yield from recurse(depth + 1)
            del binding[variable]

    if head is not None and not early_distinct and set(head) != set(variables):
        # Fallback: the order interleaves unpinned non-head variables with
        # the head, so distinctness needs a seen-set.
        def deduplicated() -> Iterator[tuple]:
            seen: set[tuple] = set()
            for projected in recurse(0):
                if projected not in seen:
                    seen.add(projected)
                    yield projected
        yield from deduplicated()
    else:
        yield from recurse(0)


def hash_probe_intersect(value_lists: list,
                         counter: OperationCounter | None = None) -> list:
    """Intersect sorted value lists smallest-first with hash probes.

    This is Generic-Join's realization of the O(min size) intersection
    assumption: iterate the smallest list and probe the others as sets.
    """
    if not value_lists:
        return []
    value_lists = sorted(value_lists, key=len)
    smallest = value_lists[0]
    if counter is not None:
        counter.charge(intersection_steps=len(smallest))
    if len(value_lists) == 1:
        return list(smallest)
    other_sets = [set(lst) for lst in value_lists[1:]]
    return [v for v in smallest if all(v in s for s in other_sets)]


def generic_join_stream(query: ConjunctiveQuery, database: Database,
                        order: Sequence[str] | None = None,
                        counter: OperationCounter | None = None,
                        tries: Mapping[str, TrieIndex] | None = None,
                        selections: Sequence = (),
                        head: Sequence[str] | None = None,
                        ) -> Iterator[tuple]:
    """Lazily enumerate the full join, yielding tuples over ``query.variables``.

    Parameters
    ----------
    query:
        The conjunctive query.
    database:
        Relations for every atom.
    order:
        Optional global variable order; defaults to the min-degree heuristic.
        Any order yields a worst-case optimal run for cardinality
        constraints.
    counter:
        Optional operation counter; intersection steps, emitted tuples and
        search nodes are charged to it.
    tries:
        Optional prebuilt tries keyed by edge key (see :func:`resolve_tries`).
    selections:
        Comparison predicates pushed into the recursion at the binding
        level (see :func:`wcoj_stream`).
    head:
        Optional projection; with it the stream yields deduplicated head
        tuples (early-deduplicating when the order allows).
    """
    return wcoj_stream(query, database, hash_probe_intersect,
                       order=order, counter=counter, tries=tries,
                       selections=selections, head=head)


def generic_join(query: ConjunctiveQuery, database: Database,
                 order: Sequence[str] | None = None,
                 counter: OperationCounter | None = None,
                 tries: Mapping[str, TrieIndex] | None = None) -> Relation:
    """Evaluate a full conjunctive query with Generic-Join.

    Parameters are those of :func:`generic_join_stream`; the stream is
    materialized into a :class:`Relation` over the query's head variables.
    """
    results = generic_join_stream(query, database, order=order,
                                  counter=counter, tries=tries)
    output = Relation(query.name, query.variables, results)
    if tuple(query.head) != tuple(query.variables):
        output = output.project(query.head, name=query.name)
    return output
