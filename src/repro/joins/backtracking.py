"""Algorithm 3: backtracking search for acyclic degree constraints.

Given a query Q, an *acyclic* degree constraint set DC and a variable order
compatible with DC, the algorithm computes, one variable at a time, the
values consistent with every constraint whose free set contains the current
variable — by intersecting projections of the guard relations.  Theorem 5.1
shows the search tree has at most

    prod_{(X,Y,N) in DC} N^{delta_{Y|X}}

nodes, where delta is an optimal dual solution of the modular LP (57); i.e.
the algorithm is worst-case optimal for acyclic DC, with no hidden factors
beyond n * |DC| * log |D|.

Because the constraints may only *project* the guards (the guards need not be
materialized on all their variables), the raw search result can be a superset
of the query output; :func:`backtracking_join` filters it against every atom,
which is the "semijoin-reduce against the guards" step the paper mentions.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.constraints.dependency_graph import (
    compatible_variable_order,
    order_is_compatible,
)
from repro.errors import ConstraintError
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.index import TrieIndex
from repro.relational.relation import Relation


def _resolve_guard(query: ConjunctiveQuery, bound_relations: dict[str, Relation],
                   constraint: DegreeConstraint) -> Relation:
    """Find the (variable-renamed) relation guarding a constraint."""
    guard = constraint.guard
    if guard is None:
        raise ConstraintError(f"constraint {constraint} has no guard")
    if guard in bound_relations:
        relation = bound_relations[guard]
    else:
        # The guard may be given as a relation name rather than an edge key.
        matches = [
            key for i, atom in enumerate(query.atoms)
            if atom.relation == guard
            for key in [query.edge_key(i)]
        ]
        if not matches:
            raise ConstraintError(
                f"guard {guard!r} of constraint {constraint} is not an atom of the query"
            )
        relation = bound_relations[matches[0]]
    missing = constraint.y - set(relation.schema.attributes)
    if missing:
        raise ConstraintError(
            f"guard relation for {constraint} does not contain variables {sorted(missing)}"
        )
    return relation


def backtracking_search(query: ConjunctiveQuery, database: Database,
                        dc: DegreeConstraintSet,
                        order: Sequence[str] | None = None,
                        counter: OperationCounter | None = None) -> Relation:
    """Run Algorithm 3 and return the set of bindings consistent with every
    constraint projection (a superset of the query output in general).

    Parameters
    ----------
    query, database:
        The query and its input relations (guards are resolved among the
        query atoms).
    dc:
        Acyclic degree constraints; every query variable must lie in the free
        set of at least one constraint.
    order:
        A variable order compatible with DC; computed automatically when
        omitted.
    counter:
        Operation counter (intersection steps and search nodes).

    Raises
    ------
    ConstraintError
        If DC is cyclic, the order is incompatible, or some variable is not
        covered by any constraint.
    """
    if not dc.is_acyclic():
        raise ConstraintError("Algorithm 3 requires acyclic degree constraints")
    if order is None:
        order = compatible_variable_order(dc, prefer=query.variables)
    elif not order_is_compatible(dc, order):
        raise ConstraintError(f"variable order {order} is not compatible with the constraints")
    order = tuple(order)
    if set(order) != set(query.variables):
        raise ConstraintError("the variable order must cover exactly the query variables")

    bound_relations = query.bind(database)

    # Preprocessing: project every guard onto its constraint's Y variables and
    # build a trie whose levels follow the global order restricted to Y.
    constraint_tries: list[tuple[DegreeConstraint, TrieIndex, tuple[str, ...]]] = []
    for constraint in dc:
        guard_relation = _resolve_guard(query, bound_relations, constraint)
        y_order = tuple(v for v in order if v in constraint.y)
        projection = guard_relation.project(y_order, name=f"pi_{guard_relation.name}")
        if counter is not None:
            counter.charge(tuples_scanned=len(guard_relation))
        constraint_tries.append((constraint, TrieIndex(projection, y_order), y_order))

    # Which constraints bound each variable (i in Y - X).
    bounding: dict[str, list[tuple[TrieIndex, tuple[str, ...]]]] = {v: [] for v in order}
    for constraint, trie, y_order in constraint_tries:
        for variable in constraint.free_variables:
            bounding[variable].append((trie, y_order))
    uncovered = [v for v in order if not bounding[v]]
    if uncovered:
        raise ConstraintError(
            f"variables {uncovered} are not bounded by any constraint; the search "
            "space would be infinite"
        )

    results: list[tuple] = []
    binding: dict[str, Any] = {}

    def candidates_for(variable: str) -> list[Any]:
        value_lists: list[list[Any]] = []
        for trie, y_order in bounding[variable]:
            level = y_order.index(variable)
            prefix = tuple(binding[v] for v in y_order[:level])
            value_lists.append(trie.values(prefix))
        value_lists.sort(key=len)
        smallest = value_lists[0]
        if counter is not None:
            counter.charge(intersection_steps=len(smallest))
        if len(value_lists) == 1:
            return list(smallest)
        other_sets = [set(lst) for lst in value_lists[1:]]
        return [v for v in smallest if all(v in s for s in other_sets)]

    def search(depth: int) -> None:
        if depth == len(order):
            results.append(tuple(binding[v] for v in order))
            if counter is not None:
                counter.charge(tuples_emitted=1)
            return
        variable = order[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        for value in candidates_for(variable):
            binding[variable] = value
            search(depth + 1)
            del binding[variable]

    search(0)
    return Relation(f"{query.name}_search", order, results)


def backtracking_join(query: ConjunctiveQuery, database: Database,
                      dc: DegreeConstraintSet,
                      order: Sequence[str] | None = None,
                      counter: OperationCounter | None = None) -> Relation:
    """Algorithm 3 followed by semijoin-reduction against every query atom,
    yielding the exact query output."""
    candidates = backtracking_search(query, database, dc, order=order, counter=counter)
    bound_relations = query.bind(database)
    variables = query.variables
    candidate_order = candidates.attributes

    memberships = []
    for i, atom in enumerate(query.atoms):
        relation = bound_relations[query.edge_key(i)]
        positions = tuple(candidate_order.index(v) for v in atom.variables)
        atom_tuples = relation.columns(atom.variables)
        memberships.append((positions, atom_tuples))
        if counter is not None:
            counter.charge(hash_inserts=len(relation))

    kept = []
    for tup in candidates:
        if counter is not None:
            counter.charge(hash_probes=len(memberships))
        if all(tuple(tup[p] for p in positions) in atom_tuples
               for positions, atom_tuples in memberships):
            kept.append(tup)
    output = Relation(query.name, candidate_order, kept)
    ordered = output.reorder(variables, name=query.name)
    if tuple(query.head) != tuple(variables):
        ordered = ordered.project(query.head, name=query.name)
    return ordered
