"""Counting and aggregation over joins without materializing the output.

The paper stresses (Section 1.1) that the bounds and algorithms apply to
aggregate queries in a very general setting (the FAQ framework), conjunctive
queries being the special case.  This module provides the two most common
aggregate forms over a full conjunctive query:

* :func:`count_join` — |Q(D)| computed by the Generic-Join recursion without
  storing output tuples (the triangle-counting workload of the paper's
  introduction);
* :func:`group_count` — per-binding counts over a prefix of the variable
  order, e.g. "number of triangles per vertex";
* :func:`sum_product` — a semiring-style SumProd aggregate
  ``sum over output of the product of per-atom weights`` (the left-hand side
  of Friedgut's inequality, Theorem 4.1), which subsumes counting when every
  weight is 1.

All three run within the same worst-case-optimal budget as Generic-Join: the
recursion tree they traverse is identical, only the leaves differ.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import ConjunctiveQuery
from repro.query.variable_order import min_degree_order, validate_order
from repro.relational.database import Database
from repro.relational.index import TrieIndex


class _JoinTraversal:
    """Shared Generic-Join-style traversal used by the aggregate functions."""

    def __init__(self, query: ConjunctiveQuery, database: Database,
                 order: Sequence[str] | None,
                 counter: OperationCounter | None):
        if order is None:
            order = min_degree_order(query)
        else:
            order = validate_order(query, order)
        self.order = tuple(order)
        self.counter = counter
        bound_relations = query.bind(database)
        self.tries: dict[str, TrieIndex] = {}
        self.trie_orders: dict[str, tuple[str, ...]] = {}
        for edge_key, relation in bound_relations.items():
            atom_order = tuple(v for v in self.order if v in relation.schema)
            self.tries[edge_key] = TrieIndex(relation, atom_order)
            self.trie_orders[edge_key] = atom_order
        self.relevant: dict[str, list[str]] = {v: [] for v in self.order}
        for edge_key, atom_order in self.trie_orders.items():
            for v in atom_order:
                self.relevant[v].append(edge_key)
        self.binding: dict[str, Any] = {}

    def candidates(self, variable: str) -> list[Any]:
        value_lists = []
        for edge_key in self.relevant[variable]:
            atom_order = self.trie_orders[edge_key]
            depth = atom_order.index(variable)
            prefix = tuple(self.binding[v] for v in atom_order[:depth])
            value_lists.append(self.tries[edge_key].values(prefix))
        if not value_lists:
            return []
        value_lists.sort(key=len)
        smallest = value_lists[0]
        if self.counter is not None:
            self.counter.charge(intersection_steps=len(smallest))
        if len(value_lists) == 1:
            return list(smallest)
        others = [set(lst) for lst in value_lists[1:]]
        return [v for v in smallest if all(v in s for s in others)]


def count_join(query: ConjunctiveQuery, database: Database,
               order: Sequence[str] | None = None,
               counter: OperationCounter | None = None) -> int:
    """Count |Q(D)| without materializing the output.

    The traversal is exactly Generic-Join's, so the work is within the same
    worst-case-optimal bound; only an integer is carried back up the
    recursion.
    """
    traversal = _JoinTraversal(query, database, order, counter)
    order_ = traversal.order

    def recurse(depth: int) -> int:
        if depth == len(order_):
            return 1
        variable = order_[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        total = 0
        for value in traversal.candidates(variable):
            traversal.binding[variable] = value
            total += recurse(depth + 1)
            del traversal.binding[variable]
        return total

    return recurse(0)


def group_count(query: ConjunctiveQuery, database: Database,
                group_by: Sequence[str],
                order: Sequence[str] | None = None,
                counter: OperationCounter | None = None) -> dict[tuple, int]:
    """Count output tuples per binding of ``group_by`` variables.

    The grouping variables are forced to the front of the variable order so
    each group is a subtree of the recursion and the count per group is
    accumulated without materializing tuples.  Groups with zero matches are
    omitted.
    """
    group_by = tuple(group_by)
    unknown = [v for v in group_by if v not in query.variables]
    if unknown:
        raise ValueError(f"group-by variables {unknown} are not query variables")
    if order is None:
        base = [v for v in min_degree_order(query) if v not in group_by]
        order = tuple(group_by) + tuple(base)
    else:
        order = validate_order(query, order)
        if tuple(order[:len(group_by)]) != group_by:
            raise ValueError("the variable order must start with the group-by variables")

    traversal = _JoinTraversal(query, database, order, counter)
    order_ = traversal.order
    results: dict[tuple, int] = {}

    def count_subtree(depth: int) -> int:
        if depth == len(order_):
            return 1
        variable = order_[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        total = 0
        for value in traversal.candidates(variable):
            traversal.binding[variable] = value
            total += count_subtree(depth + 1)
            del traversal.binding[variable]
        return total

    def enumerate_groups(depth: int) -> None:
        if depth == len(group_by):
            count = count_subtree(depth)
            if count:
                key = tuple(traversal.binding[v] for v in group_by)
                results[key] = count
            return
        variable = order_[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        for value in traversal.candidates(variable):
            traversal.binding[variable] = value
            enumerate_groups(depth + 1)
            del traversal.binding[variable]

    enumerate_groups(0)
    return results


def sum_product(query: ConjunctiveQuery, database: Database,
                weight_functions: Mapping[str, Callable[[tuple], float]] | None = None,
                order: Sequence[str] | None = None,
                counter: OperationCounter | None = None) -> float:
    """The SumProd aggregate ``sum_{a in Q} prod_F w_F(a_F)``.

    ``weight_functions`` maps an atom's edge key to a non-negative weight
    function on its tuples (in the atom's variable order); missing entries
    default to the constant 1, so with no weights at all this equals
    ``count_join``.  This is the quantity Friedgut's inequality (Theorem 4.1)
    bounds, evaluated in worst-case-optimal time.
    """
    weight_functions = dict(weight_functions or {})
    traversal = _JoinTraversal(query, database, order, counter)
    order_ = traversal.order
    variables = query.variables
    atom_info = []
    for i, atom in enumerate(query.atoms):
        key = query.edge_key(i)
        if key in weight_functions:
            atom_info.append((key, atom.variables, weight_functions[key]))

    def recurse(depth: int) -> float:
        if depth == len(order_):
            product = 1.0
            for _key, atom_vars, func in atom_info:
                values = tuple(traversal.binding[v] for v in atom_vars)
                product *= func(values)
            return product
        variable = order_[depth]
        if counter is not None:
            counter.charge(search_nodes=1)
        total = 0.0
        for value in traversal.candidates(variable):
            traversal.binding[variable] = value
            total += recurse(depth + 1)
            del traversal.binding[variable]
        return total

    return recurse(0)
