"""Experiment E9 — Proposition 5.2 / Corollary 5.3: acyclifying constraints.

Two parts:

* the paper's query (63): Q(A,B,C,D) <- R(A), S(A,B), T(B,C), W(C,A,D) with
  constraints N_A (R), N_B|A (S), N_C|B (T), N_AD|C (W).  The dependency
  graph has the cycle A -> B -> C -> A, and *removing* any constraint makes
  some variable unbound (infinite bound), exactly as the paper argues;
  the Proposition 5.2 weakening instead keeps the bound finite.
* a simple-FD cycle (Corollary 5.3): cardinalities plus FDs A -> B, B -> C,
  C -> A.  Dropping FDs to break the cycle leaves the worst-case bound
  unchanged, and the resulting acyclic DC feeds Algorithm 3.
"""

from __future__ import annotations

import math

from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.acyclify import (
    acyclify,
    acyclify_simple_fds,
    all_variables_bound,
)
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.experiments.runner import ExperimentTable


def query63_constraints(n_a: int = 100, n_b_given_a: int = 4, n_c_given_b: int = 4,
                        n_ad_given_c: int = 4) -> DegreeConstraintSet:
    """The degree constraints of the paper's query (63)."""
    return DegreeConstraintSet(
        ("A", "B", "C", "D"),
        [
            DegreeConstraint.cardinality(("A",), n_a, guard="R"),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=n_b_given_a, guard="S"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=n_c_given_b, guard="T"),
            DegreeConstraint(x=frozenset("C"), y=frozenset({"A", "C", "D"}),
                             bound=n_ad_given_c, guard="W"),
        ],
    )


def simple_fd_cycle_constraints(n: int = 1024) -> DegreeConstraintSet:
    """Cardinality constraints plus the FD cycle A -> B -> C -> A."""
    return DegreeConstraintSet(
        ("A", "B", "C"),
        [
            DegreeConstraint.cardinality(("A", "B"), n, guard="R"),
            DegreeConstraint.cardinality(("B", "C"), n, guard="S"),
            DegreeConstraint.cardinality(("A", "C"), n, guard="T"),
            DegreeConstraint.functional_dependency(("A",), ("B",), guard="R"),
            DegreeConstraint.functional_dependency(("B",), ("C",), guard="S"),
            DegreeConstraint.functional_dependency(("C",), ("A",), guard="T"),
        ],
    )


def run_acyclify() -> ExperimentTable:
    """Measure the effect of acyclification on bounds and feasibility."""
    table = ExperimentTable(
        experiment_id="E9",
        title="Acyclification of cyclic degree constraints (Prop. 5.2, Cor. 5.3)",
        columns=(
            "case", "cyclic before", "bounded before", "log2 bound before",
            "acyclic after", "bounded after", "log2 bound after",
            "naive removal stays bounded", "bound preserved",
        ),
    )

    # Query (63): general degree constraints with a cycle.
    dc63 = query63_constraints()
    before = polymatroid_bound(dc63)
    weakened = acyclify(dc63)
    after = polymatroid_bound(weakened)
    naive_ok = False
    for constraint in dc63:
        reduced = dc63.without(constraint)
        if all_variables_bound(reduced):
            naive_ok = True
            break
    table.add_row(**{
        "case": "query (63) general DC",
        "cyclic before": not dc63.is_acyclic(),
        "bounded before": all_variables_bound(dc63),
        "log2 bound before": before.log2_bound,
        "acyclic after": weakened.is_acyclic(),
        "bounded after": all_variables_bound(weakened),
        "log2 bound after": after.log2_bound,
        "naive removal stays bounded": naive_ok,
        "bound preserved": math.isclose(before.log2_bound, after.log2_bound,
                                        rel_tol=1e-6, abs_tol=1e-6),
    })

    # Simple-FD cycle: Corollary 5.3 preserves the bound exactly.
    dc_fd = simple_fd_cycle_constraints()
    before_fd = polymatroid_bound(dc_fd)
    reduced_fd = acyclify_simple_fds(dc_fd)
    after_fd = polymatroid_bound(reduced_fd)
    table.add_row(**{
        "case": "simple FD cycle A->B->C->A",
        "cyclic before": not dc_fd.is_acyclic(),
        "bounded before": all_variables_bound(dc_fd),
        "log2 bound before": before_fd.log2_bound,
        "acyclic after": reduced_fd.is_acyclic(),
        "bounded after": all_variables_bound(reduced_fd),
        "log2 bound after": after_fd.log2_bound,
        "naive removal stays bounded": True,
        "bound preserved": math.isclose(before_fd.log2_bound, after_fd.log2_bound,
                                        rel_tol=1e-6, abs_tol=1e-6),
    })
    table.add_note(
        "query (63): removing *any* constraint leaves a variable unbound (the "
        "paper's point), so the 'naive removal stays bounded' column is no; the "
        "Prop. 5.2 weakening keeps the bound finite but may increase it."
    )
    table.add_note(
        "simple FD cycle: Corollary 5.3 guarantees the acyclic subset has the "
        "same worst-case bound ('bound preserved' must be yes)."
    )
    return table
