"""Experiment E11 — the AGM bound is tight (Atserias–Grohe–Marx).

For the triangle, the 4-cycle, the 4-clique and Loomis–Whitney queries, build
the tight (product-structure) instances and report the ratio between the
actual output size and the AGM bound.  The ratio should approach 1 (it is
slightly below 1 only because relation sizes are rounded to perfect powers).
"""

from __future__ import annotations

from repro.bounds.agm import agm_bound, rho_star
from repro.datagen.loomis_whitney import loomis_whitney_agm_tight_instance
from repro.datagen.worstcase import (
    clique_agm_tight_instance,
    cycle_agm_tight_instance,
    triangle_agm_tight_instance,
)
from repro.experiments.runner import ExperimentTable
from repro.joins.generic_join import generic_join


def run_tightness(n: int = 400) -> ExperimentTable:
    """Measure actual output vs AGM bound on tight constructions."""
    cases = [
        ("triangle", *triangle_agm_tight_instance(n)),
        ("4-cycle", *cycle_agm_tight_instance(4, n)),
        ("4-clique", *clique_agm_tight_instance(4, max(64, n // 4))),
        ("LW(3)", *loomis_whitney_agm_tight_instance(3, n)),
        ("LW(4)", *loomis_whitney_agm_tight_instance(4, max(64, n // 4))),
    ]
    table = ExperimentTable(
        experiment_id="E11",
        title="AGM bound tightness on product-structure instances",
        columns=("query", "rho*", "max relation size", "agm bound", "actual output",
                 "actual / bound"),
    )
    for name, query, database in cases:
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        ratio = actual / bound.bound if bound.bound else 0.0
        table.add_row(**{
            "query": name,
            "rho*": rho_star(query),
            "max relation size": database.max_relation_size(),
            "agm bound": bound.bound,
            "actual output": actual,
            "actual / bound": ratio,
        })
    table.add_note(
        "ratios below 1 come only from rounding domain sizes to integers; the "
        "construction achieves the bound exactly when sizes are perfect powers."
    )
    return table
