"""Experiment E5 — Loomis–Whitney queries: WCOJ vs join-(project) plans.

Section 1.2: for the LW(k) queries, Ngo et al. showed the NPRR/Generic-Join
runtime O~(N^{k/(k-1)}) while *any* join-project plan is worse by a factor of
Omega(N^{1-1/k}).  We measure, on skewed LW(k) instances, the work of
Generic-Join against the best left-deep pairwise plan (which subsumes the
join-only plans; the plan enumerator also supports projections), and report
the measured ratio alongside the paper's predicted separation exponent.
"""

from __future__ import annotations

from repro.bounds.agm import agm_bound
from repro.datagen.loomis_whitney import (
    loomis_whitney_agm_tight_instance,
    loomis_whitney_bound_exponent,
    loomis_whitney_plan_gap_exponent,
    loomis_whitney_skew_instance,
)
from repro.experiments.runner import ExperimentTable, fit_exponent
from repro.joins.binary_plans import best_left_deep_execution
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter


def run_loomis_whitney(ks: tuple[int, ...] = (3, 4),
                       sizes: tuple[int, ...] = (100, 200, 400),
                       family: str = "skew") -> ExperimentTable:
    """Measure LW(k) for the requested k values and size sweep."""
    make = (loomis_whitney_skew_instance if family == "skew"
            else loomis_whitney_agm_tight_instance)
    table = ExperimentTable(
        experiment_id="E5",
        title=f"Loomis-Whitney queries on {family} instances",
        columns=(
            "k", "N", "output", "agm bound", "wcoj ops",
            "best pairwise ops", "best pairwise max intermediate",
            "pairwise/wcoj ratio", "paper gap exponent",
        ),
    )
    for k in ks:
        for n in sizes:
            query, database = make(k, n)
            bound = agm_bound(query, database)
            counter = OperationCounter()
            output = generic_join(query, database, counter=counter)
            pairwise = best_left_deep_execution(query, database)
            wcoj_ops = counter.total()
            ratio = pairwise.counter.total() / max(1, wcoj_ops)
            table.add_row(**{
                "k": k,
                "N": database.max_relation_size(),
                "output": len(output),
                "agm bound": bound.bound,
                "wcoj ops": wcoj_ops,
                "best pairwise ops": pairwise.counter.total(),
                "best pairwise max intermediate": pairwise.max_intermediate,
                "pairwise/wcoj ratio": ratio,
                "paper gap exponent": loomis_whitney_plan_gap_exponent(k),
            })
    for k in ks:
        rows = [r for r in table.rows if r["k"] == k]
        ns = [float(r["N"]) for r in rows]
        ratio_exp = fit_exponent(ns, [float(r["pairwise/wcoj ratio"]) for r in rows])
        table.add_note(
            f"LW({k}): measured pairwise/wcoj ratio grows ~ N^{ratio_exp:.2f}; "
            f"paper predicts a separation factor Omega(N^{loomis_whitney_plan_gap_exponent(k):.2f}) "
            f"(rho* = {loomis_whitney_bound_exponent(k):.3f})"
        )
    return table
