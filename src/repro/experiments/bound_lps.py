"""Experiment E8 — Proposition 4.4: modular LP = polymatroid LP for acyclic DC.

For random acyclic degree-constraint sets over n = 3..6 variables, compare
the optimum and the LP sizes of

* the modular LP (54): n variables, |DC| constraints, and
* the polymatroid LP (68): 2^n - 1 variables, |DC| + #elemental constraints,

and verify the optima agree (Proposition 4.4).  A deliberately *cyclic* set
is included to show that the equality is specific to acyclicity (there the
modular LP can fall strictly below the polymatroid bound, i.e. it is no
longer a valid worst-case bound).
"""

from __future__ import annotations

import math
import random

from repro.bounds.modular import modular_bound
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.experiments.runner import ExperimentTable


def random_acyclic_dc(n: int, num_constraints: int, seed: int = 0,
                      max_log_bound: int = 10) -> DegreeConstraintSet:
    """A random *acyclic* degree-constraint set over n variables.

    Constraints are generated along a fixed variable order (X always precedes
    Y - X), which makes the dependency graph a DAG by construction; a
    cardinality constraint covering the first variable(s) seeds boundedness,
    and every variable is covered by at least one constraint's free set.
    """
    rng = random.Random(seed)
    variables = tuple(f"X{i}" for i in range(1, n + 1))
    constraints = [
        DegreeConstraint.cardinality(variables[:max(1, n // 2)],
                                     2 ** rng.randint(2, max_log_bound),
                                     guard="G0"),
    ]
    for index in range(num_constraints):
        pivot = rng.randint(1, n - 1)
        x_pool = variables[:pivot]
        y_pool = variables[pivot:]
        x = frozenset(rng.sample(x_pool, k=rng.randint(0, min(2, len(x_pool)))))
        free = frozenset(rng.sample(y_pool, k=rng.randint(1, min(2, len(y_pool)))))
        constraints.append(
            DegreeConstraint(x=x, y=x | free, bound=2 ** rng.randint(1, max_log_bound),
                             guard=f"G{index + 1}")
        )
    # Ensure every variable is covered by some free set.
    covered = set()
    for c in constraints:
        covered |= c.free_variables
    for i, v in enumerate(variables):
        if v not in covered:
            constraints.append(
                DegreeConstraint.cardinality((v,), 2 ** rng.randint(1, max_log_bound),
                                             guard=f"Gfix{i}")
            )
    return DegreeConstraintSet(variables, constraints)


def cyclic_example_dc() -> DegreeConstraintSet:
    """A small cyclic DC (A -> B, B -> A degree bounds plus a cardinality)."""
    return DegreeConstraintSet(
        ("A", "B"),
        [
            DegreeConstraint.cardinality(("A",), 16, guard="GA"),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=4, guard="G1"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("AB"), bound=2, guard="G2"),
        ],
    )


def run_bound_lps(ns: tuple[int, ...] = (3, 4, 5, 6), constraints_per_n: int = 4,
                  seed: int = 0) -> ExperimentTable:
    """Compare the modular and polymatroid LPs on acyclic (and one cyclic) DC."""
    table = ExperimentTable(
        experiment_id="E8",
        title="Proposition 4.4: modular LP vs polymatroid LP",
        columns=(
            "n", "acyclic", "modular log2", "polymatroid log2", "equal",
            "modular LP vars", "modular LP rows", "poly LP vars", "poly LP rows",
        ),
    )
    for n in ns:
        dc = random_acyclic_dc(n, constraints_per_n, seed=seed + n)
        modular = modular_bound(dc)
        poly = polymatroid_bound(dc)
        table.add_row(**{
            "n": n,
            "acyclic": dc.is_acyclic(),
            "modular log2": modular.log2_bound,
            "polymatroid log2": poly.log2_bound,
            "equal": math.isclose(modular.log2_bound, poly.log2_bound,
                                  rel_tol=1e-6, abs_tol=1e-6),
            "modular LP vars": modular.num_lp_variables,
            "modular LP rows": modular.num_lp_constraints,
            "poly LP vars": poly.num_lp_variables,
            "poly LP rows": poly.num_lp_constraints,
        })
    cyclic = cyclic_example_dc()
    modular = modular_bound(cyclic)
    poly = polymatroid_bound(cyclic)
    table.add_row(**{
        "n": len(cyclic.variables),
        "acyclic": cyclic.is_acyclic(),
        "modular log2": modular.log2_bound,
        "polymatroid log2": poly.log2_bound,
        "equal": math.isclose(modular.log2_bound, poly.log2_bound,
                              rel_tol=1e-6, abs_tol=1e-6),
        "modular LP vars": modular.num_lp_variables,
        "modular LP rows": modular.num_lp_constraints,
        "poly LP vars": poly.num_lp_variables,
        "poly LP rows": poly.num_lp_constraints,
    })
    table.add_note(
        "acyclic rows must have equal = yes (Proposition 4.4); the final cyclic "
        "row shows the modular LP is no longer the right object there."
    )
    table.add_note(
        "LP sizes illustrate the exponential-vs-polynomial gap discussed in "
        "Section 4.2 (2^n - 1 subset variables vs n vertex variables)."
    )
    return table
