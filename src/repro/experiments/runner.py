"""Experiment result records and plain-text table rendering.

Every experiment returns an :class:`ExperimentTable`: a titled list of rows
(dictionaries) with a fixed column order.  The benchmark harness prints these
tables (so the "series the paper reports" are visible in benchmark output)
and EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass
class ExperimentTable:
    """A titled table of experiment results.

    Attributes
    ----------
    experiment_id:
        The identifier from DESIGN.md (e.g. "E4").
    title:
        Human-readable description, typically naming the paper artifact.
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing keys render as empty cells.
    notes:
        Free-form remarks (e.g. the paper's claim being checked).
    """

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments."""
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-form note to the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(table: ExperimentTable) -> str:
    """Render an :class:`ExperimentTable` as aligned plain text."""
    header = list(table.columns)
    body = [[_format_cell(row.get(col)) for col in header] for row in table.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"[{table.experiment_id}] {table.title}"]
    lines.append("  " + " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  " + "-+-".join("-" * w for w in widths))
    for row in body:
        lines.append("  " + " | ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def format_tables(tables: Iterable[ExperimentTable]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(format_table(t) for t in tables)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if the list is empty)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for v in positives:
        product *= v
    return product ** (1.0 / len(positives))


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x): the empirical growth exponent.

    Used to check claims like "operation count grows as N^{1.5}" from a
    scaling sweep.  Pairs with non-positive entries are skipped.
    """
    import math

    points = [(math.log(x), math.log(y)) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(points) < 2:
        return 0.0
    n = len(points)
    mean_x = sum(p[0] for p in points) / n
    mean_y = sum(p[1] for p in points) / n
    num = sum((p[0] - mean_x) * (p[1] - mean_y) for p in points)
    den = sum((p[0] - mean_x) ** 2 for p in points)
    return num / den if den else 0.0
