"""Experiment E2 — reproduce Table 2: the PANDA proof sequence for Example 1.

The table's four columns (step name, proof step, relational operation,
action) are generated from the proof-sequence and interpreter objects rather
than copied from the paper, and a fifth column reports what the interpreter
actually did on a concrete database (relation sizes included), demonstrating
the proof-to-algorithm translation end to end.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentTable
from repro.panda.example1 import run_example1, table2_rows


def run_table2(scale: int = 150, seed: int = 0) -> ExperimentTable:
    """Regenerate Table 2 and execute the corresponding PANDA program."""
    run = run_example1(scale=scale, seed=seed)
    table = ExperimentTable(
        experiment_id="E2",
        title="Table 2: proof sequence -> algorithmic steps (Example 1)",
        columns=("name", "proof_step", "operation", "action", "measured"),
    )
    for row in table2_rows(run):
        table.add_row(**row)
    table.add_note(
        f"observed statistics: {run.statistics}; theta = {run.theta:.4g}; "
        f"runtime bound (75) = {run.runtime_bound:.4g}"
    )
    table.add_note(
        f"max intermediate = {run.result.max_intermediate}, output = "
        f"{len(run.result.output)}, matches Generic-Join = {run.matches_generic_join}"
    )
    return table
