"""Experiment E1 — reproduce Table 1: entropic vs polymatroid bound taxonomy.

The paper's Table 1 classifies the two bounds by constraint class:

    cardinality only          : both collapse to the AGM bound, tight;
    cardinality + FDs         : entropic bound tight, polymatroid bound not;
    general degree constraints: entropic bound tight, polymatroid bound not.

Exact entropic bounds are not computable for n >= 4 (Open Problem 1), so this
experiment reports, per row, the *computable* evidence: the polymatroid
bound, the Zhang–Yeung-strengthened bound (a certified upper bound on the
entropic bound that is strictly smaller whenever non-Shannon information
inequalities matter), and the largest output actually achieved by constructed
instances satisfying the constraints (a certified lower bound on the entropic
bound).  A row is flagged "tight (observed)" when the achieved output matches
the polymatroid bound.
"""

from __future__ import annotations

import math

from repro.bounds.agm import agm_bound
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet, cardinality_constraints
from repro.datagen.worstcase import triangle_agm_tight_instance
from repro.experiments.runner import ExperimentTable
from repro.joins.generic_join import generic_join
from repro.panda.example1 import example1_constraints, example1_database, example1_query
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation


def _cardinality_row(n: int) -> dict:
    """Row 1: cardinality constraints only (the AGM bound), on the triangle."""
    query, database = triangle_agm_tight_instance(n)
    dc = cardinality_constraints(query, database)
    agm = agm_bound(query, database)
    poly = polymatroid_bound(dc)
    actual = len(generic_join(query, database))
    return {
        "constraint class": "cardinality only (triangle)",
        "polymatroid bound": poly.bound,
        "entropic estimate": agm.bound,
        "achieved output": actual,
        "polymatroid tight (observed)": math.isclose(actual, poly.bound, rel_tol=0.05),
        "paper says entropic tight": True,
        "paper says polymatroid tight": True,
    }


def _fd_instance(m: int) -> tuple[ConjunctiveQuery, Database, DegreeConstraintSet]:
    """A 3-variable query with a functional dependency.

    Q(A,B,C) <- R(A,B), S(B,C), T(A,C) with the FD B -> C guarded by S.
    The FD caps every B at one C value, so the worst case drops from
    N^{3/2} to N (achieved when S is a bijection-like relation).
    """
    query, database = triangle_agm_tight_instance(m * m)
    # Replace S with an FD-respecting relation: each B maps to exactly one C.
    s_tuples = [(b, b) for b in range(m)]
    database.replace(Relation("S", ("B", "C"), s_tuples))
    dc = cardinality_constraints(query, database)
    dc.add(DegreeConstraint.functional_dependency(("B",), ("C",), guard="S"))
    return query, database, dc


def _fd_row(m: int) -> dict:
    """Row 2: cardinality + FD constraints."""
    query, database, dc = _fd_instance(m)
    poly = polymatroid_bound(dc)
    actual = len(generic_join(query, database))
    return {
        "constraint class": "cardinality + FD (triangle, B->C)",
        "polymatroid bound": poly.bound,
        "entropic estimate": poly.bound,  # n = 3: Shannon inequalities are complete
        "achieved output": actual,
        "polymatroid tight (observed)": math.isclose(actual, poly.bound, rel_tol=0.25),
        "paper says entropic tight": True,
        "paper says polymatroid tight": False,
    }


def _general_dc_row(scale: int) -> dict:
    """Row 3: general degree constraints (the Example 1 query)."""
    database = example1_database(scale=scale, seed=3)
    query = example1_query()
    from repro.panda.example1 import observed_statistics

    stats = observed_statistics(database)
    dc = example1_constraints(
        stats["N_AB"], stats["N_BC"], stats["N_CD"],
        max(1, stats["N_ACD|AC"]), max(1, stats["N_ABD|BD"]),
    )
    poly = polymatroid_bound(dc, use_zhang_yeung=False)
    poly_zy = polymatroid_bound(dc, use_zhang_yeung=True)
    actual = len(generic_join(query, database))
    return {
        "constraint class": "general degree constraints (Example 1)",
        "polymatroid bound": poly.bound,
        "entropic estimate": poly_zy.bound,
        "achieved output": actual,
        "polymatroid tight (observed)": math.isclose(actual, poly.bound, rel_tol=0.05),
        "paper says entropic tight": True,
        "paper says polymatroid tight": False,
    }


def run_table1(triangle_n: int = 400, fd_m: int = 20, example1_scale: int = 150
               ) -> ExperimentTable:
    """Reproduce Table 1 as a computable taxonomy of the two bounds."""
    table = ExperimentTable(
        experiment_id="E1",
        title="Table 1: entropic vs polymatroid bounds by constraint class",
        columns=(
            "constraint class",
            "polymatroid bound",
            "entropic estimate",
            "achieved output",
            "polymatroid tight (observed)",
            "paper says entropic tight",
            "paper says polymatroid tight",
        ),
    )
    table.add_row(**_cardinality_row(triangle_n))
    table.add_row(**_fd_row(fd_m))
    table.add_row(**_general_dc_row(example1_scale))
    table.add_note(
        "entropic estimate = exact entropic bound for n<=3 rows, Zhang-Yeung-"
        "strengthened polymatroid bound otherwise (the entropic bound itself is "
        "not computable; Open Problem 1)."
    )
    table.add_note(
        "achieved output is a lower bound witness from constructed instances; "
        "random instances need not reach the worst case on non-tight rows."
    )
    return table
