"""Experiment harness: one module per table/figure/claim of the paper.

Each experiment module exposes a ``run_*`` function returning an
:class:`repro.experiments.runner.ExperimentTable`, which the benchmarks and
the EXPERIMENTS.md report are generated from.
"""

from repro.experiments.runner import ExperimentTable, format_table
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.triangle_bounds import run_triangle_bounds
from repro.experiments.triangle_scaling import run_triangle_scaling
from repro.experiments.loomis_whitney import run_loomis_whitney
from repro.experiments.acyclic_dc import run_acyclic_dc
from repro.experiments.example1 import run_example1_experiment
from repro.experiments.bound_lps import run_bound_lps
from repro.experiments.acyclify_exp import run_acyclify
from repro.experiments.inequalities import run_inequalities
from repro.experiments.tightness import run_tightness

__all__ = [
    "ExperimentTable",
    "format_table",
    "run_table1",
    "run_table2",
    "run_triangle_bounds",
    "run_triangle_scaling",
    "run_loomis_whitney",
    "run_acyclic_dc",
    "run_example1_experiment",
    "run_bound_lps",
    "run_acyclify",
    "run_inequalities",
    "run_tightness",
]
