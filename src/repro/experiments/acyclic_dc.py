"""Experiment E6 — Algorithm 3 (backtracking search) under acyclic degree
constraints vs the Theorem 5.1 bound.

Workload: an OLAP-style chain query

    Q(A, B, C, D) <- R(A, B), S(B, C), T(C, D)

with a cardinality constraint on R and per-step degree bounds
deg_S(C | B) <= f and deg_T(D | C) <= f (the key/foreign-key lookups of a
star/snowflake schema).  The constraint dependency graph (B -> C, C -> D) is
acyclic, so Proposition 4.4 applies: the worst-case output is exactly
|R| * f * f, and Theorem 5.1 says Algorithm 3's search tree stays within the
product of N^{delta} given by the dual LP (57).  The experiment reports the
measured search-tree size and output against that bound.
"""

from __future__ import annotations

from repro.bounds.modular import modular_bound, modular_bound_dual
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.datagen.relations import relation_with_degree_bound
from repro.experiments.runner import ExperimentTable
from repro.joins.backtracking import backtracking_join, backtracking_search
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.relational.database import Database


def chain_query() -> ConjunctiveQuery:
    """The chain query Q(A,B,C,D) <- R(A,B), S(B,C), T(C,D)."""
    return ConjunctiveQuery(
        [Atom("R", ("A", "B")), Atom("S", ("B", "C")), Atom("T", ("C", "D"))],
        name="Q_chain",
    )


def chain_instance(num_r: int, fanout: int, domain_size: int | None = None,
                   seed: int = 0) -> tuple[ConjunctiveQuery, Database, DegreeConstraintSet]:
    """Build a chain instance with |R| = num_r and per-step fanout bounds."""
    if domain_size is None:
        domain_size = max(4, num_r)
    r = relation_with_degree_bound("R", ("A", "B"), key=("A",), max_degree=max(1, fanout // 2 + 1),
                                   num_keys=max(1, num_r // max(1, fanout // 2 + 1)),
                                   domain_size=domain_size, seed=seed)
    s = relation_with_degree_bound("S", ("B", "C"), key=("B",), max_degree=fanout,
                                   num_keys=domain_size, domain_size=domain_size,
                                   seed=seed + 1)
    t = relation_with_degree_bound("T", ("C", "D"), key=("C",), max_degree=fanout,
                                   num_keys=domain_size, domain_size=domain_size,
                                   seed=seed + 2)
    query = chain_query()
    database = Database([r, s, t])
    dc = DegreeConstraintSet(
        ("A", "B", "C", "D"),
        [
            DegreeConstraint.cardinality(("A", "B"), len(r), guard="R"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=fanout, guard="S"),
            DegreeConstraint(x=frozenset("C"), y=frozenset("CD"), bound=fanout, guard="T"),
        ],
    )
    return query, database, dc


def run_acyclic_dc(sizes: tuple[int, ...] = (50, 100, 200), fanout: int = 3,
                   seed: int = 0) -> ExperimentTable:
    """Measure Algorithm 3 against the Theorem 5.1 bound on chain instances."""
    table = ExperimentTable(
        experiment_id="E6",
        title="Algorithm 3 (acyclic degree constraints) vs the Theorem 5.1 bound",
        columns=(
            "|R|", "fanout", "worst-case bound", "dual bound",
            "output", "search tuples", "search nodes", "intersection steps",
            "within bound",
        ),
    )
    for num_r in sizes:
        query, database, dc = chain_instance(num_r, fanout, seed=seed)
        primal = modular_bound(dc)
        dual = modular_bound_dual(dc)
        counter = OperationCounter()
        search_result = backtracking_search(query, database, dc, counter=counter)
        output = backtracking_join(query, database, dc)
        expected = generic_join(query, database)
        assert output == expected, "Algorithm 3 disagrees with Generic-Join"
        bound = primal.bound
        # The Theorem 5.1 statement bounds the work (up to the preprocessing
        # and log terms) by |D| + the worst-case output bound.
        budget = database.total_tuples() + bound
        table.add_row(**{
            "|R|": len(database["R"]),
            "fanout": fanout,
            "worst-case bound": bound,
            "dual bound": dual.bound,
            "output": len(output),
            "search tuples": len(search_result),
            "search nodes": counter.search_nodes,
            "intersection steps": counter.intersection_steps,
            "within bound": counter.intersection_steps <= budget,
        })
    table.add_note(
        "worst-case bound = modular LP (54); dual bound = LP (57); Proposition "
        "4.4 says they agree for acyclic constraints."
    )
    table.add_note(
        "within bound checks intersection steps <= |D| + bound (Theorem 5.1 "
        "without the n*|DC|*log|D| factor, which only helps)."
    )
    return table
