"""Experiment E7 — PANDA on Example 1: intermediates vs the bound (75).

For increasing instance scales, run the Table 2 PANDA program with the
paper's threshold theta and record every intermediate size, the output size,
and the runtime bound sqrt(N_BC N_CD N_ABD|BD N_AB N_ACD|AC).  The paper's
claim is that the two branch intermediates are each bounded by (76), hence by
(75); the "within bound" column checks it.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentTable
from repro.panda.example1 import run_example1


def run_example1_experiment(scales: tuple[int, ...] = (100, 200, 400),
                            seed: int = 0) -> ExperimentTable:
    """Sweep Example 1 instance scales and compare intermediates to bound (75)."""
    table = ExperimentTable(
        experiment_id="E7",
        title="PANDA on Example 1: intermediate sizes vs the runtime bound (75)",
        columns=(
            "scale", "N_AB", "N_BC", "N_CD", "N_ACD|AC", "N_ABD|BD",
            "theta", "bound (75)", "max intermediate", "output",
            "matches generic join", "within bound",
        ),
    )
    for scale in scales:
        run = run_example1(scale=scale, seed=seed)
        stats = run.statistics
        table.add_row(**{
            "scale": scale,
            "N_AB": stats["N_AB"],
            "N_BC": stats["N_BC"],
            "N_CD": stats["N_CD"],
            "N_ACD|AC": stats["N_ACD|AC"],
            "N_ABD|BD": stats["N_ABD|BD"],
            "theta": run.theta,
            "bound (75)": run.runtime_bound,
            "max intermediate": run.result.max_intermediate,
            "output": len(run.result.output),
            "matches generic join": run.matches_generic_join,
            "within bound": run.result.max_intermediate <= run.runtime_bound + 1e-9,
        })
    table.add_note(
        "bound (75) = sqrt(N_BC * N_CD * N_ABD|BD * N_AB * N_ACD|AC); the paper "
        "proves each branch intermediate is at most this (eq. 76)."
    )
    return table
