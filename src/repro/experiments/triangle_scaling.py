"""Experiment E4 — triangle query: WCOJ engines vs the best pairwise plan.

Two instance families, sweeping the per-relation size N:

* AGM-tight ("lens") instances: output = Theta(N^{3/2}); every algorithm must
  do at least that much work, and the WCOJ engines should do little more.
* skew ("star") instances: output = Theta(N), but every pairwise plan
  materializes a Theta(N^2) intermediate; WCOJ engines stay near-linear.

The reported series are operation counts (and intermediate sizes); the
benchmark harness adds wall-clock on top via pytest-benchmark.  The empirical
growth exponents (log-log slope) are reported so the "shape" claims
(3/2 vs 2 vs 1) can be checked at a glance.
"""

from __future__ import annotations

from repro.bounds.agm import agm_bound
from repro.datagen.worstcase import triangle_agm_tight_instance, triangle_skew_instance
from repro.experiments.runner import ExperimentTable, fit_exponent
from repro.joins.binary_plans import best_left_deep_execution
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.joins.leapfrog import leapfrog_triejoin
from repro.joins.triangle import triangle_algorithm1, triangle_algorithm2


def _measure_instance(query, database) -> dict:
    r, s, t = database["R"], database["S"], database["T"]
    n = max(len(r), len(s), len(t))
    bound = agm_bound(query, database)

    counters = {name: OperationCounter() for name in
                ("algorithm1", "algorithm2", "generic_join", "leapfrog")}
    out1 = triangle_algorithm1(r, s, t, counter=counters["algorithm1"])
    triangle_algorithm2(r, s, t, counter=counters["algorithm2"])
    generic_join(query, database, counter=counters["generic_join"])
    leapfrog_triejoin(query, database, counter=counters["leapfrog"])
    pairwise = best_left_deep_execution(query, database)

    return {
        "N": n,
        "output": len(out1),
        "agm bound": bound.bound,
        "algorithm1 ops": counters["algorithm1"].total(),
        "algorithm2 ops": counters["algorithm2"].total(),
        "generic join ops": counters["generic_join"].total(),
        "leapfrog ops": counters["leapfrog"].total(),
        "best pairwise ops": pairwise.counter.total(),
        "best pairwise max intermediate": pairwise.max_intermediate,
    }


def run_triangle_scaling(sizes: tuple[int, ...] = (100, 200, 400, 800),
                         family: str = "skew") -> ExperimentTable:
    """Sweep N for one instance family ("skew" or "agm_tight")."""
    make = triangle_skew_instance if family == "skew" else triangle_agm_tight_instance
    table = ExperimentTable(
        experiment_id="E4",
        title=f"Triangle scaling on {family} instances: WCOJ vs best pairwise plan",
        columns=(
            "N", "output", "agm bound",
            "algorithm1 ops", "algorithm2 ops", "generic join ops", "leapfrog ops",
            "best pairwise ops", "best pairwise max intermediate",
        ),
    )
    for n in sizes:
        query, database = make(n)
        table.add_row(**_measure_instance(query, database))

    ns = [float(v) for v in table.column("N")]
    wcoj_exp = fit_exponent(ns, [float(v) for v in table.column("generic join ops")])
    pairwise_exp = fit_exponent(
        ns, [float(v) for v in table.column("best pairwise max intermediate")]
    )
    output_exp = fit_exponent(ns, [float(v) for v in table.column("output")])
    table.add_note(
        f"empirical exponents: output ~ N^{output_exp:.2f}, generic join work ~ "
        f"N^{wcoj_exp:.2f}, best pairwise max intermediate ~ N^{pairwise_exp:.2f}"
    )
    if family == "skew":
        table.add_note(
            "paper claim: output Theta(N) while every pairwise plan is Omega(N^2); "
            "WCOJ work should track the output, the pairwise intermediate should "
            "grow quadratically."
        )
    else:
        table.add_note(
            "paper claim: output and WCOJ work are Theta(N^{3/2}) (the AGM bound)."
        )
    return table
