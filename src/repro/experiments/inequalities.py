"""Experiment E10 — the information-theoretic machinery itself.

Three claims from Sections 3.2 and 4 are re-derived numerically:

* Shearer's inequality holds over all polymatroids exactly when the weights
  form a fractional edge cover (Corollary 5.5) — checked with the LP prover
  on a covering and a non-covering weight vector for several hypergraphs;
* Friedgut's inequality (Theorem 4.1) holds on concrete random instances
  with random weight functions;
* the Zhang–Yeung inequality is valid on entropic functions (sampled from
  random 4-variable distributions) but violated by some polymatroid —
  i.e. Gamma*_4 is a strict subset of Gamma_4.
"""

from __future__ import annotations

import random

from repro.covers.edge_cover import fractional_edge_cover
from repro.datagen.loomis_whitney import loomis_whitney_random_instance
from repro.datagen.worstcase import triangle_agm_tight_instance
from repro.experiments.runner import ExperimentTable
from repro.infotheory.nonshannon import (
    zhang_yeung_expression,
    zhang_yeung_is_non_shannon,
    zhang_yeung_violating_polymatroid,
)
from repro.infotheory.entropy import entropy_function_of_distribution
from repro.infotheory.shearer import shearer_is_valid, verify_friedgut_inequality
from repro.query.atoms import cycle_query, triangle_query


def _random_distribution(rng: random.Random, arity: int = 4, support: int = 6
                         ) -> dict[tuple, float]:
    outcomes = [tuple(rng.randrange(3) for _ in range(arity)) for _ in range(support)]
    weights = [rng.random() + 0.05 for _ in outcomes]
    total = sum(weights)
    distribution: dict[tuple, float] = {}
    for outcome, weight in zip(outcomes, weights):
        distribution[outcome] = distribution.get(outcome, 0.0) + weight / total
    return distribution


def run_inequalities(num_random_distributions: int = 10, seed: int = 0
                     ) -> ExperimentTable:
    """Verify Shearer, Friedgut and Zhang–Yeung claims numerically."""
    rng = random.Random(seed)
    table = ExperimentTable(
        experiment_id="E10",
        title="Information-theoretic inequalities: Shearer, Friedgut, Zhang-Yeung",
        columns=("check", "instances", "holds"),
    )

    # Shearer <=> fractional edge cover, on the triangle and the 4-cycle.
    shearer_ok = True
    for query in (triangle_query(), cycle_query(4)):
        hypergraph = query.hypergraph()
        cover = fractional_edge_cover(hypergraph).weights
        if not shearer_is_valid(hypergraph, cover):
            shearer_ok = False
        # Shrink one weight below coverage: the inequality must now fail.
        broken = dict(cover)
        key = max(broken, key=broken.get)
        broken[key] = max(0.0, broken[key] - 0.6)
        if not hypergraph.is_cover(broken) and shearer_is_valid(hypergraph, broken):
            shearer_ok = False
    table.add_row(check="Shearer valid iff weights form a fractional edge cover",
                  instances=2, holds=shearer_ok)

    # Friedgut's inequality on random instances with random weights.
    friedgut_ok = True
    query, database = triangle_agm_tight_instance(64)
    cover = fractional_edge_cover(query.hypergraph()).weights
    weight_functions = {
        key: (lambda t, _s=seed + i: (hash((t, _s)) % 7) + 1.0)
        for i, key in enumerate(cover)
    }
    if not verify_friedgut_inequality(query, database, cover, weight_functions):
        friedgut_ok = False
    lw_query, lw_database = loomis_whitney_random_instance(3, 60, seed=seed)
    lw_cover = fractional_edge_cover(lw_query.hypergraph()).weights
    if not verify_friedgut_inequality(lw_query, lw_database, lw_cover):
        friedgut_ok = False
    table.add_row(check="Friedgut inequality on concrete instances",
                  instances=2, holds=friedgut_ok)

    # Zhang-Yeung: valid on entropic samples, refutable over polymatroids.
    zy_entropic_ok = True
    expr = zhang_yeung_expression(("A", "B", "C", "D"))
    for _ in range(num_random_distributions):
        distribution = _random_distribution(rng)
        h = entropy_function_of_distribution(("A", "B", "C", "D"), distribution)
        if expr.evaluate(h) < -1e-9:
            zy_entropic_ok = False
    table.add_row(check="Zhang-Yeung holds on sampled entropic functions",
                  instances=num_random_distributions, holds=zy_entropic_ok)

    non_shannon = zhang_yeung_is_non_shannon()
    witness = zhang_yeung_violating_polymatroid()
    witness_is_polymatroid = witness is not None and witness.is_polymatroid()
    table.add_row(check="Zhang-Yeung violated by some polymatroid (Gamma*_4 != Gamma_4)",
                  instances=1, holds=non_shannon and witness_is_polymatroid)
    table.add_note(
        "the last row is the fact behind the polymatroid bound's non-tightness "
        "for general degree constraints (Table 1, bottom-right cell)."
    )
    return table
