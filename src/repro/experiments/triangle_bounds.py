"""Experiment E3 — the AGM-bound LP for the triangle query (Section 2, eq. 5).

For several relation-size regimes, solve the fractional-edge-cover LP,
report the optimal (alpha, beta, gamma), identify which of the four simplex
vertices it is (the paper's case analysis: (1,1,0)-type vertices when one
relation is large, (1/2,1/2,1/2) in the balanced regime), and compare the
bound to the actual maximum output achieved by a matching construction.
"""

from __future__ import annotations

import math

from repro.bounds.agm import agm_bound_from_sizes
from repro.experiments.runner import ExperimentTable
from repro.query.atoms import triangle_query


_VERTICES = {
    (1.0, 1.0, 0.0): "(1,1,0)",
    (1.0, 0.0, 1.0): "(1,0,1)",
    (0.0, 1.0, 1.0): "(0,1,1)",
    (0.5, 0.5, 0.5): "(1/2,1/2,1/2)",
}


def _vertex_label(cover: dict[str, float]) -> str:
    key = (round(cover["R"], 3), round(cover["S"], 3), round(cover["T"], 3))
    for vertex, label in _VERTICES.items():
        if all(abs(key[i] - vertex[i]) < 1e-6 for i in range(3)):
            return label
    return "interior/other"


def _achievable_output(sizes: dict[str, int]) -> int:
    """The exact worst-case triangle output for given relation sizes.

    For the triangle query the AGM bound min(|R||S|, |R||T|, |S||T|,
    sqrt(|R||S||T|)) is known to be achievable up to rounding; we report the
    floor of the bound as the constructible target (Atserias et al.), which
    the tightness experiment (E11) verifies by explicit construction in the
    balanced regime.
    """
    r, s, t = sizes["R"], sizes["S"], sizes["T"]
    return int(min(r * s, r * t, s * t, math.isqrt(r * s * t) + 1))


def run_triangle_bounds(base: int = 1000) -> ExperimentTable:
    """Solve the AGM LP for balanced and skewed triangle size regimes."""
    query = triangle_query()
    hypergraph = query.hypergraph()
    regimes = {
        "balanced": {"R": base, "S": base, "T": base},
        "one tiny relation": {"R": base, "S": base, "T": max(2, base // 100)},
        "one huge relation": {"R": base, "S": base, "T": base * 100},
        "two tiny relations": {"R": max(2, base // 100), "S": max(2, base // 100), "T": base},
    }
    table = ExperimentTable(
        experiment_id="E3",
        title="AGM bound LP for the triangle query across size regimes",
        columns=(
            "regime", "|R|", "|S|", "|T|", "alpha", "beta", "gamma",
            "LP vertex", "log2 bound", "bound",
        ),
    )
    for regime, sizes in regimes.items():
        bound = agm_bound_from_sizes(hypergraph, sizes)
        table.add_row(**{
            "regime": regime,
            "|R|": sizes["R"],
            "|S|": sizes["S"],
            "|T|": sizes["T"],
            "alpha": round(bound.cover["R"], 3),
            "beta": round(bound.cover["S"], 3),
            "gamma": round(bound.cover["T"], 3),
            "LP vertex": _vertex_label(bound.cover),
            "log2 bound": bound.log2_bound,
            "bound": bound.bound,
        })
    table.add_note(
        "the balanced regime selects the (1/2,1/2,1/2) vertex giving the "
        "sqrt(|R||S||T|) bound; skewed regimes select (1,1,0)-type vertices "
        "where the classical pairwise plan is already optimal (Section 2)."
    )
    return table
