"""The common executor protocol behind ``Engine.execute``.

Every join algorithm in :mod:`repro.joins` is adapted here to one uniform
shape so the dispatcher can treat them interchangeably:

* ``plan(query, database)`` produces the strategy-specific plan payload
  (a variable order, an atom order, or nothing);
* ``canonical_payload`` / ``payload_from_canonical`` translate that payload
  to and from canonical vocabulary, so the plan cache can serve isomorphic
  queries;
* ``index_requests`` names the registry indexes the executor would use,
  letting the engine prebuild and share them across a batch;
* ``stream`` lazily yields result tuples over the query's *head* variables.
  WCOJ executors stream straight out of the join recursion (so an
  abandoned iterator abandons the remaining search — ``LIMIT`` pushdown);
  materializing executors (binary plans, Yannakakis) yield from their
  finished result in sorted order.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.fingerprint import CanonicalQuery
from repro.engine.registry import IndexRegistry
from repro.errors import QueryError
from repro.joins.binary_plans import greedy_atom_order
from repro.joins.generic_join import generic_join_stream
from repro.joins.instrumentation import OperationCounter
from repro.joins.leapfrog import leapfrog_stream
from repro.joins.naive import nested_loop_stream
from repro.joins.plan import execute_plan, left_deep_plan
from repro.joins.yannakakis import yannakakis
from repro.query.atoms import ConjunctiveQuery
from repro.query.variable_order import min_degree_order
from repro.relational.database import Database
from repro.relational.index import TrieIndex


#: An index request: (edge key, stored relation name, attribute layout).
IndexRequest = tuple[str, str, tuple[str, ...]]


def head_projected(query: ConjunctiveQuery, stream: Iterator[tuple]
                   ) -> Iterator[tuple]:
    """Project a stream of full-variable tuples onto the head, deduplicating.

    Full queries (head == variables) pass through untouched, and permuted
    full heads only reorder columns (an injective map needs no dedup
    bookkeeping); only strict-subset heads pay for a seen-set.
    """
    variables = query.variables
    head = tuple(query.head)
    if head == tuple(variables):
        yield from stream
        return
    positions = [variables.index(h) for h in head]
    if set(head) == set(variables):  # permutation: injective, no dedup
        for t in stream:
            yield tuple(t[p] for p in positions)
        return
    seen: set[tuple] = set()
    for t in stream:
        projected = tuple(t[p] for p in positions)
        if projected not in seen:
            seen.add(projected)
            yield projected


def _trie_requests(query: ConjunctiveQuery, database: Database,
                   order: Sequence[str]) -> list[IndexRequest]:
    """Registry trie layouts for a WCOJ run under a global variable order.

    The layout for an atom is the restriction of the global order to the
    atom's variables, translated to the *stored* relation's column names so
    self-joins and repeated queries land on the same registry key.
    """
    requests: list[IndexRequest] = []
    for i, atom in enumerate(query.atoms):
        relation = database.get(atom.relation)
        layout = tuple(
            relation.attributes[atom.variables.index(v)]
            for v in order if v in atom.variables
        )
        requests.append((query.edge_key(i), atom.relation, layout))
    return requests


class _WcojExecutor:
    """Shared adaptation of the two streaming WCOJ engines."""

    name: str

    def plan(self, query: ConjunctiveQuery, database: Database) -> tuple[str, ...]:
        """The global variable order (the only planning WCOJ engines need)."""
        return min_degree_order(query)

    def canonical_payload(self, payload: tuple[str, ...],
                          canon: CanonicalQuery) -> tuple[str, ...]:
        return canon.canonicalize_variables(payload)

    def payload_from_canonical(self, payload: tuple[str, ...],
                               canon: CanonicalQuery,
                               query: ConjunctiveQuery) -> tuple[str, ...]:
        return canon.translate_variables(payload)

    def index_requests(self, query: ConjunctiveQuery, database: Database,
                       payload: tuple[str, ...]) -> list[IndexRequest]:
        return _trie_requests(query, database, payload)

    def _stream_fn(self):
        raise NotImplementedError

    def stream(self, query: ConjunctiveQuery, database: Database,
               payload: tuple[str, ...],
               registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        tries: dict[str, TrieIndex] | None = None
        if registry is not None:
            tries = {
                edge_key: registry.trie(relation_name, layout)
                for edge_key, relation_name, layout
                in _trie_requests(query, database, payload)
            }
        inner = self._stream_fn()(query, database, order=payload,
                                  counter=counter, tries=tries)
        return head_projected(query, inner)


class GenericJoinExecutor(_WcojExecutor):
    """Generic-Join behind the common protocol."""

    name = "generic"

    def _stream_fn(self):
        return generic_join_stream


class LeapfrogExecutor(_WcojExecutor):
    """Leapfrog Triejoin behind the common protocol."""

    name = "leapfrog"

    def _stream_fn(self):
        return leapfrog_stream


class _NoPayloadExecutor:
    """Base for executors whose plan payload is empty.

    They use no registry indexes either; subclasses override the payload
    trio when (like the binary executor) they do carry a plan.
    """

    def plan(self, query: ConjunctiveQuery, database: Database) -> None:
        return None

    def canonical_payload(self, payload, canon: CanonicalQuery):
        return payload

    def payload_from_canonical(self, payload, canon: CanonicalQuery,
                               query: ConjunctiveQuery):
        return payload

    def index_requests(self, query: ConjunctiveQuery, database: Database,
                       payload) -> list[IndexRequest]:
        return []


class NaiveExecutor(_NoPayloadExecutor):
    """The nested-loop oracle behind the common protocol."""

    name = "naive"

    def stream(self, query: ConjunctiveQuery, database: Database,
               payload: None, registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        return head_projected(query, nested_loop_stream(query, database,
                                                        counter=counter))


class BinaryPlanExecutor(_NoPayloadExecutor):
    """Greedy left-deep pairwise plans behind the common protocol.

    The payload is a tuple of atom *indices* (not edge keys): indices
    translate cleanly through the canonical atom order, whereas edge keys
    embed relation occurrence numbering that can differ between isomorphic
    queries.
    """

    name = "binary"

    def plan(self, query: ConjunctiveQuery, database: Database
             ) -> tuple[int, ...]:
        return greedy_atom_order(query, database)

    def canonical_payload(self, payload: tuple[int, ...],
                          canon: CanonicalQuery) -> tuple[int, ...]:
        return tuple(canon.canonical_position_of(i) for i in payload)

    def payload_from_canonical(self, payload: tuple[int, ...],
                               canon: CanonicalQuery,
                               query: ConjunctiveQuery) -> tuple[int, ...]:
        return tuple(canon.atom_index_at(p) for p in payload)

    def stream(self, query: ConjunctiveQuery, database: Database,
               payload: tuple[int, ...],
               registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        plan = left_deep_plan([query.edge_key(i) for i in payload])
        execution = execute_plan(plan, query, database, counter=counter)
        return iter(execution.result.sorted_tuples())


class YannakakisExecutor(_NoPayloadExecutor):
    """Yannakakis' acyclic-query algorithm behind the common protocol."""

    name = "yannakakis"

    def stream(self, query: ConjunctiveQuery, database: Database,
               payload: None, registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        result = yannakakis(query, database, counter=counter)
        return iter(result.sorted_tuples())


#: Executor instances, keyed by strategy name (executors are stateless).
EXECUTORS = {
    executor.name: executor
    for executor in (GenericJoinExecutor(), LeapfrogExecutor(),
                     NaiveExecutor(), BinaryPlanExecutor(),
                     YannakakisExecutor())
}


def executor_for(strategy: str):
    """Look up an executor by strategy name."""
    try:
        return EXECUTORS[strategy]
    except KeyError:
        raise QueryError(
            f"unknown strategy {strategy!r}; expected one of {sorted(EXECUTORS)}"
        ) from None
