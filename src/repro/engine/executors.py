"""The common executor protocol behind ``Engine.execute``.

Every join algorithm in :mod:`repro.joins` is adapted here to one uniform
shape so the dispatcher can treat them interchangeably.  Executors receive
the rich :class:`~repro.query.builder.Query` (the ``spec``) and are
responsible for the *relational* part of it — the join, the selections,
the projection, and (when the plan says so) the aggregation; the engine
layers the remaining folds, ordering and LIMIT on top of the streams they
return:

* ``plan(spec, database)`` produces the strategy-specific plan payload
  (a variable order, an atom order, a mode-tagged aggregate order, or
  nothing);
* ``canonical_payload`` / ``payload_from_canonical`` translate that payload
  to and from canonical vocabulary, so the plan cache can serve isomorphic
  queries;
* ``index_requests`` names the registry indexes the executor would use,
  letting the engine prebuild and share them across a batch;
* ``handles_aggregation`` reports whether the plan evaluates the
  aggregates itself (in-recursion / in-pass), in which case ``stream``
  yields finalized aggregate rows and the engine skips its stream-fold;
* ``handles_ordering`` reports whether the plan enumerates in rank order
  itself (any-k), in which case ``stream`` yields head tuples already in
  ORDER BY order and the engine skips its drain-and-heap sort, merely
  truncating to the effective LIMIT;
* ``stream`` lazily yields result tuples over ``spec.stream_variables`` —
  deduplicated head tuples normally, full-variable tuples when a
  stream-fold must observe them, aggregate rows when the plan aggregates
  inside the join, rank-ordered head tuples under any-k plans.

Selections are pushed *below* the join everywhere: the WCOJ executors
prune candidate values inside the join recursion at the depth where each
predicate's variables are bound; the naive executor prunes partial
bindings at the earliest covering atom; the materializing executors
(binary plans, Yannakakis) filter base-relation scans for single-atom
predicates and apply genuinely cross-atom comparisons during the pairwise
joins, at the first join that binds both sides.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.engine.fingerprint import (
    CanonicalQuery,
    canonicalize_wcoj_payload,
    payload_aggregate_mode,
    payload_order,
    payload_ranked_mode,
    translate_wcoj_payload,
)
from repro.engine.registry import IndexRegistry
from repro.errors import QueryError
from repro.joins.binary_plans import greedy_atom_order
from repro.joins.generic_join import generic_join_stream
from repro.joins.hybrid import (HybridPartition, partition_instance,
                                residual_query)
from repro.joins.instrumentation import OperationCounter
from repro.joins.leapfrog import leapfrog_stream
from repro.joins.naive import nested_loop_stream
from repro.joins.plan import execute_plan, left_deep_plan
from repro.joins.yannakakis import (
    yannakakis,
    yannakakis_aggregate_stream,
    yannakakis_ranked_stream,
)
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.builder import Query
from repro.query.decomposition import is_alpha_acyclic
from repro.query.terms import Comparison, Constant
from repro.query.variable_order import (
    aggregate_elimination_order,
    hybrid_light_order,
    pushdown_order,
    skew_split,
)
from repro.relational.database import Database
from repro.relational.index import TrieIndex
from repro.relational.relation import Relation


#: An index request: (edge key, stored relation name, attribute layout).
IndexRequest = tuple[str, str, tuple[str, ...]]


def head_projected(query: ConjunctiveQuery, stream: Iterator[tuple],
                   head: Sequence[str] | None = None) -> Iterator[tuple]:
    """Project a stream of full-variable tuples onto the head, deduplicating.

    ``head`` defaults to ``query.head``.  Full heads pass through
    untouched, and permuted full heads only reorder columns (an injective
    map needs no dedup bookkeeping); only strict-subset heads pay for a
    seen-set.
    """
    variables = query.variables
    head = tuple(query.head if head is None else head)
    if head == tuple(variables):
        yield from stream
        return
    positions = [variables.index(h) for h in head]
    if set(head) == set(variables):  # permutation: injective, no dedup
        for t in stream:
            yield tuple(t[p] for p in positions)
        return
    seen: set[tuple] = set()
    for t in stream:
        projected = tuple(t[p] for p in positions)
        if projected not in seen:
            seen.add(projected)
            yield projected


def split_selections(core: ConjunctiveQuery, selections: Sequence[Comparison]
                     ) -> tuple[list[list[Comparison]], list[Comparison]]:
    """Partition selections into per-atom pushable lists and a residual.

    A selection is pushable into *every* atom containing all its variables
    (applying a conjunctive filter at each covering scan is sound and
    prunes most); only predicates spanning atoms (``A < B`` with A and B
    in different relations) stay residual.
    """
    per_atom: list[list[Comparison]] = [[] for _ in core.atoms]
    residual: list[Comparison] = []
    for sel in selections:
        covering = [i for i, atom in enumerate(core.atoms)
                    if sel.variables <= atom.variable_set]
        for i in covering:
            per_atom[i].append(sel)
        if not covering:
            residual.append(sel)
    return per_atom, residual


def split_pushable_selections(spec: Query) -> tuple[list[list[Comparison]],
                                                    list[Comparison]]:
    """:func:`split_selections` over a rich query's core and selections."""
    return split_selections(spec.core, spec.all_selections)


def filtered_instance(core: ConjunctiveQuery,
                      selections: Sequence[Comparison],
                      database: Database
                      ) -> tuple[ConjunctiveQuery, Database, list[Comparison]]:
    """A derived (query, database) with single-atom selections pre-applied.

    For the materializing executors (and the dispatcher's selectivity-aware
    envelope): each atom with pushable selections is rebound to a filtered
    copy of its relation (selection strictly below the join), leaving only
    cross-atom predicates in the returned residual.  Atoms without
    selections keep their original relations — no copying; when nothing is
    pushable at all, the original query and database are returned as-is.
    """
    per_atom, residual = split_selections(core, selections)
    if not any(per_atom):
        return core, database, residual
    relations = {}
    new_atoms: list[Atom] = []
    for i, atom in enumerate(core.atoms):
        if not per_atom[i]:
            new_atoms.append(atom)
            relations.setdefault(atom.relation, database.get(atom.relation))
            continue
        relation = database.get(atom.relation)
        attr_to_var = dict(zip(relation.attributes, atom.variables))
        atom_selections = per_atom[i]

        def keep(row: dict, _map: dict = attr_to_var,
                 _sels: Sequence[Comparison] = atom_selections) -> bool:
            binding = {_map[a]: v for a, v in row.items()}
            return all(s.evaluate(binding) for s in _sels)

        derived_name = f"{atom.relation}#sel{i}"
        relations[derived_name] = relation.filter(keep, name=derived_name)
        new_atoms.append(Atom(derived_name, atom.variables))
    derived_query = ConjunctiveQuery(new_atoms, name=core.name)
    return derived_query, Database(relations.values()), residual


def pushed_instance(spec: Query, database: Database
                    ) -> tuple[ConjunctiveQuery, Database, list[Comparison]]:
    """:func:`filtered_instance` over a rich query's core and selections."""
    return filtered_instance(spec.core, spec.all_selections, database)


def _trie_requests(query: ConjunctiveQuery, database: Database,
                   order: Sequence[str]) -> list[IndexRequest]:
    """Registry trie layouts for a WCOJ run under a global variable order.

    The layout for an atom is the restriction of the global order to the
    atom's variables, translated to the *stored* relation's column names so
    self-joins and repeated queries land on the same registry key.
    """
    requests: list[IndexRequest] = []
    for i, atom in enumerate(query.atoms):
        relation = database.get(atom.relation)
        layout = tuple(
            relation.attributes[atom.variables.index(v)]
            for v in order if v in atom.variables
        )
        requests.append((query.edge_key(i), atom.relation, layout))
    return requests


def unique_index_layouts(executor: Any, spec: Query, database: Database,
                         payload: Any) -> list[tuple[str, tuple[str, ...]]]:
    """Deduplicated ``(relation, layout)`` pairs a plan's run would use.

    Self-join atoms request the same physical index under distinct edge
    keys; the registry builds it once, so prewarming (``execute_many``,
    the traced ``index.resolve`` stage) and ``explain``'s warm/cold
    report both want the per-index view, in first-request order.
    """
    seen: set[tuple[str, tuple[str, ...]]] = set()
    layouts: list[tuple[str, tuple[str, ...]]] = []
    for _edge_key, relation_name, layout in executor.index_requests(
            spec, database, payload):
        if (relation_name, layout) not in seen:
            seen.add((relation_name, layout))
            layouts.append((relation_name, layout))
    return layouts


class _WcojExecutor:
    """Shared adaptation of the two streaming WCOJ engines."""

    name: str

    def plan(self, spec: Query, database: Database) -> tuple:
        """The global variable order (plus a mode tag when needed).

        Without aggregates or ordering: constant-pinned variables come
        first (they restrict every containing atom for the whole search),
        then the head variables (so projection deduplicates early via the
        existential tail), then the rest — see
        :func:`repro.query.variable_order.pushdown_order`.  For full
        unselected queries this degenerates to the classical min-degree
        order.

        With aggregates: the aggregate-aware order (group prefix, then the
        width-minimizing elimination tail), mode-tagged ``"recursion"``
        when any variable is eliminated and ``"fold"`` otherwise.  The
        dispatcher normally precomputes this payload (with cost-resolved
        and user-forced modes); this standalone fallback applies the
        default rule.

        Ordered queries get the *drain* payload here (the plain
        enumeration order; the engine sorts above it): ``"anyk"``-tagged
        ranked payloads are only ever minted by the dispatcher
        (:func:`repro.engine.cost.dispatch`), which owns the
        anyk-vs-drain resolution — a fallback that second-guessed it
        would make a forced drain plan run ranked.
        """
        if spec.aggregates:
            order, _width = aggregate_elimination_order(
                spec.core, group=spec.head_vars, fixed=spec.fixed_variables,
                selections=spec.all_selections,
                factorize=all(a.semiring().has_product
                              for a in spec.aggregates))
            eliminated = set(spec.core.variables) - set(spec.head_vars)
            return ("recursion" if eliminated else "fold", order)
        return pushdown_order(spec.core, fixed=spec.fixed_variables,
                              leading=spec.head_vars)

    def canonical_payload(self, payload: tuple,
                          canon: CanonicalQuery) -> tuple:
        return canonicalize_wcoj_payload(payload, canon)

    def payload_from_canonical(self, payload: tuple,
                               canon: CanonicalQuery,
                               spec: Query) -> tuple:
        return translate_wcoj_payload(payload, canon)

    def index_requests(self, spec: Query, database: Database,
                       payload: tuple) -> list[IndexRequest]:
        return _trie_requests(spec.core, database, payload_order(payload))

    def handles_aggregation(self, spec: Query, payload: Any) -> bool:
        return bool(spec.aggregates) and payload_aggregate_mode(payload) == "recursion"

    def handles_ordering(self, spec: Query, payload: Any) -> bool:
        return bool(spec.order_by) and payload_ranked_mode(payload) == "anyk"

    def _stream_fn(self):
        raise NotImplementedError

    def stream(self, spec: Query, database: Database,
               payload: tuple,
               registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        core = spec.core
        order = payload_order(payload)
        tries: dict[str, TrieIndex] | None = None
        if registry is not None:
            tries = {
                edge_key: registry.trie(relation_name, layout)
                for edge_key, relation_name, layout
                in _trie_requests(core, database, order)
            }
        if self.handles_ordering(spec, payload):
            # Any-k: the stream is already the head tuples in rank order.
            return self._stream_fn()(core, database, order=order,
                                     counter=counter, tries=tries,
                                     selections=spec.all_selections,
                                     head=spec.head_vars,
                                     ranked=spec.order_by)
        if self.handles_aggregation(spec, payload):
            # In-recursion elimination: the stream is already the
            # finalized aggregate rows over the output columns.
            return self._stream_fn()(core, database, order=order,
                                     counter=counter, tries=tries,
                                     selections=spec.all_selections,
                                     head=spec.head_vars,
                                     aggregates=spec.aggregates)
        head = None if spec.aggregates else spec.head_vars
        return self._stream_fn()(core, database, order=order,
                                 counter=counter, tries=tries,
                                 selections=spec.all_selections, head=head)


class GenericJoinExecutor(_WcojExecutor):
    """Generic-Join behind the common protocol."""

    name = "generic"

    def _stream_fn(self):
        return generic_join_stream


class LeapfrogExecutor(_WcojExecutor):
    """Leapfrog Triejoin behind the common protocol."""

    name = "leapfrog"

    def _stream_fn(self):
        return leapfrog_stream


class _NoPayloadExecutor:
    """Base for executors whose plan payload is empty.

    They use no registry indexes either; subclasses override the payload
    trio when (like the binary executor) they do carry a plan.
    """

    def plan(self, spec: Query, database: Database) -> Any:
        return None

    def canonical_payload(self, payload: Any, canon: CanonicalQuery) -> Any:
        return payload

    def payload_from_canonical(self, payload: Any, canon: CanonicalQuery,
                               spec: Query) -> Any:
        return payload

    def index_requests(self, spec: Query, database: Database,
                       payload: Any) -> list[IndexRequest]:
        return []

    def handles_aggregation(self, spec: Query, payload: Any) -> bool:
        return False

    def handles_ordering(self, spec: Query, payload: Any) -> bool:
        return False


class NaiveExecutor(_NoPayloadExecutor):
    """The nested-loop oracle behind the common protocol."""

    name = "naive"

    def stream(self, spec: Query, database: Database,
               payload: None, registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        inner = nested_loop_stream(spec.core, database, counter=counter,
                                   selections=spec.all_selections)
        if spec.aggregates:
            return inner
        return head_projected(spec.core, inner, head=spec.head_vars)


class BinaryPlanExecutor(_NoPayloadExecutor):
    """Greedy left-deep pairwise plans behind the common protocol.

    The payload is a tuple of atom *indices* (not edge keys): indices
    translate cleanly through the canonical atom order, whereas edge keys
    embed relation occurrence numbering that can differ between isomorphic
    queries.  Cross-atom comparison predicates are applied *inside*
    :func:`repro.joins.plan.execute_plan`, at the first pairwise join that
    binds both sides.
    """

    name = "binary"

    def plan(self, spec: Query, database: Database) -> tuple[int, ...]:
        return greedy_atom_order(spec.core, database)

    def canonical_payload(self, payload: tuple[int, ...],
                          canon: CanonicalQuery) -> tuple[int, ...]:
        return tuple(canon.canonical_position_of(i) for i in payload)

    def payload_from_canonical(self, payload: tuple[int, ...],
                               canon: CanonicalQuery,
                               spec: Query) -> tuple[int, ...]:
        return tuple(canon.atom_index_at(p) for p in payload)

    def stream(self, spec: Query, database: Database,
               payload: tuple[int, ...],
               registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        derived, derived_db, residual = pushed_instance(spec, database)
        plan = left_deep_plan([derived.edge_key(i) for i in payload])
        execution = execute_plan(plan, derived, derived_db, counter=counter,
                                 selections=residual)
        rows = iter(execution.result.sorted_tuples())
        if spec.aggregates:
            return rows
        return head_projected(spec.core, rows, head=spec.head_vars)


class YannakakisExecutor(_NoPayloadExecutor):
    """Yannakakis' acyclic-query algorithm behind the common protocol.

    The payload is empty for plain queries and a mode tag otherwise:
    ``("recursion", ())`` runs the in-pass aggregation of
    :func:`repro.joins.yannakakis.yannakakis_aggregate_stream` (semiring
    product at joins, fold at projections — never materializing the join),
    ``("fold", ())`` materializes the join and leaves the fold to the
    engine, and ``("anyk", ())`` runs the ranked enumeration of
    :func:`repro.joins.yannakakis.yannakakis_ranked_stream` (ordering-
    semiring annotations on the join tree, Lawler-style frontier).
    Cross-atom comparisons are applied during the join passes in every
    mode.
    """

    name = "yannakakis"

    def plan(self, spec: Query, database: Database) -> tuple | None:
        # Standalone fallback mirroring the dispatcher's auto rule:
        # in-pass aggregation needs product semirings AND something to
        # eliminate (a full group-by gains nothing over the fold).
        # Ordered queries fall back to drain here — "anyk" payloads are
        # only minted by the dispatcher, which owns that resolution.
        if spec.aggregates:
            product_ok = all(a.semiring().has_product
                             for a in spec.aggregates)
            eliminated = set(spec.core.variables) - set(spec.head_vars)
            return ("recursion" if product_ok and eliminated else "fold", ())
        return None

    def handles_aggregation(self, spec: Query, payload: Any) -> bool:
        return bool(spec.aggregates) and payload_aggregate_mode(payload) == "recursion"

    def handles_ordering(self, spec: Query, payload: Any) -> bool:
        return bool(spec.order_by) and payload_ranked_mode(payload) == "anyk"

    def stream(self, spec: Query, database: Database,
               payload: Any, registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        derived, derived_db, residual = pushed_instance(spec, database)
        if self.handles_ordering(spec, payload):
            return yannakakis_ranked_stream(
                derived, derived_db, spec.head_vars, spec.order_by,
                selections=residual, counter=counter)
        if self.handles_aggregation(spec, payload):
            return yannakakis_aggregate_stream(
                derived, derived_db, spec.head_vars, spec.aggregates,
                selections=residual, counter=counter)
        result = yannakakis(derived, derived_db, counter=counter,
                            selections=residual)
        rows = iter(result.sorted_tuples())
        if spec.aggregates:
            return rows
        return head_projected(spec.core, rows, head=spec.head_vars)


#: Operator images under operand swap, for specializing ``v op X`` to a
#: constant-on-the-right predicate when the hybrid binds v to a heavy key.
_MIRRORED_OPS = {"==": "==", "!=": "!=", "<": ">", "<=": ">=",
                 ">": "<", ">=": "<="}


def _keyed_selections(selections: Sequence[Comparison], variable: str,
                      key: Any) -> list[Comparison] | None:
    """``selections`` specialized to the binding ``variable = key``.

    Predicates over the variable alone are decided now: a failing one
    means no row with this key can qualify, signalled by returning None.
    Predicates relating the variable to another variable keep the other
    side, with the key as a constant (mirrored when the variable was on
    the left, since :class:`Comparison` keeps variables on the left).
    """
    kept: list[Comparison] = []
    for sel in selections:
        if variable not in sel.variables:
            kept.append(sel)
        elif sel.variables == frozenset((variable,)):
            if not sel.evaluate({variable: key}):
                return None
        elif sel.lhs == variable:
            kept.append(Comparison(sel.rhs, _MIRRORED_OPS[sel.op],
                                   Constant(key)))
        else:
            kept.append(Comparison(sel.lhs, sel.op, Constant(key)))
    return kept


class HybridExecutor(_NoPayloadExecutor):
    """Heavy/light partitioned plans behind the common protocol.

    The payload is ``("hybrid", variable, threshold, heavy_strategy,
    light_strategy)``: the skew variable and degree threshold the
    dispatcher derived from the instance statistics, plus the per-side
    executor names.  ``stream`` partitions every relation touching the
    skew variable by value heaviness
    (:func:`repro.joins.hybrid.partition_instance`), runs each side
    through its own sub-plans (selections pushed down by the
    sub-executors, shared operation counter), and stitches the result
    streams.  Heaviness is a property of the skew variable's *value*,
    so the sides' full bindings are disjoint — the stitch is
    concatenation, with a seen-set on the boundary only when the skew
    variable is projected away (the one case where different sub-streams
    can emit the same head tuple).

    The heavy side is where binding buys structure: with
    ``heavy_strategy == "yannakakis"`` each of the few heavy keys is
    bound in turn, the skew variable *drops out* of every touched atom
    (a triangle residual is a 2-path, a star residual a cross product of
    unary scans), and the acyclic residual runs an output-linear
    Yannakakis sub-plan — so a single hub never pays the hub-times-hub
    pairwise blowup.  A cyclic residual falls back to one whole-side
    binary sub-plan (``heavy_strategy == "binary"``).  The light side
    has per-key degree <= threshold in every touched relation, exactly
    the regime where generic join's intersections stay cheap; its
    variable order binds the skew variable first to keep that bound in
    force from the top of the search.

    Aggregate queries stream full core-variable tuples from both sides
    (disjoint on the skew binding, hence an exact multiset) and leave the
    ⊕-fold to the engine; ordered queries drain and leave the sort to the
    engine — so neither ``handles_aggregation`` nor ``handles_ordering``.
    """

    name = "hybrid"

    def plan(self, spec: Query, database: Database) -> tuple:
        # Standalone fallback mirroring the dispatcher's rule: per-key
        # residual Yannakakis when binding the skew variable leaves an
        # acyclic residual, one whole-side binary plan otherwise; the
        # light residual always runs generic join.
        variable, threshold, _degree = skew_split(spec.core, database)
        residual = residual_query(spec.core, variable)
        heavy = ("yannakakis" if residual is None
                 or is_alpha_acyclic(residual.hypergraph()) else "binary")
        return ("hybrid", variable, threshold, heavy, "generic")

    def canonical_payload(self, payload: tuple,
                          canon: CanonicalQuery) -> tuple:
        tag, variable, threshold, heavy, light = payload
        return (tag, canon.canonicalize_variables((variable,))[0],
                threshold, heavy, light)

    def payload_from_canonical(self, payload: tuple,
                               canon: CanonicalQuery,
                               spec: Query) -> tuple:
        tag, variable, threshold, heavy, light = payload
        return (tag, canon.translate_variables((variable,))[0],
                threshold, heavy, light)

    def stream(self, spec: Query, database: Database,
               payload: tuple,
               registry: IndexRegistry | None = None,
               counter: OperationCounter | None = None) -> Iterator[tuple]:
        _tag, variable, threshold, heavy_strategy, light_strategy = payload
        part = partition_instance(spec.core, database, variable, threshold,
                                  counter=counter)
        streams = []
        if part.heavy_total:
            if heavy_strategy == "yannakakis":
                streams.append(self._heavy_keyed_stream(
                    part, spec, variable, counter))
            else:
                streams.append(self._side_stream(
                    heavy_strategy, part.heavy_query, part.heavy_db, spec,
                    variable, counter))
        if part.light_total:
            streams.append(self._side_stream(
                light_strategy, part.light_query, part.light_db, spec,
                variable, counter))
        boundary_dedup = (not spec.aggregates
                          and variable not in spec.head_vars)
        return self._stitched(streams, boundary_dedup)

    def _heavy_keyed_stream(self, part: HybridPartition, spec: Query,
                            variable: str,
                            counter: OperationCounter | None
                            ) -> Iterator[tuple]:
        """Per-heavy-key residual sub-plans, concatenated over the keys.

        One grouping scan per touched relation buckets the heavy tuples
        by skew value with the skew column projected away (the
        restrictions partition the heavy side, so the total scan work is
        ``heavy_total`` regardless of the key count).  Then, per key:
        selections mentioning the skew variable are specialized to the
        key (an unsatisfiable constant predicate skips the key), every
        touched atom drops the variable — an atom *only* over it becomes
        an existence gate — and the residual runs as an ordinary
        Yannakakis sub-query, with the key re-inserted into each emitted
        row at the position the stitched head expects.
        """
        head = (spec.core.variables if spec.aggregates
                else tuple(spec.head_vars))
        residual_head = tuple(h for h in head if h != variable)
        insert_at = head.index(variable) if variable in head else None
        grouped = self._heavy_by_key(part, spec, variable, counter)
        try:
            keys = sorted(part.heavy_keys)
        except TypeError:  # mixed-type key column: any stable order works
            keys = sorted(part.heavy_keys, key=repr)
        executor = executor_for("yannakakis")
        for key in keys:
            instance = self._keyed_instance(part, spec, grouped, key)
            if instance is None:
                continue
            atoms, keyed_db = instance
            selections = _keyed_selections(spec.all_selections, variable,
                                           key)
            if selections is None:
                continue
            if not atoms:
                # Every atom was a satisfied existence gate on the skew
                # variable, so the head can only be the variable itself.
                yield (key,) * len(head)
                continue
            if residual_head:
                sub_head = residual_head
            else:
                # The head was just the skew variable: any witness from
                # the residual proves (key,); probe one row.
                sub_head = (atoms[0].variables[0],)
            sub_spec = Query(atoms, selections=selections, head=sub_head,
                             name=f"{spec.core.name}#key")
            sub_payload = executor.plan(sub_spec, keyed_db)
            rows = executor.stream(sub_spec, keyed_db, sub_payload,
                                   registry=None, counter=counter)
            if not residual_head:
                if next(iter(rows), None) is not None:
                    yield (key,) * len(head)
            elif insert_at is None:
                yield from rows
            else:
                for row in rows:
                    yield row[:insert_at] + (key,) + row[insert_at:]

    @staticmethod
    def _heavy_by_key(part: HybridPartition, spec: Query, variable: str,
                      counter: OperationCounter | None) -> dict:
        """Per touched atom: the heavy tuples bucketed by skew value,
        skew column(s) projected away.  A tuple binding the variable to
        two different values in one atom (a repeated-variable atom) can
        never satisfy it and is dropped."""
        grouped: dict[int, dict] = {}
        for i in part.touched:
            atom = spec.core.atoms[i]
            relation = part.heavy_db.get(part.heavy_query.atoms[i].relation)
            if counter is not None:
                counter.charge(tuples_scanned=len(relation))
            key_positions = [j for j, v in enumerate(atom.variables)
                             if v == variable]
            keep = [j for j, v in enumerate(atom.variables)
                    if v != variable]
            buckets: dict = {}
            first = key_positions[0]
            for t in relation.tuples:
                key = t[first]
                if any(t[j] != key for j in key_positions[1:]):
                    continue
                buckets.setdefault(key, set()).add(
                    tuple(t[j] for j in keep))
            grouped[i] = (keep, buckets)
        return grouped

    @staticmethod
    def _keyed_instance(part: HybridPartition, spec: Query, grouped: dict,
                        key: Any) -> tuple[list[Atom], Database] | None:
        """The residual (atoms, database) for one heavy key, or None when
        some touched atom has no tuple for the key (the conjunction is
        empty there and the key contributes nothing)."""
        atoms: list[Atom] = []
        relations: dict[str, Relation] = {}
        for i, atom in enumerate(spec.core.atoms):
            heavy_atom = part.heavy_query.atoms[i]
            if i not in grouped:
                atoms.append(heavy_atom)
                relations.setdefault(
                    heavy_atom.relation,
                    part.heavy_db.get(heavy_atom.relation))
                continue
            keep, buckets = grouped[i]
            restricted = buckets.get(key)
            if not restricted:
                return None
            if not keep:
                continue  # unary skew atom: a satisfied existence gate
            source = part.heavy_db.get(heavy_atom.relation)
            name = f"{heavy_atom.relation}@key"
            relations[name] = Relation(
                name, tuple(source.attributes[j] for j in keep), restricted)
            atoms.append(Atom(name, tuple(atom.variables[j] for j in keep)))
        return atoms, Database(relations.values())

    @staticmethod
    def _side_stream(strategy: str, side_core: ConjunctiveQuery,
                     side_db: Database, spec: Query, variable: str,
                     counter: OperationCounter | None) -> Iterator[tuple]:
        # Aggregate sides stream full core tuples so the engine's fold
        # observes every binding; plain sides project to the head.
        head = (spec.core.variables if spec.aggregates else spec.head_vars)
        side_spec = Query(side_core.atoms, selections=spec.all_selections,
                          head=head, name=side_core.name)
        executor = executor_for(strategy)
        if isinstance(executor, _WcojExecutor):
            # Bind the skew variable first: on the light side that keeps
            # every intersection under the degree threshold from the top
            # of the search; on the heavy side it enumerates the few
            # heavy keys outermost.
            side_payload = hybrid_light_order(
                side_spec.core, variable, fixed=side_spec.fixed_variables,
                leading=side_spec.head_vars)
        else:
            side_payload = executor.plan(side_spec, side_db)
        return executor.stream(side_spec, side_db, side_payload,
                               registry=None, counter=counter)

    @staticmethod
    def _stitched(streams: Iterable[Iterator[tuple]],
                  boundary_dedup: bool) -> Iterator[tuple]:
        if not boundary_dedup:
            for stream in streams:
                yield from stream
            return
        seen: set[tuple] = set()
        for stream in streams:
            for row in stream:
                if row not in seen:
                    seen.add(row)
                    yield row


#: Executor instances, keyed by strategy name (executors are stateless).
EXECUTORS = {
    executor.name: executor
    for executor in (GenericJoinExecutor(), LeapfrogExecutor(),
                     NaiveExecutor(), BinaryPlanExecutor(),
                     YannakakisExecutor(), HybridExecutor())
}


def executor_for(strategy: str) -> Any:
    """Look up an executor by strategy name."""
    try:
        return EXECUTORS[strategy]
    except KeyError:
        raise QueryError(
            f"unknown strategy {strategy!r}; expected one of {sorted(EXECUTORS)}"
        ) from None
