"""The :class:`Engine` session: build once, query many times.

An :class:`Engine` owns a :class:`Database` plus every piece of derived
state a single-shot call throws away:

* an :class:`IndexRegistry` that builds tries/hash indexes once and reuses
  them across queries (invalidated automatically on data mutation);
* a :class:`PlanCache` keyed on canonical query structure + a statistics
  fingerprint, so repeated or isomorphic queries skip parsing, acyclicity
  testing, the AGM LP and variable ordering;
* a result cache keyed on exact query form + the versions of the relations
  it reads, serving repeated identical queries on unchanged data instantly;
* a cost-based dispatcher (:mod:`repro.engine.cost`) choosing among naive,
  binary-plan, Generic-Join, Leapfrog and Yannakakis executors behind the
  single ``execute(query, mode=...)`` API.

Queries arrive through one declarative surface
(:class:`~repro.query.builder.Query` / ``Q`` builder / datalog text /
classical :class:`ConjunctiveQuery`, all interchangeable): projection
heads, constants in atoms, comparison selections, semiring aggregates with
group-by, ORDER BY and LIMIT.  The executors handle the join with
selections pushed below it, projection deduplicated early, and — when the
plan says so — the aggregates folded inside the join itself
(``aggregate_mode``) or the results enumerated directly in rank order
(``ranked_mode="anyk"``); this module layers the remaining stream-folds,
drain-and-heap ordering (heap-based top-k under LIMIT) and result
materialization on the streams they return.

Execution streams wherever the algorithm allows: for the WCOJ and naive
strategies, ``stream()`` yields result tuples straight out of the join
recursion and ``execute(..., limit=k)`` abandons the search after the k-th
tuple, so ``LIMIT`` queries never pay for the full join (the materializing
strategies — binary plans, Yannakakis — compute their result before
yielding; stream-folded aggregate queries must also drain first, while
in-recursion aggregate plans stream finalized group rows
group-at-a-time).  Ordered queries run in one of two *ranked modes*:
**any-k** plans (``ranked_mode="anyk"``) enumerate results in sort order
straight out of the join — the ranking-semiring frontier for the WCOJ
strategies, the annotated join tree for Yannakakis — so ``ORDER BY ...
LIMIT k`` stops after k results; **drain** plans enumerate the join and
heap-select the top-k.  Both yield the identical ranked prefix (ties are
broken by the full row).  ``execute_many`` plans a whole batch first and
prebuilds the shared indexes before running it.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.cost import (
    AGGREGATE_MODES,
    BACKENDS,
    COLUMNAR_CAPABLE,
    MODES,
    RANKED_MODES,
    dispatch,
)
from repro.engine.executors import (
    executor_for,
    payload_aggregate_mode,
    payload_order,
    payload_ranked_mode,
    split_pushable_selections,
    unique_index_layouts,
)
from repro.engine.fingerprint import CanonicalQuery, canonical_query
from repro.engine.plan_cache import CachedPlan, LRUCache, PlanCache
from repro.engine.registry import IndexRegistry
from repro.errors import QueryError
from repro.joins.hybrid import partition_instance
from repro.joins.instrumentation import OperationCounter
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ProfileReport, profile_query
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.query.builder import Query, sort_rows
from repro.query.semiring import fold_aggregates
from repro.relational.database import AppliedDelta, Database
from repro.relational.relation import Relation
from repro.relational.statistics import statistics_fingerprint

#: Anything the engine accepts as a query (see ``Query.coerce``).
QueryLike = Any


@dataclass
class EngineStats:
    """Cumulative accounting of one engine session's cache behaviour.

    ``plan_hits``/``plan_misses`` count plan-cache lookups,
    ``result_hits``/``result_misses`` the result cache, and
    ``index_builds``/``index_reuses`` the index registry (a reuse is a
    registry hit, a build a miss).
    """

    queries: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    index_builds: int = 0
    index_reuses: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dictionary."""
        return asdict(self)

    def summary(self) -> str:
        """The hit/miss counters in one compact line (used by explain)."""
        return (f"plan {self.plan_hits} hit / {self.plan_misses} miss · "
                f"result {self.result_hits} hit / {self.result_misses} miss · "
                f"index {self.index_reuses} reused / {self.index_builds} built")

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EngineStats({parts})"


@dataclass(frozen=True, eq=False)  # identity hash: the dict field would
class Explanation:                 # make a generated __hash__ crash
    """What ``explain()`` reports: the plan, the bound, and the provenance.

    Attributes
    ----------
    query:
        The query, rendered as text.
    mode:
        The requested mode.
    strategy:
        The executor the dispatcher chose.
    acyclic:
        Whether the query hypergraph is alpha-acyclic.
    agm_log2:
        log2 of the AGM bound on the current statistics regime (from the
        plan-cache entry, i.e. computed when the plan was first optimized).
    costs:
        The dispatcher's per-strategy estimates (``inf`` = infeasible).
    variable_order:
        The WCOJ variable order (None for non-WCOJ strategies).
    canonical_form:
        The plan-cache key's structural component.
    plan_cache:
        ``"hit"`` or ``"miss"`` — whether planning work was skipped.
    result_cached:
        True when a current-version result for this exact query is cached.
    warm_indexes / cold_indexes:
        Registry index layouts this plan needs, split by whether they are
        already built for the current data versions.
    output_columns:
        The result schema (head variables then aggregate aliases).
    aggregates:
        Rendered aggregate heads (empty for non-aggregate queries).
    aggregate_mode:
        The resolved aggregate execution mode — ``"recursion"``
        (in-recursion semiring elimination / Yannakakis in-pass) or
        ``"fold"`` (drain-and-fold); None without aggregates.
    elimination:
        Per-variable elimination placement for in-recursion plans (which
        variables form the group prefix, which are folded away and at
        what depth), or a one-line description of the fold/in-pass
        placement.
    pushed_selections:
        Where each selection lands *below* the join (recursion depth for
        WCOJ, earliest covering atom for naive, filtered scan or
        first-covering pairwise join for the materializing strategies).
    residual_selections:
        Predicates applied after the join (none under the current
        executors, which push every predicate below or into the join;
        kept for forward compatibility).
    order_by / limit:
        Result-ordering and top-k controls carried by the query.
    ranked_mode:
        The resolved ranked execution mode for ordered queries —
        ``"anyk"`` (rank-ordered enumeration out of the join itself,
        stopping after LIMIT results) or ``"drain"`` (enumerate the join,
        heap-select the top-k); None without ORDER BY.
    hybrid_split:
        For hybrid plans, the heavy/light split report: the skew
        variable and threshold, then per-side key/tuple counts and the
        sub-strategy each side runs.  Empty for every other strategy.
    backend:
        The resolved execution backend — ``"python"`` (the reference
        oracle) or ``"columnar"`` (sorted NumPy layouts + batched
        galloping).  The ``backend[python]``/``backend[columnar]`` cost
        entries record the priced envelopes behind the choice.
    backend_fallback:
        When a non-default backend was requested but the plan resolved
        to python, the reason; None otherwise.
    session_stats:
        A snapshot of the engine's cache counters at explain time.
    analysis:
        With ``explain(..., analyze=True)``: the
        :class:`~repro.obs.profile.ProfileReport` joining every priced
        strategy's predicted envelope to the operations it actually
        performed (calibration ratios); None otherwise.
    """

    query: str
    mode: str
    strategy: str
    acyclic: bool
    agm_log2: float
    costs: dict[str, float]
    variable_order: tuple[str, ...] | None
    canonical_form: str
    plan_cache: str
    result_cached: bool
    warm_indexes: tuple[str, ...]
    cold_indexes: tuple[str, ...]
    output_columns: tuple[str, ...] = ()
    aggregates: tuple[str, ...] = ()
    aggregate_mode: str | None = None
    elimination: tuple[str, ...] = ()
    pushed_selections: tuple[str, ...] = ()
    residual_selections: tuple[str, ...] = ()
    order_by: tuple[str, ...] = ()
    limit: int | None = None
    ranked_mode: str | None = None
    hybrid_split: tuple[str, ...] = ()
    backend: str = "python"
    backend_fallback: str | None = None
    session_stats: dict[str, int] | None = None
    analysis: ProfileReport | None = None

    @property
    def agm_bound(self) -> float:
        """The AGM bound as a plain number."""
        if self.agm_log2 == float("-inf"):
            return 0.0
        try:
            return 2.0 ** self.agm_log2
        except OverflowError:  # pragma: no cover - astronomically large bounds
            return float("inf")

    def render(self) -> str:
        """A human-readable multi-line report (used by the CLI)."""
        backend_line = f"backend:        {self.backend}"
        if self.backend == "columnar":
            backend_line += " (sorted NumPy layouts, galloping intersection)"
        elif self.backend_fallback is not None:
            backend_line += f" (fell back: {self.backend_fallback})"
        lines = [
            f"query:          {self.query}",
            f"strategy:       {self.strategy} (mode={self.mode})",
            backend_line,
            f"acyclic:        {self.acyclic}",
            f"AGM bound:      {self.agm_bound:.6g} (log2 = {self.agm_log2:.4g})",
            "cost estimates: " + (", ".join(
                f"{name}={cost:.4g}" for name, cost in sorted(self.costs.items())
            ) if self.costs else "(skipped — forced mode)"),
        ]
        if self.variable_order is not None:
            lines.append(f"variable order: {' -> '.join(self.variable_order)}")
        if self.output_columns:
            lines.append(f"output:         ({', '.join(self.output_columns)})")
        if self.aggregates:
            lines.append(f"aggregates:     {', '.join(self.aggregates)}"
                         + (f" [{self.aggregate_mode}]"
                            if self.aggregate_mode else ""))
        if self.elimination:
            lines.append("elimination:")
            lines.extend(f"    {entry}" for entry in self.elimination)
        for label, entries in (("pushed below join", self.pushed_selections),
                               ("post-join filters", self.residual_selections)):
            if entries:
                lines.append(f"{label}:")
                lines.extend(f"    {entry}" for entry in entries)
        if self.order_by or self.limit is not None:
            order = ", ".join(self.order_by)
            pieces = []
            if order:
                pieces.append(f"ORDER BY {order}")
            if self.limit is not None:
                pieces.append(f"LIMIT {self.limit}")
            lines.append(f"order/limit:    {' '.join(pieces)}")
        if self.ranked_mode is not None:
            detail = ("any-k: rank-ordered enumeration out of the join, "
                      "stops after LIMIT results"
                      if self.ranked_mode == "anyk"
                      else "drain-and-heap: enumerate the join, "
                           "heap-select the top-k")
            lines.append(f"ranked mode:    {self.ranked_mode} ({detail})")
        if self.hybrid_split:
            lines.append("hybrid split:")
            lines.extend(f"    {entry}" for entry in self.hybrid_split)
        lines.append(f"plan cache:     {self.plan_cache} "
                     f"[{self.canonical_form}]")
        lines.append(f"result cache:   "
                     f"{'warm' if self.result_cached else 'cold'}")
        if self.warm_indexes:
            lines.append("warm indexes:   " + ", ".join(self.warm_indexes))
        if self.cold_indexes:
            lines.append("cold indexes:   " + ", ".join(self.cold_indexes))
        if self.session_stats is not None:
            lines.append("session stats:  "
                         + EngineStats(**self.session_stats).summary())
        if self.analysis is not None:
            lines.append(self.analysis.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _residual_tail_components(spec: Query, order: Sequence[str],
                              start: int) -> list[tuple[str, ...]]:
    """The tail's conditionally-independent components, as the executor
    splits them — the shared rule of
    :meth:`repro.query.hypergraph.Hypergraph.residual_components` with
    the query's selections as couplings, rendered in binding order."""
    position = {v: i for i, v in enumerate(order)}
    groups = spec.core.hypergraph().residual_components(
        order[:start],
        couplings=[sel.variables for sel in spec.all_selections])
    return [tuple(sorted(g, key=position.__getitem__))
            for g in sorted(groups, key=lambda g: min(position[v]
                                                      for v in g))]


@dataclass(frozen=True)
class _Prepared:
    """A query after planning: everything needed to run it."""

    query: Query
    mode: str
    canon: CanonicalQuery
    plan: CachedPlan
    payload: tuple | None  # plan payload in this query's vocabulary
    plan_provenance: str  # "hit" | "miss"


class Engine:
    """A persistent query-engine session over one database.

    Parameters
    ----------
    database:
        The catalog to serve queries against; a fresh empty one by default.
    relations:
        Convenience: relations to register into a fresh database (mutually
        exclusive with ``database``).
    plan_cache_size / result_cache_size:
        LRU capacities of the two caches.
    cache_results:
        Whether to cache materialized results keyed on data versions.
        Streaming (`stream`) never consults the result cache mid-flight.
    tracer:
        A :class:`~repro.obs.trace.Tracer` to thread through the query
        lifecycle (parse → canonicalize → plan-cache lookup → pricing →
        index resolution → execution → delivery).  None (the default)
        installs the shared no-op tracer, whose per-stage cost is one
        attribute read.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to record cache
        outcomes, dispatch counts, execution-time and any-k delay
        histograms into.  None/True creates a fresh registry (the
        default); False disables metrics entirely; an explicit registry
        can be shared across engines (the future multi-tenant service).
    collect_operations:
        When True, every ``execute``/``stream`` call without an explicit
        ``counter`` allocates a fresh :class:`OperationCounter`, exposed
        as :attr:`last_operations` and fed into the operations metrics.
        Off by default: threading a counter through the join recursion
        costs real time on the hot path (see
        ``benchmarks/bench_trace_overhead.py``).
    """

    def __init__(self, database: Database | None = None,
                 relations: Iterable[Relation] = (),
                 plan_cache_size: int = 256,
                 result_cache_size: int = 128,
                 cache_results: bool = True,
                 tracer: Tracer | NullTracer | None = None,
                 metrics: MetricsRegistry | bool | None = None,
                 collect_operations: bool = False):
        if database is not None and tuple(relations):
            raise QueryError("pass either a database or relations, not both")
        self._db = database if database is not None else Database(relations)
        self._registry = IndexRegistry(self._db)
        self._plans = PlanCache(plan_cache_size)
        self._results = LRUCache(result_cache_size)
        self._cache_results = cache_results
        # Bounded like the plan cache: a long-lived session fed distinct
        # query strings must not grow without limit.
        self._parse_cache: LRUCache = LRUCache(plan_cache_size)
        self._canon_cache: LRUCache = LRUCache(plan_cache_size)
        self.stats = EngineStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if metrics is False:
            self._metrics: MetricsRegistry | None = None
        elif metrics is None or metrics is True:
            self._metrics = MetricsRegistry()
        else:
            self._metrics = metrics
        self._collect = collect_operations
        #: The operation counter of the most recent execute/stream call:
        #: the per-call counter when one was threaded (explicitly or via
        #: ``collect_operations``), a fresh zeroed counter when a cached
        #: result was served (a cache hit performs no execution work),
        #: None when nothing was counted.
        self.last_operations: OperationCounter | None = None
        #: Standing queries (see :meth:`subscribe`): every catalog
        #: mutation is pushed into these after the caches are settled.
        self._subscriptions: list = []
        # Delta-sync marks for the registry's columnar layout counter
        # (mirrors the index build/reuse sync in _sync_index_stats).
        self._layout_builds_seen = 0
        # Per-strategy columnar executors, created on first columnar run
        # (a dict once populated; None keeps NumPy unimported until then).
        self._columnar_executor: dict[str, Any] | None = None
        if self._metrics is not None:
            self._declare_metrics()

    def _declare_metrics(self) -> None:
        """Declare the session's instruments once, keeping bound
        references so hot-path recording skips the registry lookup."""
        m = self._metrics
        self._m_queries = m.counter(
            "repro_queries_total", "Queries served (execute/stream/batch)")
        self._m_plan_lookups = m.counter(
            "repro_plan_cache_lookups_total",
            "Plan-cache lookups by outcome", ("outcome",))
        self._m_result_lookups = m.counter(
            "repro_result_cache_lookups_total",
            "Result-cache lookups by outcome", ("outcome",))
        self._m_index_events = m.counter(
            "repro_index_events_total",
            "Index registry builds, reuses and invalidations", ("event",))
        self._m_dispatch = m.counter(
            "repro_dispatch_total", "Executed plans by strategy",
            ("strategy",))
        self._m_backend = m.counter(
            "repro_backend_dispatch_total", "Executed plans by backend",
            ("backend",))
        self._m_layout_builds = m.counter(
            "repro_columnar_layout_builds_total",
            "Columnar layout materializations (layout-cache misses)")
        self._m_exec_seconds = m.histogram(
            "repro_execution_seconds",
            "Wall-clock seconds of materializing query runs")
        self._m_operations = m.counter(
            "repro_operations_total",
            "Executor operations by kind (counted runs only)", ("kind",))
        self._m_search_nodes = m.counter(
            "repro_search_nodes_total",
            "Search nodes by join variable (detail counters only)",
            ("variable",))
        self._m_anyk_first = m.histogram(
            "repro_anyk_first_row_seconds",
            "Any-k ranked enumeration: time to the first row")
        self._m_anyk_delay = m.histogram(
            "repro_anyk_delay_seconds",
            "Any-k ranked enumeration: delay between consecutive rows")
        self._m_plan_invalidations = m.counter(
            "repro_plan_cache_invalidations_total",
            "Plan invalidations by reason (stats-drift vs version-bump)",
            ("reason",))
        self._m_deltas = m.counter(
            "repro_deltas_applied_total",
            "Effective tuple deltas applied to the catalog", ("kind",))
        self._m_view_maint = m.counter(
            "repro_view_maintenance_total",
            "Standing-query maintenance steps by kind", ("kind",))
        self._m_view_seconds = m.histogram(
            "repro_view_maintenance_seconds",
            "Wall-clock seconds of standing-query maintenance steps")
        self._m_subscriptions = m.gauge(
            "repro_subscriptions_active", "Registered standing queries")
        self._m_plan_entries = m.gauge(
            "repro_plan_cache_entries", "Plan cache occupancy")
        self._m_result_entries = m.gauge(
            "repro_result_cache_entries", "Result cache occupancy")
        self._m_indexes = m.gauge(
            "repro_registry_indexes", "Registry indexes warm for the "
            "current data versions")
        self._m_layouts = m.gauge(
            "repro_columnar_layouts", "Columnar layouts warm for the "
            "current data versions and dictionary epoch")

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The underlying catalog (mutate it via the engine's methods)."""
        return self._db

    @property
    def registry(self) -> IndexRegistry:
        """The index registry (exposed for inspection and prewarming)."""
        return self._registry

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The session's metrics registry (None when disabled)."""
        return self._metrics

    def _refresh_gauges(self) -> None:
        self._m_plan_entries.set(len(self._plans))
        self._m_result_entries.set(len(self._results))
        self._m_indexes.set(self._registry.warm_count())
        self._m_layouts.set(self._registry.columnar_warm_count())
        self._m_subscriptions.set(
            sum(1 for sub in self._subscriptions if sub.active))

    def metrics_snapshot(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of every metric (gauges current)."""
        if self._metrics is None:
            raise QueryError(
                "metrics are disabled for this engine "
                "(constructed with metrics=False)")
        self._refresh_gauges()
        return self._metrics.as_dict()

    def metrics_exposition(self) -> str:
        """The Prometheus text exposition (the future ``/metrics`` body)."""
        if self._metrics is None:
            raise QueryError(
                "metrics are disabled for this engine "
                "(constructed with metrics=False)")
        self._refresh_gauges()
        return self._metrics.exposition()

    def add_relation(self, relation: Relation) -> None:
        """Register a new relation in the catalog."""
        self._db.add(relation)

    def replace_relation(self, relation: Relation) -> None:
        """Rebind a name to a new relation, invalidating derived state.

        Standing queries reading the name treat this as an out-of-band
        *version bump*: no delta to propagate, so they re-plan and
        refresh (see :meth:`subscribe`).
        """
        self._db.replace(relation)
        self._invalidate_derived(relation.name)
        self._notify_version_bump(relation.name)

    def remove_relation(self, name: str) -> None:
        """Drop a relation from the catalog, invalidating derived state.

        Standing queries that read ``name`` are deactivated — they can no
        longer be evaluated — and record the drop as their final
        maintenance step.
        """
        self._db.remove(name)
        self._invalidate_derived(name)
        self._notify_version_bump(name)

    def insert(self, name: str, rows: Iterable[Sequence]) -> int:
        """Add tuples to a relation; returns how many were actually new.

        A convenience wrapper over :meth:`apply_delta` — inserts share
        its invalidation and subscription-maintenance path, and an
        idempotent load (nothing new) keeps warm indexes and results.
        """
        return len(self.apply_delta(name, inserts=rows).inserted)

    def apply_delta(self, name: str, inserts: Iterable[Sequence] = (),
                    deletes: Iterable[Sequence] = ()) -> AppliedDelta:
        """Apply a tuple-level delta batch and maintain derived state.

        The batch lands atomically in the catalog with exactly one
        version bump (:meth:`repro.relational.database.Database.apply_delta`),
        then — only when it actually changed something — indexes and
        cached results over ``name`` are invalidated and every standing
        query is offered the *effective* delta for incremental
        maintenance.  Returns the effective delta either way.
        """
        applied = self._db.apply_delta(name, inserts, deletes)
        if not applied.changed:
            return applied
        self._invalidate_derived(name)
        if self._metrics is not None:
            if applied.inserted:
                self._m_deltas.inc(len(applied.inserted), kind="insert")
            if applied.deleted:
                self._m_deltas.inc(len(applied.deleted), kind="delete")
        for sub in list(self._subscriptions):
            sub._on_delta(applied)
        return applied

    def _invalidate_derived(self, name: str) -> None:
        """Drop indexes and cached results derived from ``name``."""
        dropped = self._registry.invalidate(name)
        self.stats.invalidations += dropped
        if self._metrics is not None and dropped:
            self._m_index_events.inc(dropped, event="invalidate")
        # Version-tagged keys already make old results unreachable; evict
        # them eagerly so dead materialized relations don't pin memory
        # until capacity eviction (mirrors the registry's eager policy).
        self._results.evict_where(
            lambda key: any(n == name for n, _ in key[1])
        )

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------
    def subscribe(self, query: QueryLike, mode: str = "auto",
                  aggregate_mode: str = "auto", ranked_mode: str = "auto",
                  on_change: Callable | None = None,
                  replan_threshold: int = 1) -> Any:
        """Register a standing query; returns its live subscription.

        The query materializes once through the ordinary dispatch path,
        then stays current as :meth:`apply_delta` / :meth:`insert` /
        :meth:`replace_relation` / :meth:`remove_relation` mutate the
        catalog — incrementally through semiring delta propagation over
        the stored join-tree messages when the query shape allows it,
        by tracked full refresh otherwise (see
        :class:`repro.ivm.subscription.Subscription` for the fallback
        matrix).  ``on_change`` is called with the subscription after
        every maintenance step that changed the result;
        ``replan_threshold`` is the statistics-fingerprint drift (in
        power-of-two size buckets) that triggers automatic re-planning.
        """
        # Imported lazily: repro.ivm sits above the engine layer (it
        # re-enters execute/_prepare), so a module-level import would
        # be circular.
        from repro.ivm.subscription import Subscription  # lint: disable=import-layering -- ivm sits above the engine by design; subscribe() is the one upward seam and the import stays lazy to break the cycle

        sub = Subscription(self, query, mode=mode,
                           aggregate_mode=aggregate_mode,
                           ranked_mode=ranked_mode, on_change=on_change,
                           replan_threshold=replan_threshold)
        self._subscriptions.append(sub)
        if self._metrics is not None:
            self._m_subscriptions.set(
                sum(1 for s in self._subscriptions if s.active))
        return sub

    def unsubscribe(self, subscription) -> bool:
        """Deregister a subscription; True when it was registered here."""
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            return False
        subscription._deactivate()
        if self._metrics is not None:
            self._m_subscriptions.set(
                sum(1 for s in self._subscriptions if s.active))
        return True

    @property
    def subscriptions(self) -> tuple:
        """The registered standing queries (including deactivated ones)."""
        return tuple(self._subscriptions)

    def _notify_version_bump(self, name: str) -> None:
        for sub in list(self._subscriptions):
            sub._on_version_bump(name)

    def _record_plan_invalidation(self, reason: str,
                                  canonical_form: str | None = None) -> None:
        """Count a plan invalidation and evict the stale entries.

        ``reason`` is ``"stats-drift"`` (fingerprint left the plan's size
        regime) or ``"version-bump"`` (out-of-band wholesale rebinding);
        with a ``canonical_form`` every cached plan for that query shape
        is evicted so the next preparation re-enters the dispatcher.
        """
        self._plans.record_invalidation(reason)
        if self._metrics is not None:
            self._m_plan_invalidations.inc(reason=reason)
        if canonical_form is not None:
            self._plans.evict_where(lambda key: key[0] == canonical_form)

    def _observe_maintenance(self, record) -> None:
        """Record one standing-query maintenance step in the metrics."""
        if self._metrics is None:
            return
        self._m_view_maint.inc(kind=record.kind)
        self._m_view_seconds.observe(record.seconds)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _normalize(self, query: QueryLike) -> Query:
        if isinstance(query, str):
            cached = self._parse_cache.get(query)
            if cached is None:
                cached = Query.coerce(query)
                self._parse_cache.put(query, cached)
            return cached
        return Query.coerce(query)

    def _canonical(self, query: Query) -> CanonicalQuery:
        canon = self._canon_cache.get(query)
        if canon is None:
            canon = canonical_query(query)
            self._canon_cache.put(query, canon)
        return canon

    def _prepare(self, query: QueryLike, mode: str,
                 aggregate_mode: str = "auto",
                 ranked_mode: str = "auto",
                 backend: str = "python") -> _Prepared:
        if mode not in MODES:
            raise QueryError(
                f"unknown engine mode {mode!r}; expected one of {MODES}"
            )
        if backend not in BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if aggregate_mode not in AGGREGATE_MODES:
            raise QueryError(
                f"unknown aggregate mode {aggregate_mode!r}; "
                f"expected one of {AGGREGATE_MODES}"
            )
        if ranked_mode not in RANKED_MODES:
            raise QueryError(
                f"unknown ranked mode {ranked_mode!r}; "
                f"expected one of {RANKED_MODES}"
            )
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("parse", from_text=isinstance(query, str)):
                query = self._normalize(query)
        else:
            query = self._normalize(query)
        if aggregate_mode != "auto" and not query.aggregates:
            raise QueryError(
                f"aggregate_mode={aggregate_mode!r} needs an aggregate query"
            )
        if ranked_mode != "auto" and not query.order_by:
            raise QueryError(
                f"ranked_mode={ranked_mode!r} needs an ORDER BY query"
            )
        if ranked_mode == "anyk" and query.aggregates:
            raise QueryError(
                "ranked_mode='anyk' does not apply to aggregate queries; "
                "their ordered output is the folded group stream"
            )
        if tracer.enabled:
            with tracer.span("canonicalize") as span:
                canon = self._canonical(query)
                span.set(form=canon.form)
        else:
            canon = self._canonical(query)
        core = query.core
        fingerprint = statistics_fingerprint(
            self._db,
            [core.atoms[i].relation for i in canon.atom_order],
        )
        # The requested aggregate and ranked modes are plan axes like the
        # strategy mode: a plan resolved under "drain" must not serve an
        # "anyk" request (the cached payload's mode tag would disagree).
        key = (canon.form, fingerprint, mode,
               aggregate_mode if query.aggregates else "auto",
               ranked_mode if query.order_by else "auto",
               backend)
        if tracer.enabled:
            with tracer.span("plan_cache.lookup") as span:
                cached = self._plans.get(key)
                span.set(outcome="hit" if cached is not None else "miss")
        else:
            cached = self._plans.get(key)
        if cached is not None:
            self.stats.plan_hits += 1
            if self._metrics is not None:
                self._m_plan_lookups.inc(outcome="hit")
            executor = executor_for(cached.strategy)
            payload = executor.payload_from_canonical(cached.payload, canon,
                                                      query)
            return _Prepared(query, mode, canon, cached, payload, "hit")

        self.stats.plan_misses += 1
        if self._metrics is not None:
            self._m_plan_lookups.inc(outcome="miss")
        if tracer.enabled:
            with tracer.span("dispatch.price", mode=mode) as span:
                decision = dispatch(core, self._db, mode,
                                    selections=query.all_selections,
                                    aggregates=query.aggregates,
                                    group=query.head_vars,
                                    aggregate_mode=aggregate_mode,
                                    order_by=query.order_by,
                                    limit=query.limit,
                                    ranked_mode=ranked_mode,
                                    backend=backend)
                span.set(strategy=decision.strategy,
                         backend=decision.backend,
                         costs={name: cost for name, cost
                                in decision.costs.items()
                                if cost != float("inf")})
        else:
            decision = dispatch(core, self._db, mode,
                                selections=query.all_selections,
                                aggregates=query.aggregates,
                                group=query.head_vars,
                                aggregate_mode=aggregate_mode,
                                order_by=query.order_by,
                                limit=query.limit,
                                ranked_mode=ranked_mode,
                                backend=backend)
        executor = executor_for(decision.strategy)
        # The dispatcher already computed the greedy order while pricing the
        # binary strategy (and the aggregate-aware order while resolving the
        # aggregate mode) — reuse them so the plan run is the plan priced.
        if decision.strategy == "binary":
            payload: tuple | None = decision.binary_order
        elif decision.payload is not None:
            payload = decision.payload
        else:
            payload = executor.plan(query, self._db)
        plan = CachedPlan(
            strategy=decision.strategy,
            payload=executor.canonical_payload(payload, canon),
            acyclic=decision.acyclic,
            agm_log2=decision.agm.log2_bound,
            costs=tuple(sorted(decision.costs.items())),
            backend=decision.backend,
            backend_fallback=decision.backend_fallback,
        )
        self._plans.put(key, plan)
        return _Prepared(query, mode, canon, plan, payload, "miss")

    @staticmethod
    def _check_limit(limit: int | None) -> None:
        if limit is not None and limit < 0:
            raise QueryError(f"limit must be non-negative, got {limit}")

    @staticmethod
    def _effective_limit(query: Query, limit: int | None) -> int | None:
        """Combine the query's own LIMIT with the per-call one (min wins)."""
        if query.limit is None:
            return limit
        if limit is None:
            return query.limit
        return min(query.limit, limit)

    def _result_key(self, prepared: _Prepared) -> tuple:
        # Versions are listed in canonical atom order (like the statistics
        # fingerprint) so atom-permuted isomorphic queries share the key.
        atoms = prepared.query.core.atoms
        versions = tuple(
            (atoms[i].relation, self._db.version(atoms[i].relation))
            for i in prepared.canon.atom_order
        )
        return (prepared.canon.form, versions)

    def _serve_cached(self, prepared: _Prepared, cached: Relation) -> Relation:
        """Adapt a cached result to this query's vocabulary.

        Isomorphic queries share result-cache entries (the key is the
        canonical form), so the cached schema may use another query's
        variable names or aggregate aliases; positions line up by
        construction, making a rename sufficient — and cheap, since renames
        share the tuple set.
        """
        columns = prepared.query.output_columns
        if tuple(cached.attributes) != columns:
            cached = cached.rename(dict(zip(cached.attributes, columns)),
                                   name=prepared.query.name)
        elif cached.name != prepared.query.name:
            cached = cached.with_name(prepared.query.name)
        return cached

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: QueryLike, mode: str = "auto",
                limit: int | None = None,
                counter: OperationCounter | None = None,
                aggregate_mode: str = "auto",
                ranked_mode: str = "auto",
                backend: str = "python") -> Relation:
        """Evaluate a query and return its result relation.

        Parameters
        ----------
        query:
            A :class:`~repro.query.builder.Query`, a ``Q`` builder chain, a
            classical :class:`ConjunctiveQuery`, or datalog-style text
            (``"Q(A) :- R(A,B), S(B,5), A < B"``).
        mode:
            ``"auto"`` (cost-based dispatch) or a forced strategy name.
        aggregate_mode:
            How aggregate heads are evaluated: ``"auto"`` lets the
            dispatcher price in-recursion elimination against
            drain-and-fold per strategy, ``"recursion"`` forces the
            aggregation inside the join (in-recursion for the WCOJ
            strategies, in-pass for Yannakakis; restricting dispatch to
            strategies that support it), ``"fold"`` forces the
            join-then-fold route.  Only valid on aggregate queries.
        ranked_mode:
            How ordered (ORDER BY) results are produced: ``"auto"`` lets
            the dispatcher price any-k ranked enumeration against
            drain-and-heap per strategy (any-k wins when the query's
            LIMIT is small against the join envelope), ``"anyk"`` forces
            rank-ordered enumeration out of the join itself (WCOJ
            frontier / Yannakakis annotated join tree; restricting
            dispatch to strategies that support it; non-aggregate queries
            only), ``"drain"`` forces enumerate-then-heap-select.  Both
            modes return the identical ranked prefix.  Only valid on
            ordered queries.
        limit:
            Stop after this many result tuples; pushed down into the join
            recursion for WCOJ strategies (under any-k plans the ranked
            stream is truncated *after* ordering, never before) and
            combined (min) with the query's own ``LIMIT``.  Passing a
            *per-call* limit always runs the executor (bypassing the
            result cache, whose key does not encode it), so the same call
            returns the same deterministic enumeration prefix whether or
            not the cache is warm; a LIMIT carried by the query itself is
            part of the cache key and its results are cached normally.
        counter:
            Optional operation counter threaded through to the executor.
            Passing a counter bypasses the result cache: a cached answer
            costs no operations, which would make instrumented runs record
            zero work and verify bounds vacuously.
        backend:
            Physical execution backend: ``"python"`` (the reference
            tuple-at-a-time path, the default), ``"columnar"`` (sorted
            NumPy layouts with galloping intersection; transparently
            falls back to python when a feature or value domain is
            unsupported), or ``"auto"`` (the dispatcher prices both and
            picks the cheaper).  The backend never changes results —
            only how fast they are produced.
        """
        self._check_limit(limit)
        tracer = self.tracer
        if not tracer.enabled:
            prepared = self._prepare(query, mode, aggregate_mode, ranked_mode,
                                     backend)
            effective = self._effective_limit(prepared.query, limit)
            return self._execute_prepared(prepared, effective, counter,
                                          cacheable=limit is None)
        with tracer.span("query", mode=mode) as span:
            prepared = self._prepare(query, mode, aggregate_mode, ranked_mode,
                                     backend)
            effective = self._effective_limit(prepared.query, limit)
            result = self._execute_prepared(prepared, effective, counter,
                                            cacheable=limit is None)
            span.set(query=str(prepared.query),
                     strategy=prepared.plan.strategy,
                     plan_cache=prepared.plan_provenance,
                     rows=len(result))
            return result

    def _execute_prepared(self, prepared: _Prepared, limit: int | None,
                          counter: OperationCounter | None,
                          cacheable: bool) -> Relation:
        """The shared check-cache / run / materialize / fill-cache path.

        ``cacheable`` is False exactly when a *per-call* limit was passed:
        the result key does not encode it, so serving (or storing) would
        confuse differently-limited calls.  A LIMIT carried by the query
        itself is part of the canonical form — those results cache safely
        (the repeated top-k workload the ordered surface exists for).
        """
        self.stats.queries += 1
        metrics = self._metrics
        if metrics is not None:
            self._m_queries.inc()
        tracer = self.tracer
        cacheable = cacheable and self._cache_results and counter is None
        if cacheable:
            cached = self._results.get(self._result_key(prepared))
            if cached is not None:
                self.stats.result_hits += 1
                if metrics is not None:
                    self._m_result_lookups.inc(outcome="hit")
                # A served cache entry performs no execution work: report
                # a fresh zeroed counter, never the populating run's
                # tallies.
                self.last_operations = OperationCounter()
                if tracer.enabled:
                    with tracer.span("deliver", result_cache="hit"):
                        return self._serve_cached(prepared, cached)
                return self._serve_cached(prepared, cached)
            self.stats.result_misses += 1
            if metrics is not None:
                self._m_result_lookups.inc(outcome="miss")

        run_counter = counter
        if run_counter is None and self._collect:
            # Detail mode feeds the per-variable search-node metrics.
            run_counter = OperationCounter(detail=metrics is not None)
        self.last_operations = run_counter
        start = time.perf_counter()
        rows = self._run(prepared, run_counter, limit)
        if tracer.enabled:
            with tracer.span("execute",
                             strategy=prepared.plan.strategy) as span:
                rows = list(rows)
                span.set(rows=len(rows))
                if run_counter is not None:
                    span.set(operations=run_counter.as_dict())
            with tracer.span("deliver", result_cache="store"
                             if cacheable else "bypass"):
                result = Relation(prepared.query.name,
                                  prepared.query.output_columns, rows)
        else:
            result = Relation(prepared.query.name,
                              prepared.query.output_columns, rows)
        if metrics is not None:
            self._m_exec_seconds.observe(time.perf_counter() - start)
            if run_counter is not None:
                self._record_operations(run_counter)
        if cacheable:
            self._results.put(self._result_key(prepared), result)
        return result

    def _record_operations(self, counter: OperationCounter) -> None:
        """Feed a finished run's counter into the operations metrics."""
        for kind in OperationCounter._KNOWN:
            amount = getattr(counter, kind)
            if amount:
                self._m_operations.inc(amount, kind=kind)
        for label, amount in counter.breakdown.items():
            if label.startswith("search_nodes[") and label.endswith("]"):
                self._m_search_nodes.inc(amount, variable=label[13:-1])

    def stream(self, query: QueryLike, mode: str = "auto",
               limit: int | None = None,
               counter: OperationCounter | None = None,
               aggregate_mode: str = "auto",
               ranked_mode: str = "auto",
               backend: str = "python") -> Iterator[tuple]:
        """Lazily enumerate result tuples (over the output columns).

        For the WCOJ and naive strategies, abandoning the iterator abandons
        the remaining join search, so consuming k tuples costs only the
        work of finding k tuples — for in-recursion aggregate plans the
        tuples are finalized group rows, which stream group-at-a-time out
        of the recursion, and for any-k ranked plans they are head rows
        in exact ORDER BY order, so consuming k ordered tuples never pays
        for the full join.  The materializing strategies (binary plans,
        Yannakakis) compute their result before yielding the first tuple,
        and drain-ranked or stream-folded aggregate queries must drain
        the join first; ``limit`` then merely truncates the iteration
        (top-k for ordered queries — always applied *after* ordering).

        With ``collect_operations`` (or an explicit ``counter``),
        :attr:`last_operations` is the *live* counter of the returned
        stream: its tallies grow as the iterator is consumed.

        Under ``backend="columnar"`` the join is evaluated batch-at-a-time
        (the columnar kernels are vectorized, not tuple-at-a-time), so the
        returned iterator is over an already-computed buffer: identical
        tuples in identical order, but abandoning it early does not save
        join work.
        """
        self._check_limit(limit)
        prepared = self._prepare(query, mode, aggregate_mode, ranked_mode,
                                 backend)
        limit = self._effective_limit(prepared.query, limit)
        self.stats.queries += 1
        if self._metrics is not None:
            self._m_queries.inc()
        run_counter = counter
        if run_counter is None and self._collect:
            run_counter = OperationCounter(detail=self._metrics is not None)
        self.last_operations = run_counter
        return self._run(prepared, run_counter, limit)

    def execute_many(self, queries: Sequence[QueryLike],
                     mode: str = "auto", limit: int | None = None,
                     aggregate_mode: str = "auto",
                     ranked_mode: str = "auto",
                     backend: str = "python") -> list[Relation]:
        """Evaluate a batch, sharing planning and index builds across it.

        All queries are planned first; the union of their index requests is
        built once (deduplicated by the registry — columnar plans prewarm
        sorted layouts, python plans prewarm tries); then each query runs.
        A non-default ``aggregate_mode`` (or ``ranked_mode``) applies to
        every query in the batch (so the batch must be all-aggregate, or
        all-ordered, to force one).
        """
        self._check_limit(limit)
        prepared = [self._prepare(q, mode, aggregate_mode, ranked_mode,
                                  backend)
                    for q in queries]
        requested: set[tuple[str, tuple[str, ...]]] = set()
        columnar_requested: set[tuple[str, tuple[str, ...]]] = set()
        for prep in prepared:
            executor = executor_for(prep.plan.strategy)
            layouts = unique_index_layouts(
                executor, prep.query, self._db, prep.payload)
            if self._runs_columnar(prep):
                columnar_requested.update(layouts)
            else:
                requested.update(layouts)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("index.resolve", batch=len(prepared)) as span:
                self._prebuild_indexes(requested, columnar_requested)
                span.set(indexes=len(requested) + len(columnar_requested))
        else:
            self._prebuild_indexes(requested, columnar_requested)
        self._sync_index_stats()
        return [
            self._execute_prepared(prep,
                                   self._effective_limit(prep.query, limit),
                                   None, cacheable=limit is None)
            for prep in prepared
        ]

    def explain(self, query: QueryLike, mode: str = "auto",
                aggregate_mode: str = "auto",
                ranked_mode: str = "auto",
                backend: str = "python",
                analyze: bool = False) -> Explanation:
        """Plan the query (without executing) and report the evidence.

        Explaining warms the plan cache: a subsequent ``execute`` of the
        same query reports a plan-cache hit.  With ``analyze=True`` the
        query additionally *runs* under every priced strategy (see
        :meth:`profile`) and the resulting calibration report — the
        predicted envelope against actual operation counts per strategy —
        is attached as :attr:`Explanation.analysis`.
        """
        prepared = self._prepare(query, mode, aggregate_mode, ranked_mode,
                                 backend)
        executor = executor_for(prepared.plan.strategy)
        runs_columnar = self._runs_columnar(prepared)
        warm: list[str] = []
        cold: list[str] = []
        # Self-join atoms can request the same physical index; report
        # each (relation, layout) once — it is built once.  Columnar
        # plans report their sorted-layout cache, not the trie cache.
        for relation_name, layout in unique_index_layouts(
                executor, prepared.query, self._db, prepared.payload):
            label = f"{relation_name}[{','.join(layout)}]"
            if runs_columnar:
                is_warm = self._registry.columnar_is_warm(relation_name,
                                                          layout)
            else:
                is_warm = self._registry.is_warm(relation_name, layout)
            if is_warm:
                warm.append(label)
            else:
                cold.append(label)
        result_cached = (self._cache_results
                         and self._result_key(prepared) in self._results)
        variable_order = (
            payload_order(prepared.payload)
            if prepared.plan.strategy in ("generic", "leapfrog") else None
        )
        pushed, residual = self._selection_placement(prepared)
        spec = prepared.query
        resolved_mode = (payload_aggregate_mode(prepared.payload)
                         or ("fold" if spec.aggregates else None))
        resolved_ranked = (payload_ranked_mode(prepared.payload)
                           or ("drain" if spec.order_by else None))
        hybrid_split: tuple[str, ...] = ()
        if prepared.plan.strategy == "hybrid" and prepared.payload:
            _tag, skew_var, threshold, heavy_strat, light_strat = (
                prepared.payload)
            part = partition_instance(spec.core, self._db, skew_var,
                                      threshold)
            hybrid_split = (
                f"skew variable {skew_var}, degree threshold "
                f"{threshold:.4g} (sqrt of largest touched relation)",
                f"heavy side: {len(part.heavy_keys)} keys, "
                f"{part.heavy_total} tuples -> {heavy_strat}",
                f"light side: {part.light_total} tuples "
                f"(per-key degree <= {threshold:.4g}) -> {light_strat}",
            )
        explanation = Explanation(
            query=str(spec),
            mode=mode,
            strategy=prepared.plan.strategy,
            acyclic=prepared.plan.acyclic,
            agm_log2=prepared.plan.agm_log2,
            costs=prepared.plan.cost_dict(),
            variable_order=variable_order,
            canonical_form=prepared.canon.form,
            plan_cache=prepared.plan_provenance,
            result_cached=result_cached,
            warm_indexes=tuple(warm),
            cold_indexes=tuple(cold),
            output_columns=spec.output_columns,
            aggregates=tuple(f"{a} AS {a.alias}" for a in spec.aggregates),
            aggregate_mode=resolved_mode,
            elimination=self._elimination_placement(prepared, resolved_mode),
            pushed_selections=pushed,
            residual_selections=residual,
            order_by=tuple(f"{c} DESC" if d else c for c, d in spec.order_by),
            limit=spec.limit,
            ranked_mode=resolved_ranked,
            hybrid_split=hybrid_split,
            backend=prepared.plan.backend,
            backend_fallback=prepared.plan.backend_fallback,
            session_stats=self.stats.as_dict(),
        )
        if analyze:
            explanation = replace(
                explanation,
                analysis=profile_query(self, query, mode=mode,
                                       aggregate_mode=aggregate_mode,
                                       ranked_mode=ranked_mode))
        return explanation

    def profile(self, query: QueryLike, mode: str = "auto",
                aggregate_mode: str = "auto",
                ranked_mode: str = "auto") -> ProfileReport:
        """Run the query under every priced strategy and calibrate the
        cost model: per strategy, the dispatcher's predicted envelope is
        joined to the operations the run actually performed (a fresh
        detail counter per run, bypassing the result cache), yielding a
        calibration ratio and a verdict on whether dispatch picked the
        empirically best strategy.  See
        :func:`repro.obs.profile.profile_query`.
        """
        return profile_query(self, query, mode=mode,
                             aggregate_mode=aggregate_mode,
                             ranked_mode=ranked_mode)

    @staticmethod
    def _elimination_placement(prepared: _Prepared,
                               resolved_mode: str | None
                               ) -> tuple[str, ...]:
        """Where each variable is aggregated away, per strategy and mode."""
        spec = prepared.query
        if not spec.aggregates or resolved_mode is None:
            return ()
        strategy = prepared.plan.strategy
        kinds = ", ".join(sorted({a.kind.upper() for a in spec.aggregates}))
        if resolved_mode == "fold":
            return (f"all variables enumerated; {kinds} folded over the "
                    "streamed join output (stream-fold)",)
        if strategy in ("generic", "leapfrog"):
            order = payload_order(prepared.payload)
            group = set(spec.head_vars)
            start = max((order.index(g) for g in group), default=-1) + 1
            lines = []
            for depth in range(start):
                role = ("group-by" if order[depth] in group
                        else "constant-pinned")
                lines.append(f"{order[depth]} — {role} prefix "
                             f"(depth {depth})")
            # A plus-only (product-less) aggregate semiring keeps the
            # eliminator monolithic; reporting a component split it
            # cannot execute would misdescribe the plan.
            can_factorize = all(a.semiring().has_product
                                for a in spec.aggregates)
            components = (_residual_tail_components(spec, order, start)
                          if can_factorize and start < len(order) else [])
            component_of = {v: i for i, comp in enumerate(components)
                            for v in comp}
            for depth in range(start, len(order)):
                line = (f"{order[depth]} — eliminated in-recursion at depth "
                        f"{depth}, folded into {kinds}")
                if len(components) > 1:
                    line += (f" (component "
                             f"{component_of[order[depth]] + 1}"
                             f"/{len(components)})")
                lines.append(line)
            if len(components) > 1:
                rendered = "; ".join("{" + ", ".join(comp) + "}"
                                     for comp in components)
                lines.append(
                    f"tail factorizes into {len(components)} independent "
                    f"components ({rendered}); per-component memoized "
                    "folds combine with the semiring product"
                )
            if not lines:
                lines.append(f"no variables to eliminate; {kinds} folded "
                             "per full binding")
            return tuple(lines)
        if strategy == "yannakakis":
            non_group = [v for v in spec.core.variables
                         if v not in set(spec.head_vars)]
            return (
                f"{', '.join(non_group) or '(nothing)'} — aggregated away "
                f"during the join-tree passes (semiring product at joins, "
                f"{kinds} fold at projections)",
            )
        return ()

    @staticmethod
    def _selection_placement(prepared: _Prepared
                             ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Where each selection lands relative to the join, per strategy."""
        spec = prepared.query
        if not spec.all_selections:
            return (), ()
        strategy = prepared.plan.strategy
        core = spec.core
        if strategy in ("generic", "leapfrog"):
            order = payload_order(prepared.payload)
            position = {v: i for i, v in enumerate(order)}
            pushed = tuple(
                f"{sel} — pruned at depth "
                f"{max(position[v] for v in sel.variables)} "
                f"(variable {order[max(position[v] for v in sel.variables)]}"
                f") of the join recursion"
                for sel in spec.all_selections
            )
            return pushed, ()
        if strategy == "naive":
            covered: set[str] = set()
            placements = []
            pending = list(spec.all_selections)
            for i, atom in enumerate(core.atoms):
                covered |= atom.variable_set
                for sel in list(pending):
                    if sel.variables <= covered:
                        placements.append(
                            f"{sel} — pruned at atom {i} ({atom})")
                        pending.remove(sel)
            return tuple(placements), ()
        per_atom, residual = split_pushable_selections(spec)
        pushed = tuple(
            f"{sel} — filtered into the scan of {core.atoms[i].relation}"
            for i, sels in enumerate(per_atom) for sel in sels
        ) + tuple(
            f"{sel} — applied during the pairwise joins, at the first "
            "join binding both sides"
            for sel in residual
        )
        return pushed, ()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run(self, prepared: _Prepared, counter: OperationCounter | None,
             limit: int | None = None) -> Iterator[tuple]:
        """Stream output rows: join → aggregate fold → order → limit.

        In-recursion aggregate plans skip the fold stage entirely: the
        executor's stream already carries finalized group rows straight
        out of the join recursion (or Yannakakis' join-tree passes).
        Any-k ranked plans skip the sort stage the same way: the stream
        is already in ORDER BY order, so the (min-merged per-call/query)
        ``limit`` truncates it — ordering always happens before any
        limit is applied, whichever mode produced the ordering.
        """
        spec = prepared.query
        executor = executor_for(prepared.plan.strategy)
        if self._runs_columnar(prepared):
            executor = self._columnar(prepared.plan.strategy)
        tracer = self.tracer
        if tracer.enabled:
            # Resolve the plan's indexes up front, inside their own span
            # (executor.stream would otherwise resolve them invisibly).
            with tracer.span("index.resolve") as span:
                layouts = unique_index_layouts(executor, spec, self._db,
                                               prepared.payload)
                if self._runs_columnar(prepared):
                    already_warm = sum(
                        1 for name, layout in layouts
                        if self._registry.columnar_is_warm(name, layout))
                    self._prebuild_indexes((), layouts)
                else:
                    already_warm = sum(
                        1 for name, layout in layouts
                        if self._registry.is_warm(name, layout))
                    self._prebuild_indexes(layouts, ())
                span.set(indexes=len(layouts), warm=already_warm)
        if self._metrics is not None:
            self._m_dispatch.inc(strategy=prepared.plan.strategy)
            self._m_backend.inc(backend=prepared.plan.backend)
        rows = executor.stream(spec, self._db, prepared.payload,
                               registry=self._registry, counter=counter)
        self._sync_index_stats()
        if spec.aggregates and not executor.handles_aggregation(
                spec, prepared.payload):
            rows = fold_aggregates(rows, spec.core.variables,
                                   spec.head_vars, spec.aggregates)
        if spec.order_by and not executor.handles_ordering(
                spec, prepared.payload):
            return iter(sort_rows(rows, spec.output_columns, spec.order_by,
                                  limit=limit))
        if (self._metrics is not None and spec.order_by
                and executor.handles_ordering(spec, prepared.payload)):
            rows = self._observe_anyk_delays(rows)
        if limit is not None:
            return itertools.islice(rows, limit)
        return rows

    def _observe_anyk_delays(self, rows: Iterator[tuple]) -> Iterator[tuple]:
        """Pass an any-k ranked stream through, feeding the delay
        histograms: time to the first row, then each inter-row gap —
        the measurable face of the any-k delay guarantees."""
        previous = time.perf_counter()
        first = True
        for row in rows:
            now = time.perf_counter()
            if first:
                self._m_anyk_first.observe(now - previous)
                first = False
            else:
                self._m_anyk_delay.observe(now - previous)
            previous = now
            yield row

    @staticmethod
    def _runs_columnar(prepared: _Prepared) -> bool:
        """True when this plan executes on the columnar backend."""
        return (prepared.plan.backend == "columnar"
                and prepared.plan.strategy in COLUMNAR_CAPABLE)

    def _columnar(self, strategy: str) -> Any:
        """The session's columnar executor for one strategy (lazy).

        One instance per strategy: each carries that strategy's python
        executor as its fallback oracle, so a run-time fallback is the
        exact run the python backend would have produced.
        """
        if self._columnar_executor is None:
            self._columnar_executor = {}
        executor = self._columnar_executor.get(strategy)
        if executor is None:
            from repro.columnar.executor import ColumnarExecutor
            executor = ColumnarExecutor(oracle=executor_for(strategy))
            self._columnar_executor[strategy] = executor
        return executor

    def _prebuild_indexes(self, trie_layouts, columnar_layouts) -> None:
        """Warm registry indexes ahead of execution.

        ``trie_layouts`` / ``columnar_layouts`` are ``(relation, layout)``
        pairs.  Columnar layout failures (un-orderable mixed value
        domains) are swallowed here: the run itself falls back to the
        python oracle transparently, so prewarming must not fail first.
        """
        for relation_name, layout in sorted(trie_layouts):
            self._registry.trie(relation_name, layout)
        pairs = sorted(columnar_layouts)
        if pairs:
            try:
                self._registry.columnar_layouts(
                    [(pair, pair[0], pair[1]) for pair in pairs])
            except TypeError:
                pass

    def _sync_index_stats(self) -> None:
        if self._metrics is not None:
            built = self._registry.builds - self.stats.index_builds
            reused = self._registry.reuses - self.stats.index_reuses
            if built:
                self._m_index_events.inc(built, event="build")
            if reused:
                self._m_index_events.inc(reused, event="reuse")
            layout_built = (self._registry.layout_builds
                            - self._layout_builds_seen)
            if layout_built:
                self._m_layout_builds.inc(layout_built)
        self.stats.index_builds = self._registry.builds
        self.stats.index_reuses = self._registry.reuses
        self._layout_builds_seen = self._registry.layout_builds

    def clear_caches(self) -> None:
        """Drop plan and result caches and all registry indexes."""
        self._plans.clear()
        self._results.clear()
        dropped = self._registry.invalidate()
        self.stats.invalidations += dropped
        if self._metrics is not None and dropped:
            self._m_index_events.inc(dropped, event="invalidate")
        self._parse_cache.clear()
        self._canon_cache.clear()

    def __repr__(self) -> str:
        return (f"Engine({len(self._db)} relations, "
                f"{len(self._plans)} cached plans, "
                f"{len(self._results)} cached results, "
                f"{len(self._registry)} indexes)")
