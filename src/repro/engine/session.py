"""The :class:`Engine` session: build once, query many times.

An :class:`Engine` owns a :class:`Database` plus every piece of derived
state a single-shot call throws away:

* an :class:`IndexRegistry` that builds tries/hash indexes once and reuses
  them across queries (invalidated automatically on data mutation);
* a :class:`PlanCache` keyed on canonical query structure + a statistics
  fingerprint, so repeated or isomorphic queries skip parsing, acyclicity
  testing, the AGM LP and variable ordering;
* a result cache keyed on exact query form + the versions of the relations
  it reads, serving repeated identical queries on unchanged data instantly;
* a cost-based dispatcher (:mod:`repro.engine.cost`) choosing among naive,
  binary-plan, Generic-Join, Leapfrog and Yannakakis executors behind the
  single ``execute(query, mode=...)`` API.

Queries arrive through one declarative surface
(:class:`~repro.query.builder.Query` / ``Q`` builder / datalog text /
classical :class:`ConjunctiveQuery`, all interchangeable): projection
heads, constants in atoms, comparison selections, semiring aggregates with
group-by, ORDER BY and LIMIT.  The executors handle the join with
selections pushed below it, projection deduplicated early, and — when the
plan says so — the aggregates folded inside the join itself
(``aggregate_mode``) or the results enumerated directly in rank order
(``ranked_mode="anyk"``); this module layers the remaining stream-folds,
drain-and-heap ordering (heap-based top-k under LIMIT) and result
materialization on the streams they return.

Execution streams wherever the algorithm allows: for the WCOJ and naive
strategies, ``stream()`` yields result tuples straight out of the join
recursion and ``execute(..., limit=k)`` abandons the search after the k-th
tuple, so ``LIMIT`` queries never pay for the full join (the materializing
strategies — binary plans, Yannakakis — compute their result before
yielding; stream-folded aggregate queries must also drain first, while
in-recursion aggregate plans stream finalized group rows
group-at-a-time).  Ordered queries run in one of two *ranked modes*:
**any-k** plans (``ranked_mode="anyk"``) enumerate results in sort order
straight out of the join — the ranking-semiring frontier for the WCOJ
strategies, the annotated join tree for Yannakakis — so ``ORDER BY ...
LIMIT k`` stops after k results; **drain** plans enumerate the join and
heap-select the top-k.  Both yield the identical ranked prefix (ties are
broken by the full row).  ``execute_many`` plans a whole batch first and
prebuilds the shared indexes before running it.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.engine.cost import AGGREGATE_MODES, MODES, RANKED_MODES, dispatch
from repro.engine.executors import (
    executor_for,
    payload_aggregate_mode,
    payload_order,
    payload_ranked_mode,
    split_pushable_selections,
)
from repro.engine.fingerprint import CanonicalQuery, canonical_query
from repro.engine.plan_cache import CachedPlan, LRUCache, PlanCache
from repro.engine.registry import IndexRegistry
from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.query.builder import Query, sort_rows
from repro.query.semiring import fold_aggregates
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.statistics import statistics_fingerprint

#: Anything the engine accepts as a query (see ``Query.coerce``).
QueryLike = Any


@dataclass
class EngineStats:
    """Cumulative accounting of one engine session's cache behaviour.

    ``plan_hits``/``plan_misses`` count plan-cache lookups,
    ``result_hits``/``result_misses`` the result cache, and
    ``index_builds``/``index_reuses`` the index registry (a reuse is a
    registry hit, a build a miss).
    """

    queries: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    index_builds: int = 0
    index_reuses: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dictionary."""
        return asdict(self)

    def summary(self) -> str:
        """The hit/miss counters in one compact line (used by explain)."""
        return (f"plan {self.plan_hits} hit / {self.plan_misses} miss · "
                f"result {self.result_hits} hit / {self.result_misses} miss · "
                f"index {self.index_reuses} reused / {self.index_builds} built")

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EngineStats({parts})"


@dataclass(frozen=True, eq=False)  # identity hash: the dict field would
class Explanation:                 # make a generated __hash__ crash
    """What ``explain()`` reports: the plan, the bound, and the provenance.

    Attributes
    ----------
    query:
        The query, rendered as text.
    mode:
        The requested mode.
    strategy:
        The executor the dispatcher chose.
    acyclic:
        Whether the query hypergraph is alpha-acyclic.
    agm_log2:
        log2 of the AGM bound on the current statistics regime (from the
        plan-cache entry, i.e. computed when the plan was first optimized).
    costs:
        The dispatcher's per-strategy estimates (``inf`` = infeasible).
    variable_order:
        The WCOJ variable order (None for non-WCOJ strategies).
    canonical_form:
        The plan-cache key's structural component.
    plan_cache:
        ``"hit"`` or ``"miss"`` — whether planning work was skipped.
    result_cached:
        True when a current-version result for this exact query is cached.
    warm_indexes / cold_indexes:
        Registry index layouts this plan needs, split by whether they are
        already built for the current data versions.
    output_columns:
        The result schema (head variables then aggregate aliases).
    aggregates:
        Rendered aggregate heads (empty for non-aggregate queries).
    aggregate_mode:
        The resolved aggregate execution mode — ``"recursion"``
        (in-recursion semiring elimination / Yannakakis in-pass) or
        ``"fold"`` (drain-and-fold); None without aggregates.
    elimination:
        Per-variable elimination placement for in-recursion plans (which
        variables form the group prefix, which are folded away and at
        what depth), or a one-line description of the fold/in-pass
        placement.
    pushed_selections:
        Where each selection lands *below* the join (recursion depth for
        WCOJ, earliest covering atom for naive, filtered scan or
        first-covering pairwise join for the materializing strategies).
    residual_selections:
        Predicates applied after the join (none under the current
        executors, which push every predicate below or into the join;
        kept for forward compatibility).
    order_by / limit:
        Result-ordering and top-k controls carried by the query.
    ranked_mode:
        The resolved ranked execution mode for ordered queries —
        ``"anyk"`` (rank-ordered enumeration out of the join itself,
        stopping after LIMIT results) or ``"drain"`` (enumerate the join,
        heap-select the top-k); None without ORDER BY.
    session_stats:
        A snapshot of the engine's cache counters at explain time.
    """

    query: str
    mode: str
    strategy: str
    acyclic: bool
    agm_log2: float
    costs: dict[str, float]
    variable_order: tuple[str, ...] | None
    canonical_form: str
    plan_cache: str
    result_cached: bool
    warm_indexes: tuple[str, ...]
    cold_indexes: tuple[str, ...]
    output_columns: tuple[str, ...] = ()
    aggregates: tuple[str, ...] = ()
    aggregate_mode: str | None = None
    elimination: tuple[str, ...] = ()
    pushed_selections: tuple[str, ...] = ()
    residual_selections: tuple[str, ...] = ()
    order_by: tuple[str, ...] = ()
    limit: int | None = None
    ranked_mode: str | None = None
    session_stats: dict[str, int] | None = None

    @property
    def agm_bound(self) -> float:
        """The AGM bound as a plain number."""
        if self.agm_log2 == float("-inf"):
            return 0.0
        try:
            return 2.0 ** self.agm_log2
        except OverflowError:  # pragma: no cover - astronomically large bounds
            return float("inf")

    def render(self) -> str:
        """A human-readable multi-line report (used by the CLI)."""
        lines = [
            f"query:          {self.query}",
            f"strategy:       {self.strategy} (mode={self.mode})",
            f"acyclic:        {self.acyclic}",
            f"AGM bound:      {self.agm_bound:.6g} (log2 = {self.agm_log2:.4g})",
            "cost estimates: " + (", ".join(
                f"{name}={cost:.4g}" for name, cost in sorted(self.costs.items())
            ) if self.costs else "(skipped — forced mode)"),
        ]
        if self.variable_order is not None:
            lines.append(f"variable order: {' -> '.join(self.variable_order)}")
        if self.output_columns:
            lines.append(f"output:         ({', '.join(self.output_columns)})")
        if self.aggregates:
            lines.append(f"aggregates:     {', '.join(self.aggregates)}"
                         + (f" [{self.aggregate_mode}]"
                            if self.aggregate_mode else ""))
        if self.elimination:
            lines.append("elimination:")
            lines.extend(f"    {entry}" for entry in self.elimination)
        for label, entries in (("pushed below join", self.pushed_selections),
                               ("post-join filters", self.residual_selections)):
            if entries:
                lines.append(f"{label}:")
                lines.extend(f"    {entry}" for entry in entries)
        if self.order_by or self.limit is not None:
            order = ", ".join(self.order_by)
            pieces = []
            if order:
                pieces.append(f"ORDER BY {order}")
            if self.limit is not None:
                pieces.append(f"LIMIT {self.limit}")
            lines.append(f"order/limit:    {' '.join(pieces)}")
        if self.ranked_mode is not None:
            detail = ("any-k: rank-ordered enumeration out of the join, "
                      "stops after LIMIT results"
                      if self.ranked_mode == "anyk"
                      else "drain-and-heap: enumerate the join, "
                           "heap-select the top-k")
            lines.append(f"ranked mode:    {self.ranked_mode} ({detail})")
        lines.append(f"plan cache:     {self.plan_cache} "
                     f"[{self.canonical_form}]")
        lines.append(f"result cache:   "
                     f"{'warm' if self.result_cached else 'cold'}")
        if self.warm_indexes:
            lines.append("warm indexes:   " + ", ".join(self.warm_indexes))
        if self.cold_indexes:
            lines.append("cold indexes:   " + ", ".join(self.cold_indexes))
        if self.session_stats is not None:
            lines.append("session stats:  "
                         + EngineStats(**self.session_stats).summary())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _residual_tail_components(spec: Query, order: Sequence[str],
                              start: int) -> list[tuple[str, ...]]:
    """The tail's conditionally-independent components, as the executor
    splits them — the shared rule of
    :meth:`repro.query.hypergraph.Hypergraph.residual_components` with
    the query's selections as couplings, rendered in binding order."""
    position = {v: i for i, v in enumerate(order)}
    groups = spec.core.hypergraph().residual_components(
        order[:start],
        couplings=[sel.variables for sel in spec.all_selections])
    return [tuple(sorted(g, key=position.__getitem__))
            for g in sorted(groups, key=lambda g: min(position[v]
                                                      for v in g))]


@dataclass(frozen=True)
class _Prepared:
    """A query after planning: everything needed to run it."""

    query: Query
    mode: str
    canon: CanonicalQuery
    plan: CachedPlan
    payload: tuple | None  # plan payload in this query's vocabulary
    plan_provenance: str  # "hit" | "miss"


class Engine:
    """A persistent query-engine session over one database.

    Parameters
    ----------
    database:
        The catalog to serve queries against; a fresh empty one by default.
    relations:
        Convenience: relations to register into a fresh database (mutually
        exclusive with ``database``).
    plan_cache_size / result_cache_size:
        LRU capacities of the two caches.
    cache_results:
        Whether to cache materialized results keyed on data versions.
        Streaming (`stream`) never consults the result cache mid-flight.
    """

    def __init__(self, database: Database | None = None,
                 relations: Iterable[Relation] = (),
                 plan_cache_size: int = 256,
                 result_cache_size: int = 128,
                 cache_results: bool = True):
        if database is not None and tuple(relations):
            raise QueryError("pass either a database or relations, not both")
        self._db = database if database is not None else Database(relations)
        self._registry = IndexRegistry(self._db)
        self._plans = PlanCache(plan_cache_size)
        self._results = LRUCache(result_cache_size)
        self._cache_results = cache_results
        # Bounded like the plan cache: a long-lived session fed distinct
        # query strings must not grow without limit.
        self._parse_cache: LRUCache = LRUCache(plan_cache_size)
        self._canon_cache: LRUCache = LRUCache(plan_cache_size)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The underlying catalog (mutate it via the engine's methods)."""
        return self._db

    @property
    def registry(self) -> IndexRegistry:
        """The index registry (exposed for inspection and prewarming)."""
        return self._registry

    def add_relation(self, relation: Relation) -> None:
        """Register a new relation in the catalog."""
        self._db.add(relation)

    def replace_relation(self, relation: Relation) -> None:
        """Rebind a name to a new relation, invalidating derived state."""
        self._db.replace(relation)
        self.stats.invalidations += self._registry.invalidate(relation.name)
        # Version-tagged keys already make old results unreachable; evict
        # them eagerly so dead materialized relations don't pin memory
        # until capacity eviction (mirrors the registry's eager policy).
        self._results.evict_where(
            lambda key: any(name == relation.name for name, _ in key[1])
        )

    def insert(self, name: str, rows: Iterable[Sequence]) -> int:
        """Add tuples to a relation; returns how many were actually new.

        Relations are immutable, so this rebinds ``name`` to the union and
        bumps its version — every index and cached result derived from the
        old contents becomes unreachable.
        """
        old = self._db.get(name)
        added = {tuple(row) for row in rows}
        new_tuples = old.tuples | added
        grown = len(new_tuples) - len(old)
        if grown == 0:
            return 0  # idempotent load: keep warm indexes and results
        self.replace_relation(Relation(name, old.schema, new_tuples))
        return grown

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _normalize(self, query: QueryLike) -> Query:
        if isinstance(query, str):
            cached = self._parse_cache.get(query)
            if cached is None:
                cached = Query.coerce(query)
                self._parse_cache.put(query, cached)
            return cached
        return Query.coerce(query)

    def _canonical(self, query: Query) -> CanonicalQuery:
        canon = self._canon_cache.get(query)
        if canon is None:
            canon = canonical_query(query)
            self._canon_cache.put(query, canon)
        return canon

    def _prepare(self, query: QueryLike, mode: str,
                 aggregate_mode: str = "auto",
                 ranked_mode: str = "auto") -> _Prepared:
        if mode not in MODES:
            raise QueryError(
                f"unknown engine mode {mode!r}; expected one of {MODES}"
            )
        if aggregate_mode not in AGGREGATE_MODES:
            raise QueryError(
                f"unknown aggregate mode {aggregate_mode!r}; "
                f"expected one of {AGGREGATE_MODES}"
            )
        if ranked_mode not in RANKED_MODES:
            raise QueryError(
                f"unknown ranked mode {ranked_mode!r}; "
                f"expected one of {RANKED_MODES}"
            )
        query = self._normalize(query)
        if aggregate_mode != "auto" and not query.aggregates:
            raise QueryError(
                f"aggregate_mode={aggregate_mode!r} needs an aggregate query"
            )
        if ranked_mode != "auto" and not query.order_by:
            raise QueryError(
                f"ranked_mode={ranked_mode!r} needs an ORDER BY query"
            )
        if ranked_mode == "anyk" and query.aggregates:
            raise QueryError(
                "ranked_mode='anyk' does not apply to aggregate queries; "
                "their ordered output is the folded group stream"
            )
        canon = self._canonical(query)
        core = query.core
        fingerprint = statistics_fingerprint(
            self._db,
            [core.atoms[i].relation for i in canon.atom_order],
        )
        # The requested aggregate and ranked modes are plan axes like the
        # strategy mode: a plan resolved under "drain" must not serve an
        # "anyk" request (the cached payload's mode tag would disagree).
        key = (canon.form, fingerprint, mode,
               aggregate_mode if query.aggregates else "auto",
               ranked_mode if query.order_by else "auto")
        cached = self._plans.get(key)
        if cached is not None:
            self.stats.plan_hits += 1
            executor = executor_for(cached.strategy)
            payload = executor.payload_from_canonical(cached.payload, canon,
                                                      query)
            return _Prepared(query, mode, canon, cached, payload, "hit")

        self.stats.plan_misses += 1
        decision = dispatch(core, self._db, mode,
                            selections=query.all_selections,
                            aggregates=query.aggregates,
                            group=query.head_vars,
                            aggregate_mode=aggregate_mode,
                            order_by=query.order_by,
                            limit=query.limit,
                            ranked_mode=ranked_mode)
        executor = executor_for(decision.strategy)
        # The dispatcher already computed the greedy order while pricing the
        # binary strategy (and the aggregate-aware order while resolving the
        # aggregate mode) — reuse them so the plan run is the plan priced.
        if decision.strategy == "binary":
            payload: tuple | None = decision.binary_order
        elif decision.payload is not None:
            payload = decision.payload
        else:
            payload = executor.plan(query, self._db)
        plan = CachedPlan(
            strategy=decision.strategy,
            payload=executor.canonical_payload(payload, canon),
            acyclic=decision.acyclic,
            agm_log2=decision.agm.log2_bound,
            costs=tuple(sorted(decision.costs.items())),
        )
        self._plans.put(key, plan)
        return _Prepared(query, mode, canon, plan, payload, "miss")

    @staticmethod
    def _check_limit(limit: int | None) -> None:
        if limit is not None and limit < 0:
            raise QueryError(f"limit must be non-negative, got {limit}")

    @staticmethod
    def _effective_limit(query: Query, limit: int | None) -> int | None:
        """Combine the query's own LIMIT with the per-call one (min wins)."""
        if query.limit is None:
            return limit
        if limit is None:
            return query.limit
        return min(query.limit, limit)

    def _result_key(self, prepared: _Prepared) -> tuple:
        # Versions are listed in canonical atom order (like the statistics
        # fingerprint) so atom-permuted isomorphic queries share the key.
        atoms = prepared.query.core.atoms
        versions = tuple(
            (atoms[i].relation, self._db.version(atoms[i].relation))
            for i in prepared.canon.atom_order
        )
        return (prepared.canon.form, versions)

    def _serve_cached(self, prepared: _Prepared, cached: Relation) -> Relation:
        """Adapt a cached result to this query's vocabulary.

        Isomorphic queries share result-cache entries (the key is the
        canonical form), so the cached schema may use another query's
        variable names or aggregate aliases; positions line up by
        construction, making a rename sufficient — and cheap, since renames
        share the tuple set.
        """
        columns = prepared.query.output_columns
        if tuple(cached.attributes) != columns:
            cached = cached.rename(dict(zip(cached.attributes, columns)),
                                   name=prepared.query.name)
        elif cached.name != prepared.query.name:
            cached = cached.with_name(prepared.query.name)
        return cached

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: QueryLike, mode: str = "auto",
                limit: int | None = None,
                counter: OperationCounter | None = None,
                aggregate_mode: str = "auto",
                ranked_mode: str = "auto") -> Relation:
        """Evaluate a query and return its result relation.

        Parameters
        ----------
        query:
            A :class:`~repro.query.builder.Query`, a ``Q`` builder chain, a
            classical :class:`ConjunctiveQuery`, or datalog-style text
            (``"Q(A) :- R(A,B), S(B,5), A < B"``).
        mode:
            ``"auto"`` (cost-based dispatch) or a forced strategy name.
        aggregate_mode:
            How aggregate heads are evaluated: ``"auto"`` lets the
            dispatcher price in-recursion elimination against
            drain-and-fold per strategy, ``"recursion"`` forces the
            aggregation inside the join (in-recursion for the WCOJ
            strategies, in-pass for Yannakakis; restricting dispatch to
            strategies that support it), ``"fold"`` forces the
            join-then-fold route.  Only valid on aggregate queries.
        ranked_mode:
            How ordered (ORDER BY) results are produced: ``"auto"`` lets
            the dispatcher price any-k ranked enumeration against
            drain-and-heap per strategy (any-k wins when the query's
            LIMIT is small against the join envelope), ``"anyk"`` forces
            rank-ordered enumeration out of the join itself (WCOJ
            frontier / Yannakakis annotated join tree; restricting
            dispatch to strategies that support it; non-aggregate queries
            only), ``"drain"`` forces enumerate-then-heap-select.  Both
            modes return the identical ranked prefix.  Only valid on
            ordered queries.
        limit:
            Stop after this many result tuples; pushed down into the join
            recursion for WCOJ strategies (under any-k plans the ranked
            stream is truncated *after* ordering, never before) and
            combined (min) with the query's own ``LIMIT``.  Passing a
            *per-call* limit always runs the executor (bypassing the
            result cache, whose key does not encode it), so the same call
            returns the same deterministic enumeration prefix whether or
            not the cache is warm; a LIMIT carried by the query itself is
            part of the cache key and its results are cached normally.
        counter:
            Optional operation counter threaded through to the executor.
            Passing a counter bypasses the result cache: a cached answer
            costs no operations, which would make instrumented runs record
            zero work and verify bounds vacuously.
        """
        self._check_limit(limit)
        prepared = self._prepare(query, mode, aggregate_mode, ranked_mode)
        effective = self._effective_limit(prepared.query, limit)
        return self._execute_prepared(prepared, effective, counter,
                                      cacheable=limit is None)

    def _execute_prepared(self, prepared: _Prepared, limit: int | None,
                          counter: OperationCounter | None,
                          cacheable: bool) -> Relation:
        """The shared check-cache / run / materialize / fill-cache path.

        ``cacheable`` is False exactly when a *per-call* limit was passed:
        the result key does not encode it, so serving (or storing) would
        confuse differently-limited calls.  A LIMIT carried by the query
        itself is part of the canonical form — those results cache safely
        (the repeated top-k workload the ordered surface exists for).
        """
        self.stats.queries += 1
        cacheable = cacheable and self._cache_results and counter is None
        if cacheable:
            cached = self._results.get(self._result_key(prepared))
            if cached is not None:
                self.stats.result_hits += 1
                return self._serve_cached(prepared, cached)
            self.stats.result_misses += 1

        rows = self._run(prepared, counter, limit)
        result = Relation(prepared.query.name,
                          prepared.query.output_columns, rows)
        if cacheable:
            self._results.put(self._result_key(prepared), result)
        return result

    def stream(self, query: QueryLike, mode: str = "auto",
               limit: int | None = None,
               counter: OperationCounter | None = None,
               aggregate_mode: str = "auto",
               ranked_mode: str = "auto") -> Iterator[tuple]:
        """Lazily enumerate result tuples (over the output columns).

        For the WCOJ and naive strategies, abandoning the iterator abandons
        the remaining join search, so consuming k tuples costs only the
        work of finding k tuples — for in-recursion aggregate plans the
        tuples are finalized group rows, which stream group-at-a-time out
        of the recursion, and for any-k ranked plans they are head rows
        in exact ORDER BY order, so consuming k ordered tuples never pays
        for the full join.  The materializing strategies (binary plans,
        Yannakakis) compute their result before yielding the first tuple,
        and drain-ranked or stream-folded aggregate queries must drain
        the join first; ``limit`` then merely truncates the iteration
        (top-k for ordered queries — always applied *after* ordering).
        """
        self._check_limit(limit)
        prepared = self._prepare(query, mode, aggregate_mode, ranked_mode)
        limit = self._effective_limit(prepared.query, limit)
        self.stats.queries += 1
        return self._run(prepared, counter, limit)

    def execute_many(self, queries: Sequence[QueryLike],
                     mode: str = "auto", limit: int | None = None,
                     aggregate_mode: str = "auto",
                     ranked_mode: str = "auto") -> list[Relation]:
        """Evaluate a batch, sharing planning and index builds across it.

        All queries are planned first; the union of their index requests is
        built once (deduplicated by the registry); then each query runs.
        A non-default ``aggregate_mode`` (or ``ranked_mode``) applies to
        every query in the batch (so the batch must be all-aggregate, or
        all-ordered, to force one).
        """
        self._check_limit(limit)
        prepared = [self._prepare(q, mode, aggregate_mode, ranked_mode)
                    for q in queries]
        requested: set[tuple[str, tuple[str, ...]]] = set()
        for prep in prepared:
            executor = executor_for(prep.plan.strategy)
            for _, relation_name, layout in executor.index_requests(
                    prep.query, self._db, prep.payload):
                requested.add((relation_name, layout))
        for relation_name, layout in sorted(requested):
            self._registry.trie(relation_name, layout)
        self._sync_index_stats()
        return [
            self._execute_prepared(prep,
                                   self._effective_limit(prep.query, limit),
                                   None, cacheable=limit is None)
            for prep in prepared
        ]

    def explain(self, query: QueryLike, mode: str = "auto",
                aggregate_mode: str = "auto",
                ranked_mode: str = "auto") -> Explanation:
        """Plan the query (without executing) and report the evidence.

        Explaining warms the plan cache: a subsequent ``execute`` of the
        same query reports a plan-cache hit.
        """
        prepared = self._prepare(query, mode, aggregate_mode, ranked_mode)
        executor = executor_for(prepared.plan.strategy)
        warm: list[str] = []
        cold: list[str] = []
        seen_layouts: set[tuple[str, tuple[str, ...]]] = set()
        for _, relation_name, layout in executor.index_requests(
                prepared.query, self._db, prepared.payload):
            # Self-join atoms can request the same physical index; report
            # each (relation, layout) once — it is built once.
            if (relation_name, layout) in seen_layouts:
                continue
            seen_layouts.add((relation_name, layout))
            label = f"{relation_name}[{','.join(layout)}]"
            if self._registry.is_warm(relation_name, layout):
                warm.append(label)
            else:
                cold.append(label)
        result_cached = (self._cache_results
                         and self._result_key(prepared) in self._results)
        variable_order = (
            payload_order(prepared.payload)
            if prepared.plan.strategy in ("generic", "leapfrog") else None
        )
        pushed, residual = self._selection_placement(prepared)
        spec = prepared.query
        resolved_mode = (payload_aggregate_mode(prepared.payload)
                         or ("fold" if spec.aggregates else None))
        resolved_ranked = (payload_ranked_mode(prepared.payload)
                           or ("drain" if spec.order_by else None))
        return Explanation(
            query=str(spec),
            mode=mode,
            strategy=prepared.plan.strategy,
            acyclic=prepared.plan.acyclic,
            agm_log2=prepared.plan.agm_log2,
            costs=prepared.plan.cost_dict(),
            variable_order=variable_order,
            canonical_form=prepared.canon.form,
            plan_cache=prepared.plan_provenance,
            result_cached=result_cached,
            warm_indexes=tuple(warm),
            cold_indexes=tuple(cold),
            output_columns=spec.output_columns,
            aggregates=tuple(f"{a} AS {a.alias}" for a in spec.aggregates),
            aggregate_mode=resolved_mode,
            elimination=self._elimination_placement(prepared, resolved_mode),
            pushed_selections=pushed,
            residual_selections=residual,
            order_by=tuple(f"{c} DESC" if d else c for c, d in spec.order_by),
            limit=spec.limit,
            ranked_mode=resolved_ranked,
            session_stats=self.stats.as_dict(),
        )

    @staticmethod
    def _elimination_placement(prepared: _Prepared,
                               resolved_mode: str | None
                               ) -> tuple[str, ...]:
        """Where each variable is aggregated away, per strategy and mode."""
        spec = prepared.query
        if not spec.aggregates or resolved_mode is None:
            return ()
        strategy = prepared.plan.strategy
        kinds = ", ".join(sorted({a.kind.upper() for a in spec.aggregates}))
        if resolved_mode == "fold":
            return (f"all variables enumerated; {kinds} folded over the "
                    "streamed join output (stream-fold)",)
        if strategy in ("generic", "leapfrog"):
            order = payload_order(prepared.payload)
            group = set(spec.head_vars)
            start = max((order.index(g) for g in group), default=-1) + 1
            lines = []
            for depth in range(start):
                role = ("group-by" if order[depth] in group
                        else "constant-pinned")
                lines.append(f"{order[depth]} — {role} prefix "
                             f"(depth {depth})")
            # A plus-only (product-less) aggregate semiring keeps the
            # eliminator monolithic; reporting a component split it
            # cannot execute would misdescribe the plan.
            can_factorize = all(a.semiring().has_product
                                for a in spec.aggregates)
            components = (_residual_tail_components(spec, order, start)
                          if can_factorize and start < len(order) else [])
            component_of = {v: i for i, comp in enumerate(components)
                            for v in comp}
            for depth in range(start, len(order)):
                line = (f"{order[depth]} — eliminated in-recursion at depth "
                        f"{depth}, folded into {kinds}")
                if len(components) > 1:
                    line += (f" (component "
                             f"{component_of[order[depth]] + 1}"
                             f"/{len(components)})")
                lines.append(line)
            if len(components) > 1:
                rendered = "; ".join("{" + ", ".join(comp) + "}"
                                     for comp in components)
                lines.append(
                    f"tail factorizes into {len(components)} independent "
                    f"components ({rendered}); per-component memoized "
                    "folds combine with the semiring product"
                )
            if not lines:
                lines.append(f"no variables to eliminate; {kinds} folded "
                             "per full binding")
            return tuple(lines)
        if strategy == "yannakakis":
            non_group = [v for v in spec.core.variables
                         if v not in set(spec.head_vars)]
            return (
                f"{', '.join(non_group) or '(nothing)'} — aggregated away "
                f"during the join-tree passes (semiring product at joins, "
                f"{kinds} fold at projections)",
            )
        return ()

    @staticmethod
    def _selection_placement(prepared: _Prepared
                             ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Where each selection lands relative to the join, per strategy."""
        spec = prepared.query
        if not spec.all_selections:
            return (), ()
        strategy = prepared.plan.strategy
        core = spec.core
        if strategy in ("generic", "leapfrog"):
            order = payload_order(prepared.payload)
            position = {v: i for i, v in enumerate(order)}
            pushed = tuple(
                f"{sel} — pruned at depth "
                f"{max(position[v] for v in sel.variables)} "
                f"(variable {order[max(position[v] for v in sel.variables)]}"
                f") of the join recursion"
                for sel in spec.all_selections
            )
            return pushed, ()
        if strategy == "naive":
            covered: set[str] = set()
            placements = []
            pending = list(spec.all_selections)
            for i, atom in enumerate(core.atoms):
                covered |= atom.variable_set
                for sel in list(pending):
                    if sel.variables <= covered:
                        placements.append(
                            f"{sel} — pruned at atom {i} ({atom})")
                        pending.remove(sel)
            return tuple(placements), ()
        per_atom, residual = split_pushable_selections(spec)
        pushed = tuple(
            f"{sel} — filtered into the scan of {core.atoms[i].relation}"
            for i, sels in enumerate(per_atom) for sel in sels
        ) + tuple(
            f"{sel} — applied during the pairwise joins, at the first "
            "join binding both sides"
            for sel in residual
        )
        return pushed, ()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run(self, prepared: _Prepared, counter: OperationCounter | None,
             limit: int | None = None) -> Iterator[tuple]:
        """Stream output rows: join → aggregate fold → order → limit.

        In-recursion aggregate plans skip the fold stage entirely: the
        executor's stream already carries finalized group rows straight
        out of the join recursion (or Yannakakis' join-tree passes).
        Any-k ranked plans skip the sort stage the same way: the stream
        is already in ORDER BY order, so the (min-merged per-call/query)
        ``limit`` truncates it — ordering always happens before any
        limit is applied, whichever mode produced the ordering.
        """
        spec = prepared.query
        executor = executor_for(prepared.plan.strategy)
        rows = executor.stream(spec, self._db, prepared.payload,
                               registry=self._registry, counter=counter)
        self._sync_index_stats()
        if spec.aggregates and not executor.handles_aggregation(
                spec, prepared.payload):
            rows = fold_aggregates(rows, spec.core.variables,
                                   spec.head_vars, spec.aggregates)
        if spec.order_by and not executor.handles_ordering(
                spec, prepared.payload):
            return iter(sort_rows(rows, spec.output_columns, spec.order_by,
                                  limit=limit))
        if limit is not None:
            return itertools.islice(rows, limit)
        return rows

    def _sync_index_stats(self) -> None:
        self.stats.index_builds = self._registry.builds
        self.stats.index_reuses = self._registry.reuses

    def clear_caches(self) -> None:
        """Drop plan and result caches and all registry indexes."""
        self._plans.clear()
        self._results.clear()
        self.stats.invalidations += self._registry.invalidate()
        self._parse_cache.clear()
        self._canon_cache.clear()

    def __repr__(self) -> str:
        return (f"Engine({len(self._db)} relations, "
                f"{len(self._plans)} cached plans, "
                f"{len(self._results)} cached results, "
                f"{len(self._registry)} indexes)")
