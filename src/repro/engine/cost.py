"""Cost-based algorithm dispatch: the engine's answer to Open Problem 8.

The paper's Open Problem 8 asks for a principled optimizer choosing between
pairwise plans and WCOJ execution.  A full answer needs new theory; what a
practical engine can do today is combine the quantities the theory *does*
provide — the AGM bound as the WCOJ runtime envelope, acyclicity as the
license for Yannakakis' output-linear algorithm, and textbook
distinct-count estimates for pairwise intermediates — into one comparable
"estimated operations" scale per strategy:

* ``naive``     — the product of the relation sizes (wins only for
  single-atom scans and tiny inputs);
* ``binary``    — greedy left-deep simulation with *pessimistic*
  (degree-based, worst-case) intermediate estimates: each join can grow the
  intermediate by at most the joined relation's maximum degree on the
  shared variables.  Worst-case estimation is what makes the dispatcher
  sound on skew — independence-style estimates are exactly what the
  "skew strikes back" instances fool;
* ``generic`` / ``leapfrog`` — index build plus the AGM bound, the
  worst-case optimal envelope (the constants separating the two reflect
  hashing vs galloping in this pure-Python setting);
* ``yannakakis`` — input-linear semijoin passes plus a discounted output
  term; only *feasible* for alpha-acyclic queries.

These are heuristics on top of exact theory: the AGM term is a worst case,
not an expectation, and the binary estimates assume independence.  The
dispatcher therefore reports every estimate it computed so ``explain()``
can show its work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bounds.agm import AGMBound, agm_bound
from repro.errors import QueryError
from repro.joins.binary_plans import greedy_atom_order
from repro.query.atoms import ConjunctiveQuery
from repro.query.decomposition import is_alpha_acyclic
from repro.relational.database import Database
from repro.relational.statistics import degree

#: All executor strategies, in dispatch tie-break preference order.
STRATEGIES = ("generic", "leapfrog", "yannakakis", "binary", "naive")

#: Accepted values for ``Engine.execute(..., mode=...)``.
MODES = ("auto",) + STRATEGIES

#: Cap applied to every estimate so products cannot overflow comparisons.
_COST_CAP = 1e30

# Calibrated constants for this pure-Python implementation: hash-probe
# intersections (Generic-Join) run a little cheaper per element than bisect
# galloping (Leapfrog); either WCOJ engine pays one index-build pass.
_GENERIC_FACTOR = 2.0
_LEAPFROG_FACTOR = 2.5
_YANNAKAKIS_PASSES = 2.0
_YANNAKAKIS_OUTPUT_DISCOUNT = 0.25


@dataclass(frozen=True)
class DispatchDecision:
    """The dispatcher's choice and the evidence behind it.

    Attributes
    ----------
    strategy:
        The chosen executor name.
    acyclic:
        Whether the query hypergraph is alpha-acyclic.
    agm:
        The AGM bound on the given database.
    costs:
        Estimated operation counts per strategy (``inf`` = infeasible).
        Empty for forced modes, which skip the estimation work.
    binary_order:
        The greedy atom order the cost simulation priced — reused as the
        binary executor's plan so the plan run is the plan priced.  None
        when the binary strategy was neither priced nor chosen.
    """

    strategy: str
    acyclic: bool
    agm: AGMBound
    costs: dict[str, float]
    binary_order: tuple[int, ...] | None


def _capped(value: float) -> float:
    return min(value, _COST_CAP)


def _join_growth(query: ConjunctiveQuery, atom_index: int,
                 covered: set[str], size: int, database: Database) -> float:
    """Worst-case growth factor of joining atom ``atom_index`` into an
    intermediate covering ``covered``: the relation's maximum degree on the
    shared variables (``deg(everything else | shared)``)."""
    atom = query.atoms[atom_index]
    relation = database.get(atom.relation)
    shared_cols = [relation.attributes[p]
                   for p, v in enumerate(atom.variables) if v in covered]
    new_cols = [relation.attributes[p]
                for p, v in enumerate(atom.variables) if v not in covered]
    if not shared_cols:
        return float(max(size, 1))  # cartesian product
    if not new_cols:
        return 1.0  # semijoin-shaped: the intermediate cannot grow
    return float(max(1, degree(relation, shared_cols, new_cols)))


def _binary_cost(query: ConjunctiveQuery, database: Database,
                 sizes: dict[int, int], order: tuple[int, ...]) -> float:
    """Simulate the greedy left-deep plan with pessimistic estimates.

    Walks exactly the :func:`repro.joins.binary_plans.greedy_atom_order`
    the binary executor would run; each join's output is bounded by the
    current intermediate times the joined relation's max degree on the
    shared variables — a quantity the data actually achieves in the worst
    case, so skewed instances (where independence assumptions collapse) are
    priced honestly.  The cost charged is the materialized read+write work
    of every intermediate.
    """
    first, rest = order[0], order[1:]
    current_size = float(sizes[first])
    covered = set(query.atoms[first].variables)
    cost = current_size
    for chosen in rest:
        growth = _join_growth(query, chosen, covered, sizes[chosen], database)
        estimate = _capped(current_size * growth)
        cost = _capped(cost + current_size + sizes[chosen] + estimate)
        covered |= set(query.atoms[chosen].variables)
        current_size = max(estimate, 1.0)
    return cost


def _selected_size(query: ConjunctiveQuery, atom_index: int,
                   database: Database, selections) -> int:
    """The atom's scan size after pushing its single-atom selections.

    Counts the tuples surviving every selection whose variables all live in
    this atom (the filters every executor pushes below the join), so the
    dispatcher prices selective constants honestly instead of assuming full
    scans.
    """
    atom = query.atoms[atom_index]
    relation = database.get(atom.relation)
    applicable = [s for s in selections if s.variables <= atom.variable_set]
    if not applicable:
        return len(relation)
    positions = {v: p for p, v in enumerate(atom.variables)}
    count = 0
    for tup in relation:
        binding = {v: tup[p] for v, p in positions.items()}
        if all(s.evaluate(binding) for s in applicable):
            count += 1
    return count


def estimate_costs(query: ConjunctiveQuery, database: Database,
                   agm: AGMBound, acyclic: bool,
                   binary_order: tuple[int, ...] | None = None,
                   selections=()) -> dict[str, float]:
    """Estimated operation counts for every strategy on this instance.

    ``binary_order`` lets the dispatcher share one greedy-order computation
    between pricing and planning; it is recomputed when omitted.
    ``selections`` (rich-query predicates) shrink the per-atom scan sizes
    for the strategies that push them below the join; the AGM term stays on
    the unfiltered statistics — it is a sound worst-case envelope either
    way.
    """
    sizes = {i: _selected_size(query, i, database, selections)
             for i, atom in enumerate(query.atoms)}
    total = float(sum(sizes.values()))
    bound = _capped(agm.bound)
    if binary_order is None:
        binary_order = greedy_atom_order(query, database)

    naive = 1.0
    for size in sizes.values():
        naive = _capped(naive * max(size, 1))

    costs = {
        "naive": naive,
        "binary": _binary_cost(query, database, sizes, binary_order),
        "generic": _capped(total + _GENERIC_FACTOR * bound),
        "leapfrog": _capped(total + _LEAPFROG_FACTOR * bound),
        "yannakakis": (
            _capped(_YANNAKAKIS_PASSES * total
                    + _YANNAKAKIS_OUTPUT_DISCOUNT * bound)
            if acyclic else math.inf
        ),
    }
    return costs


def dispatch(query: ConjunctiveQuery, database: Database,
             mode: str = "auto", selections=()) -> DispatchDecision:
    """Choose an executor for the query (or validate a forced choice).

    Parameters
    ----------
    mode:
        ``"auto"`` picks the cheapest feasible strategy; any strategy name
        forces it (raising :class:`QueryError` when infeasible, e.g.
        ``"yannakakis"`` on a cyclic query).  Forced modes skip the cost
        estimation (the per-join degree scans in particular), paying only
        the acyclicity test and the AGM LP that ``explain()`` reports.
    selections:
        Rich-query comparison predicates; single-atom ones shrink the
        per-atom scan estimates (every executor pushes them below the
        join).
    """
    if mode not in MODES:
        raise QueryError(f"unknown engine mode {mode!r}; expected one of {MODES}")
    acyclic = is_alpha_acyclic(query.hypergraph())
    bound = agm_bound(query, database)

    if mode == "auto":
        binary_order = greedy_atom_order(query, database)
        costs = estimate_costs(query, database, bound, acyclic,
                               binary_order=binary_order,
                               selections=selections)
        strategy = min(STRATEGIES,
                       key=lambda s: (costs[s], STRATEGIES.index(s)))
    else:
        strategy = mode
        if strategy == "yannakakis" and not acyclic:
            raise QueryError(
                f"strategy {strategy!r} is infeasible for query {query.name!r} "
                f"(cyclic query?); use mode='auto' or a WCOJ mode"
            )
        binary_order = (greedy_atom_order(query, database)
                        if strategy == "binary" else None)
        costs = {}
    return DispatchDecision(strategy=strategy, acyclic=acyclic, agm=bound,
                            costs=costs, binary_order=binary_order)
