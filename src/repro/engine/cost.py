"""Cost-based algorithm dispatch: the engine's answer to Open Problem 8.

The paper's Open Problem 8 asks for a principled optimizer choosing between
pairwise plans and WCOJ execution.  A full answer needs new theory; what a
practical engine can do today is combine the quantities the theory *does*
provide — the AGM bound as the WCOJ runtime envelope, acyclicity as the
license for Yannakakis' output-linear algorithm, and textbook
distinct-count estimates for pairwise intermediates — into one comparable
"estimated operations" scale per strategy:

* ``naive``     — the product of the relation sizes (wins only for
  single-atom scans and tiny inputs);
* ``binary``    — greedy left-deep simulation with *pessimistic*
  (degree-based, worst-case) intermediate estimates: each join can grow the
  intermediate by at most the joined relation's maximum degree on the
  shared variables.  Worst-case estimation is what makes the dispatcher
  sound on skew — independence-style estimates are exactly what the
  "skew strikes back" instances fool;
* ``generic`` / ``leapfrog`` — index build plus the WCOJ envelope (the
  constants separating the two reflect hashing vs galloping in this
  pure-Python setting);
* ``yannakakis`` — input-linear semijoin passes plus a discounted output
  term; only *feasible* for alpha-acyclic queries;
* ``hybrid``    — heavy/light partition on the most skewed variable
  (threshold = sqrt of the largest touched relation): two partition
  passes, a semijoin-priced heavy side (few distinct keys amortize), and
  a generic-join light side whose envelope the partition's own degree
  bound sharpens.  Only *feasible* when some value actually exceeds the
  threshold — on uniform-degree data the split degenerates and a pure
  strategy is strictly better.

Two refinements sharpen the envelope beyond the raw AGM bound:

* **selectivity**: when the query carries selections, the envelope is the
  degree-aware output-size bound of the *filtered* instance (single-atom
  predicates applied to the scans, :mod:`repro.bounds.degree_aware`),
  taken against the unfiltered AGM bound with ``min`` — selective
  constants therefore shrink the WCOJ estimate, not just the scan terms;
* **aggregation**: aggregate queries are priced in both execution modes —
  *stream-fold* (drain the join, fold the output; join-linear) and
  *in-recursion* (FAQ-style variable elimination with component
  factorization; bounded by ``N^faq-width`` where the width is the
  **maximum residual-component width** of the aggregate-aware order, not
  the monolithic tail width — the eliminators fold
  conditionally-independent tail components separately, so that is the
  exponent actually paid) — and the dispatcher resolves the mode per
  strategy, reporting both estimates so ``explain()`` can show the
  comparison;
* **ranked enumeration**: ordered non-aggregate queries are priced in both
  ranked modes — *drain-and-heap* (full join plus a heap top-k) and
  *any-k* (the bottom-up best-suffix DP, bounded by ``N^width`` of the
  ranked order, plus one frontier delay per surfaced result) — so
  ``ORDER BY ... LIMIT k`` with small k dispatches to the k-sensitive
  envelope instead of paying for the whole join.

These are heuristics on top of exact theory: the AGM term is a worst case,
not an expectation, and the binary estimates assume independence.  The
dispatcher therefore reports every estimate it computed so ``explain()``
can show its work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.bounds.agm import AGMBound, agm_bound
from repro.bounds.degree_aware import output_size_bound
from repro.columnar import unsupported_reason as columnar_unsupported_reason
from repro.constraints.degree import constraints_from_database
from repro.engine.executors import filtered_instance
from repro.errors import QueryError
from repro.joins.binary_plans import greedy_atom_order
from repro.joins.hybrid import partition_instance, residual_query
from repro.query.atoms import ConjunctiveQuery
from repro.query.decomposition import is_alpha_acyclic
from repro.query.semiring import Aggregate
from repro.query.terms import Comparison
from repro.query.variable_order import (
    aggregate_elimination_order,
    ranked_order,
    skew_split,
)
from repro.relational.database import Database
from repro.relational.statistics import degree

#: All executor strategies, in dispatch tie-break preference order.
#: ``hybrid`` (heavy/light partitioned sub-plans) is last: on a cost tie
#: a pure strategy wins, since the hybrid only exists to undercut both.
STRATEGIES = ("generic", "leapfrog", "yannakakis", "binary", "naive",
              "hybrid")

#: Accepted values for ``Engine.execute(..., mode=...)``.
MODES = ("auto",) + STRATEGIES

#: Accepted values for ``Engine.execute(..., aggregate_mode=...)``:
#: ``recursion`` forces in-recursion / in-pass semiring aggregation,
#: ``fold`` forces drain-and-fold over the streamed join, ``auto`` prices
#: both and picks per strategy.
AGGREGATE_MODES = ("auto", "recursion", "fold")

#: Accepted values for ``Engine.execute(..., ranked_mode=...)``:
#: ``anyk`` forces any-k ranked enumeration for ordered queries (emit in
#: sort order straight out of the join, stopping after LIMIT results),
#: ``drain`` forces drain-and-heap (enumerate the join, heap-select the
#: top-k), ``auto`` prices the k-sensitive any-k envelope against the
#: full-join envelope per strategy.
RANKED_MODES = ("auto", "anyk", "drain")

#: Strategies that can evaluate aggregates inside the join itself (the
#: WCOJ recursions eliminate in-recursion; Yannakakis aggregates during
#: its join-tree passes, which additionally needs product semirings).
RECURSION_CAPABLE = ("generic", "leapfrog", "yannakakis")

#: Strategies that can enumerate ordered results in rank order (any-k):
#: the WCOJ recursions host the ranking-semiring frontier, Yannakakis the
#: annotated join-tree expansion.  Aggregate queries always drain — their
#: ordered output is the (small) group-row stream, not the join.
ANYK_CAPABLE = ("generic", "leapfrog", "yannakakis")

#: Accepted values for ``Engine.execute(..., backend=...)``: ``python``
#: (the default — the pure-Python reference oracle), ``columnar`` (sorted
#: NumPy layouts + batched galloping; transparently falls back to python
#: for unsupported features), ``auto`` (pick by priced envelope).
BACKENDS = ("python", "columnar", "auto")

#: Strategies the columnar backend can execute (the two WCOJ recursions —
#: the columnar runtime *is* a batched variable-at-a-time recursion, so
#: naive/binary/Yannakakis plans have no columnar form).
COLUMNAR_CAPABLE = ("generic", "leapfrog")

#: Cap applied to every estimate so products cannot overflow comparisons.
_COST_CAP = 1e30

# Calibrated constants for this pure-Python implementation: hash-probe
# intersections (Generic-Join) run a little cheaper per element than bisect
# galloping (Leapfrog); either WCOJ engine pays one index-build pass.
_GENERIC_FACTOR = 2.0
_LEAPFROG_FACTOR = 2.5
_YANNAKAKIS_PASSES = 2.0
_YANNAKAKIS_OUTPUT_DISCOUNT = 0.25
# The columnar backend runs the same recursion batched through NumPy: the
# per-operation constant drops by roughly this factor (calibrated on the
# triangle/star benchmarks, where measured speedups are 20-100x; priced
# conservatively so the axis decides backend, never the envelope shape).
_COLUMNAR_FACTOR = 0.05


@dataclass(frozen=True)
class DispatchDecision:
    """The dispatcher's choice and the evidence behind it.

    Attributes
    ----------
    strategy:
        The chosen executor name.
    acyclic:
        Whether the query hypergraph is alpha-acyclic.
    agm:
        The AGM bound on the given database (unfiltered — the classical
        envelope ``explain()`` reports).
    costs:
        Estimated operation counts per strategy (``inf`` = infeasible).
        Empty for forced modes, which skip the estimation work.  For
        aggregate queries the informational ``agg[recursion]`` /
        ``agg[fold]`` entries record the two execution-mode envelopes the
        dispatcher compared.
    binary_order:
        The greedy atom order the cost simulation priced — reused as the
        binary executor's plan so the plan run is the plan priced.  None
        when the binary strategy was neither priced nor chosen.
    aggregate_mode:
        The resolved aggregate execution mode for the chosen strategy
        (``"recursion"`` / ``"fold"``); None for non-aggregate queries.
    ranked_mode:
        The resolved ranked execution mode for the chosen strategy
        (``"anyk"`` / ``"drain"``); None for unordered queries.
    payload:
        The plan payload for the chosen strategy when the dispatcher
        already computed it (the mode-tagged aggregate order for WCOJ
        strategies, the mode tag for Yannakakis) — reused by the engine so
        the plan run is the plan priced.  None when the executor's own
        ``plan()`` should be used.
    faq_width:
        The fractional-hypertree width of the aggregate-aware variable
        order — the maximum over the tail's residual components, which
        is what the factorized eliminator pays (the FAQ-width proxy
        priced for in-recursion mode); None for non-aggregate queries.
    backend:
        The resolved execution backend: ``"python"`` (reference oracle)
        or ``"columnar"`` (sorted NumPy layouts).  In auto pricing the
        comparison is recorded in the ``backend[python]`` /
        ``backend[columnar]`` cost entries.
    backend_fallback:
        When a non-default backend was requested but the plan resolved to
        python anyway, the reason (unsupported feature, incapable
        strategy, or pricing); None otherwise.
    """

    strategy: str
    acyclic: bool
    agm: AGMBound
    costs: dict[str, float]
    binary_order: tuple[int, ...] | None
    aggregate_mode: str | None = None
    ranked_mode: str | None = None
    payload: tuple | None = None
    faq_width: float | None = None
    backend: str = "python"
    backend_fallback: str | None = None


def _capped(value: float) -> float:
    return min(value, _COST_CAP)


def _join_growth(query: ConjunctiveQuery, atom_index: int,
                 covered: set[str], size: int, database: Database) -> float:
    """Worst-case growth factor of joining atom ``atom_index`` into an
    intermediate covering ``covered``: the relation's maximum degree on the
    shared variables (``deg(everything else | shared)``)."""
    atom = query.atoms[atom_index]
    relation = database.get(atom.relation)
    shared_cols = [relation.attributes[p]
                   for p, v in enumerate(atom.variables) if v in covered]
    new_cols = [relation.attributes[p]
                for p, v in enumerate(atom.variables) if v not in covered]
    if not shared_cols:
        return float(max(size, 1))  # cartesian product
    if not new_cols:
        return 1.0  # semijoin-shaped: the intermediate cannot grow
    return float(max(1, degree(relation, shared_cols, new_cols)))


def _binary_cost(query: ConjunctiveQuery, database: Database,
                 sizes: dict[int, int], order: tuple[int, ...]) -> float:
    """Simulate the greedy left-deep plan with pessimistic estimates.

    Walks exactly the :func:`repro.joins.binary_plans.greedy_atom_order`
    the binary executor would run; each join's output is bounded by the
    current intermediate times the joined relation's max degree on the
    shared variables — a quantity the data actually achieves in the worst
    case, so skewed instances (where independence assumptions collapse) are
    priced honestly.  The cost charged is the materialized read+write work
    of every intermediate.
    """
    first, rest = order[0], order[1:]
    current_size = float(sizes[first])
    covered = set(query.atoms[first].variables)
    cost = current_size
    for chosen in rest:
        growth = _join_growth(query, chosen, covered, sizes[chosen], database)
        estimate = _capped(current_size * growth)
        cost = _capped(cost + current_size + sizes[chosen] + estimate)
        covered |= set(query.atoms[chosen].variables)
        current_size = max(estimate, 1.0)
    return cost


def selection_envelope(query: ConjunctiveQuery, database: Database,
                       selections: Sequence[Comparison], agm: AGMBound
                       ) -> tuple[dict[int, int], float]:
    """Filtered per-atom scan sizes and the sharpened WCOJ envelope.

    Single-atom selections are applied to the scans (every executor pushes
    them below the join), and the WCOJ envelope becomes the degree-aware
    worst-case output bound of that *filtered* instance
    (:func:`repro.bounds.degree_aware.output_size_bound`) — taken with
    ``min`` against the unfiltered AGM bound, it is still a sound worst
    case but no longer ignores the selectivity the executors exploit.
    Data-derived degree constraints (single-variable conditioning) are
    tried first; when their dependency graph is cyclic — where only the
    exponential polymatroid LP would apply — the envelope falls back to
    the plain AGM bound of the filtered instance (still taken with
    ``min`` against the unfiltered AGM bound), keeping planning cheap.

    An empty scan — a relation with no tuples, or one a selection
    filters out entirely — forces an empty join: the envelope is exactly
    zero, returned directly instead of routing a ``log2 0`` through the
    degree-constraint LPs (which must special-case it) or silently
    falling back to a pessimistic non-zero bound.
    """
    derived_query, derived_db, _residual = filtered_instance(
        query, selections, database)
    sizes = {i: len(derived_db.get(atom.relation))
             for i, atom in enumerate(derived_query.atoms)}
    if any(size == 0 for size in sizes.values()):
        return sizes, 0.0
    if derived_db is database:
        return sizes, _capped(agm.bound)
    dc = constraints_from_database(derived_query, derived_db, max_key_size=1)
    if dc.is_acyclic():
        sharpened = output_size_bound(derived_query, derived_db, dc=dc).bound
    else:
        sharpened = output_size_bound(derived_query, derived_db).bound
    return sizes, _capped(min(agm.bound, sharpened))


def plan_aggregation(query: ConjunctiveQuery,
                     selections: Sequence[Comparison],
                     aggregates: Sequence[Aggregate],
                     group: Sequence[str]) -> dict:
    """The aggregate-aware order and the facts mode resolution needs.

    Returns a dict with the binding ``order`` (constant-pinned variables,
    then the group prefix, then the width-minimizing elimination tail,
    chosen and priced per residual component), its fractional-hypertree
    ``width`` — the *maximum component width*, the exponent of the
    factorized eliminator's exact FAQ bound — whether any variable is
    actually eliminated (``has_elimination``), and whether every
    aggregate's semiring carries a product (``product_ok`` — the
    precondition for Yannakakis' in-pass mode).
    """
    fixed = {sel.lhs for sel in selections
             if getattr(sel, "is_constant_equality", False)}
    # Without product semirings the eliminator cannot combine component
    # values, so the order and width must be those of the monolithic
    # fold — pricing the factorized exponent would promise a bound the
    # executor cannot achieve.
    product_ok = all(a.semiring().has_product for a in aggregates)
    order, width = aggregate_elimination_order(query, group=group,
                                               fixed=fixed,
                                               selections=selections,
                                               factorize=product_ok)
    return {
        "order": order,
        "width": width,
        "has_elimination": bool(set(query.variables) - set(group)),
        "product_ok": product_ok,
    }


def plan_ranked(query: ConjunctiveQuery, selections: Sequence[Comparison],
                order_by: Sequence[tuple[str, bool]],
                head: Sequence[str]) -> dict:
    """The any-k binding order and the facts ranked-mode resolution needs.

    ``order_by`` holds the query's ``(variable, descending)`` sort keys
    (non-aggregate queries only — ORDER BY columns are head variables
    there).  Returns a dict with the binding ``order`` (pinned variables,
    the sort keys in key sequence, the remaining head, then the
    width-minimizing existential tail), its fractional-hypertree
    ``width`` (the proxy for the bottom-up best-suffix DP's cost), and
    the normalized ``keys``.
    """
    fixed = {sel.lhs for sel in selections
             if getattr(sel, "is_constant_equality", False)}
    keys = tuple((variable, bool(descending))
                 for variable, descending in order_by)
    order, width = ranked_order(query, [v for v, _d in keys],
                                fixed=fixed, head=head,
                                selections=selections)
    return {"order": order, "width": width, "keys": keys}


def plan_hybrid(query: ConjunctiveQuery, database: Database) -> dict:
    """The skew facts behind a hybrid heavy/light plan.

    Returns a dict with the chosen skew ``variable``, the
    |R|^(1/2)-style degree ``threshold``, the observed ``max_degree``,
    whether the instance is ``skewed`` at all (some value exceeds the
    threshold — the feasibility gate: on uniform-degree data both sides
    of the split collapse and a pure strategy is strictly better), and
    the per-side strategies.  The heavy side runs *per-key residual*
    Yannakakis sub-plans whenever binding the skew variable leaves an
    acyclic residual (a triangle's residual is a 2-path, a 4-cycle's a
    3-path — this is where binding the few heavy keys buys structure,
    not just cardinality); only a cyclic residual falls back to one
    whole-side binary sub-plan.  The bounded-degree light residual
    always runs generic join.
    """
    variable, threshold, max_degree = skew_split(query, database)
    residual = residual_query(query, variable)
    residual_acyclic = (residual is None
                        or is_alpha_acyclic(residual.hypergraph()))
    return {
        "variable": variable,
        "threshold": threshold,
        "max_degree": max_degree,
        "skewed": max_degree > threshold,
        "heavy_strategy": "yannakakis" if residual_acyclic else "binary",
        "light_strategy": "generic",
    }


def _hybrid_costs(query: ConjunctiveQuery, database: Database,
                  hybrid_plan: dict) -> tuple[float, float, float] | None:
    """(partition, heavy-side, light-side) cost terms, or None.

    The partition term is the two heavy/light scan passes over every
    touched relation.  The heavy side binds one of at most
    ``sum |R_i| / t`` distinct skew keys.  Under per-key residual
    Yannakakis sub-plans its cost is honest arithmetic, not an envelope:
    the touched restrictions are scanned once *in total* across keys
    (they partition the heavy tuples), while each relation the skew
    variable does not touch is scanned once per key — so the price is
    the semijoin passes over ``heavy_total + n_keys * untouched``
    (output is charged by the engine's stream itself).  A cyclic
    residual instead prices the one whole-side binary sub-plan with the
    same pessimistic greedy simulation pure binary gets.  The light
    side is priced like generic join, but its envelope is sharpened by
    the degree constraints the partition just *created* — every touched
    relation's per-key degree is <= t — via the degree-aware output
    bound; on skewed data heavy + light undercut the full instance's
    AGM term, which is the whole case for the hybrid.  None when either
    side is empty: a degenerate split means a pure strategy already
    does the same work without the partition passes.
    """
    part = partition_instance(query, database, hybrid_plan["variable"],
                              hybrid_plan["threshold"])
    if part.heavy_total == 0 or part.light_total == 0:
        return None
    partition_cost = 2.0 * float(part.heavy_total + part.light_total)
    if hybrid_plan["heavy_strategy"] == "yannakakis":
        untouched = float(sum(
            len(part.heavy_db.get(atom.relation))
            for i, atom in enumerate(part.heavy_query.atoms)
            if i not in part.touched))
        heavy_cost = _capped(_YANNAKAKIS_PASSES * (
            float(part.heavy_total)
            + len(part.heavy_keys) * untouched))
    else:
        heavy_sizes = {i: len(part.heavy_db.get(atom.relation))
                       for i, atom in enumerate(part.heavy_query.atoms)}
        heavy_cost = _capped(_binary_cost(
            part.heavy_query, part.heavy_db, heavy_sizes,
            greedy_atom_order(part.heavy_query, part.heavy_db)))
    light_input = float(sum(
        len(part.light_db.get(atom.relation))
        for atom in part.light_query.atoms))
    light_env = agm_bound(part.light_query, part.light_db).bound
    dc = constraints_from_database(part.light_query, part.light_db,
                                   max_key_size=1)
    if dc.is_acyclic():
        light_env = min(light_env,
                        output_size_bound(part.light_query, part.light_db,
                                          dc=dc).bound)
    light_cost = _capped(light_input + _GENERIC_FACTOR * light_env)
    return partition_cost, heavy_cost, light_cost


def _resolve_mode(forced: str, recursion_cost: float, fold_cost: float,
                  recursion_ok: bool, prefer_recursion: bool
                  ) -> tuple[str | None, float]:
    """Pick an aggregate mode for one strategy (None = infeasible)."""
    if forced == "recursion":
        return ("recursion", recursion_cost) if recursion_ok else (None, math.inf)
    if forced == "fold":
        return ("fold", fold_cost)
    if not recursion_ok:
        return ("fold", fold_cost)
    if recursion_cost < fold_cost or (recursion_cost == fold_cost
                                      and prefer_recursion):
        return ("recursion", recursion_cost)
    return ("fold", fold_cost)


def _resolve_ranked(forced: str, anyk_cost: float, drain_cost: float,
                    anyk_ok: bool) -> tuple[str | None, float]:
    """Pick a ranked mode for one strategy (None = infeasible).

    Ties go to drain: with nothing to gain from stopping early, the
    plain enumerate-and-heap pipeline avoids the frontier's overhead.
    """
    if forced == "anyk":
        return ("anyk", anyk_cost) if anyk_ok else (None, math.inf)
    if forced == "drain":
        return ("drain", drain_cost)
    if anyk_ok and anyk_cost < drain_cost:
        return ("anyk", anyk_cost)
    return ("drain", drain_cost)


def estimate_costs(query: ConjunctiveQuery, database: Database,
                   agm: AGMBound, acyclic: bool,
                   binary_order: tuple[int, ...] | None = None,
                   selections: Sequence[Comparison] = (),
                   aggregates: Sequence[Aggregate] = (),
                   group: Sequence[str] = (),
                   aggregate_mode: str = "auto",
                   order_by: Sequence[tuple[str, bool]] = (),
                   limit: int | None = None,
                   ranked_mode: str = "auto",
                   ) -> dict[str, float]:
    """Estimated operation counts for every strategy on this instance.

    ``binary_order`` lets the dispatcher share one greedy-order computation
    between pricing and planning; it is recomputed when omitted.
    ``selections`` (rich-query predicates) shrink the per-atom scan sizes
    *and* the WCOJ envelope (see :func:`selection_envelope`); with
    ``aggregates`` the in-recursion and stream-fold execution modes are
    both priced, and with ``order_by`` (non-aggregate queries) the any-k
    and drain-and-heap ranked modes are (see :func:`dispatch` for how the
    modes are then resolved).
    """
    sizes, envelope = selection_envelope(query, database, selections, agm)
    agg_plan = (plan_aggregation(query, selections, aggregates, group)
                if aggregates else None)
    ranked_plan = (plan_ranked(query, selections, order_by, group)
                   if order_by and not aggregates else None)
    hybrid_plan = plan_hybrid(query, database)
    costs, _modes, _ranked = _estimate(query, database, sizes, envelope,
                                       acyclic, binary_order, agg_plan,
                                       aggregate_mode, ranked_plan,
                                       ranked_mode, limit, hybrid_plan)
    return costs


def _ranked_envelopes(envelope: float, n_max: float, width: float,
                      limit: int | None) -> tuple[float, float]:
    """(any-k envelope, drain envelope) for one ordered query.

    The any-k term prices the bottom-up best-suffix DP — the memoized
    elimination over the ranked order, bounded by ``N^width`` and never
    worse than plain enumeration — plus one frontier delay per surfaced
    result.  Without a LIMIT every result must surface, so the k term
    degenerates to the full envelope and drain wins on auto (the frontier
    would only add heap overhead to a full enumeration).
    """
    dp = _capped(min(envelope, max(n_max, 1.0) ** width))
    k = float(limit) if limit is not None else envelope
    return _capped(dp + k), envelope


def _estimate(query: ConjunctiveQuery, database: Database,
              sizes: dict[int, int], envelope: float, acyclic: bool,
              binary_order: tuple[int, ...] | None,
              agg_plan: dict | None, aggregate_mode: str,
              ranked_plan: dict | None = None,
              ranked_mode: str = "auto",
              limit: int | None = None,
              hybrid_plan: dict | None = None,
              ) -> tuple[dict[str, float], dict[str, str | None],
                         dict[str, str | None]]:
    """Per-strategy costs plus each strategy's resolved aggregate and
    ranked modes."""
    total = float(sum(sizes.values()))
    if binary_order is None:
        binary_order = greedy_atom_order(query, database)

    naive = 1.0
    for size in sizes.values():
        naive = _capped(naive * max(size, 1))

    modes: dict[str, str | None] = {s: None for s in STRATEGIES}
    ranked: dict[str, str | None] = {s: None for s in STRATEGIES}
    costs: dict[str, float] = {}

    # The hybrid envelope: partition passes + heavy side + light side.
    # Only skewed instances are partitioned (and priced) at all.
    hybrid_terms = (_hybrid_costs(query, database, hybrid_plan)
                    if hybrid_plan is not None and hybrid_plan["skewed"]
                    else None)
    if hybrid_terms is None:
        hybrid_total = math.inf
    else:
        partition_cost, heavy_cost, light_cost = hybrid_terms
        hybrid_total = _capped(partition_cost + heavy_cost + light_cost)
        costs["hybrid[heavy]"] = heavy_cost
        costs["hybrid[light]"] = light_cost

    if ranked_plan is not None:
        # Ordered, non-aggregate query: price any-k (stop after k) against
        # drain-and-heap (full join) per strategy.
        n_max = float(max(sizes.values(), default=1))
        anyk_env, drain_env = _ranked_envelopes(
            envelope, n_max, ranked_plan["width"], limit)
        costs["ranked[anyk]"] = _capped(total + _GENERIC_FACTOR * anyk_env)
        costs["ranked[drain]"] = _capped(total + _GENERIC_FACTOR * drain_env)
        for name, factor in (("generic", _GENERIC_FACTOR),
                             ("leapfrog", _LEAPFROG_FACTOR)):
            mode, cost = _resolve_ranked(
                ranked_mode,
                _capped(total + factor * anyk_env),
                _capped(total + factor * drain_env),
                anyk_ok=True)
            ranked[name] = mode
            costs[name] = cost
        if acyclic:
            mode, cost = _resolve_ranked(
                ranked_mode,
                _capped(_YANNAKAKIS_PASSES * total
                        + _YANNAKAKIS_OUTPUT_DISCOUNT * anyk_env),
                _capped(_YANNAKAKIS_PASSES * total
                        + _YANNAKAKIS_OUTPUT_DISCOUNT * drain_env),
                anyk_ok=True)
            ranked["yannakakis"] = mode
            costs["yannakakis"] = cost
        else:
            costs["yannakakis"] = math.inf
        # The materializing, naive, and hybrid strategies can only drain.
        if ranked_mode == "anyk":
            costs["binary"] = math.inf
            costs["naive"] = math.inf
            costs["hybrid"] = math.inf
        else:
            costs["binary"] = _binary_cost(query, database, sizes,
                                           binary_order)
            costs["naive"] = naive
            ranked["binary"] = ranked["naive"] = "drain"
            costs["hybrid"] = hybrid_total
            if hybrid_total != math.inf:
                ranked["hybrid"] = "drain"
        return costs, modes, ranked

    if agg_plan is None:
        costs["generic"] = _capped(total + _GENERIC_FACTOR * envelope)
        costs["leapfrog"] = _capped(total + _LEAPFROG_FACTOR * envelope)
        costs["yannakakis"] = (
            _capped(_YANNAKAKIS_PASSES * total
                    + _YANNAKAKIS_OUTPUT_DISCOUNT * envelope)
            if acyclic else math.inf
        )
        costs["binary"] = _binary_cost(query, database, sizes, binary_order)
        costs["naive"] = naive
        costs["hybrid"] = hybrid_total
        return costs, modes, ranked

    # Aggregate pricing: the in-recursion envelope is the FAQ-width term
    # of the aggregate-aware order (capped by the join envelope — memoized
    # elimination never expands more nodes than enumeration), the fold
    # envelope is the full join.  A group-by keeping every variable
    # eliminates nothing, so both modes enumerate the same nodes and are
    # priced identically (auto then resolves to the simpler fold).
    n_max = float(max(sizes.values(), default=1))
    fold_env = envelope
    if agg_plan["has_elimination"]:
        recursion_env = _capped(min(envelope,
                                    max(n_max, 1.0) ** agg_plan["width"]))
    else:
        recursion_env = fold_env
    costs["agg[recursion]"] = _capped(total + _GENERIC_FACTOR * recursion_env)
    costs["agg[fold]"] = _capped(total + _GENERIC_FACTOR * fold_env)
    prefer = agg_plan["has_elimination"]

    for name, factor in (("generic", _GENERIC_FACTOR),
                         ("leapfrog", _LEAPFROG_FACTOR)):
        mode, env = _resolve_mode(
            aggregate_mode,
            _capped(total + factor * recursion_env),
            _capped(total + factor * fold_env),
            recursion_ok=True, prefer_recursion=prefer)
        modes[name] = mode
        costs[name] = env
    if acyclic:
        mode, env = _resolve_mode(
            aggregate_mode,
            _capped(_YANNAKAKIS_PASSES * total
                    + _YANNAKAKIS_OUTPUT_DISCOUNT * recursion_env),
            _capped(_YANNAKAKIS_PASSES * total
                    + _YANNAKAKIS_OUTPUT_DISCOUNT * fold_env),
            recursion_ok=agg_plan["product_ok"], prefer_recursion=prefer)
        modes["yannakakis"] = mode
        costs["yannakakis"] = env
    else:
        costs["yannakakis"] = math.inf
    # The materializing, naive, and hybrid strategies can only fold the
    # stream (the hybrid's sides stream full core tuples, disjoint on the
    # skew variable, so the engine's fold *is* the ⊕-stitch).
    if aggregate_mode == "recursion":
        costs["binary"] = math.inf
        costs["naive"] = math.inf
        costs["hybrid"] = math.inf
    else:
        costs["binary"] = _binary_cost(query, database, sizes, binary_order)
        costs["naive"] = naive
        modes["binary"] = modes["naive"] = "fold"
        costs["hybrid"] = hybrid_total
        if hybrid_total != math.inf:
            modes["hybrid"] = "fold"
    return costs, modes, ranked


def _payload_for(strategy: str, mode: str | None,
                 agg_plan: dict | None,
                 ranked_resolved: str | None = None,
                 ranked_plan: dict | None = None) -> tuple | None:
    """The dispatcher-computed plan payload for the chosen strategy.

    Any-k plans carry the ``("anyk", ranked order)`` tag; drain-ranked
    plans stay untagged (the executor runs its plain enumeration payload
    and the engine sorts above it).
    """
    if ranked_resolved == "anyk" and ranked_plan is not None:
        if strategy in ("generic", "leapfrog"):
            return ("anyk", ranked_plan["order"])
        if strategy == "yannakakis":
            return ("anyk", ())
        return None
    if agg_plan is None or mode is None:
        return None
    if strategy in ("generic", "leapfrog"):
        return (mode, agg_plan["order"])
    if strategy == "yannakakis":
        return (mode, ())
    return None


def dispatch(query: ConjunctiveQuery, database: Database,
             mode: str = "auto",
             selections: Sequence[Comparison] = (),
             aggregates: Sequence[Aggregate] = (),
             group: Sequence[str] = (),
             aggregate_mode: str = "auto",
             order_by: Sequence[tuple[str, bool]] = (),
             limit: int | None = None,
             ranked_mode: str = "auto",
             backend: str = "python") -> DispatchDecision:
    """Choose an executor for the query (or validate a forced choice).

    Parameters
    ----------
    mode:
        ``"auto"`` picks the cheapest feasible strategy; any strategy name
        forces it (raising :class:`QueryError` when infeasible, e.g.
        ``"yannakakis"`` on a cyclic query).  Forced modes skip the cost
        estimation (the per-join degree scans in particular), paying only
        the acyclicity test and the AGM LP that ``explain()`` reports.
    selections:
        Rich-query comparison predicates; single-atom ones shrink the
        per-atom scan estimates *and* sharpen the WCOJ envelope to the
        degree-aware bound of the filtered instance.
    aggregates / group:
        The query's semiring aggregate heads and group-by variables; when
        present, both aggregate execution modes are priced and the
        decision carries the aggregate-aware variable order.
    aggregate_mode:
        ``"auto"`` resolves the mode per strategy by cost;
        ``"recursion"``/``"fold"`` force it (forcing ``"recursion"``
        restricts dispatch to the strategies that support it and raises
        when a forced strategy does not).
    order_by / limit:
        The query's sort keys (``(variable, descending)`` pairs) and its
        own LIMIT; for non-aggregate ordered queries the k-sensitive
        any-k envelope is priced against the full-join drain envelope
        (the ``ranked[anyk]`` / ``ranked[drain]`` cost entries).
    ranked_mode:
        ``"auto"`` resolves the ranked mode per strategy by cost (any-k
        needs a LIMIT to beat drain, since without one every result must
        surface anyway); ``"anyk"``/``"drain"`` force it (forcing
        ``"anyk"`` restricts dispatch to :data:`ANYK_CAPABLE` strategies
        and rejects aggregate queries, whose ordered output is the group
        stream, not the join).
    backend:
        ``"python"`` (default) runs the reference oracle; ``"columnar"``
        requests the vectorized backend, transparently resolving back to
        python (with the reason in ``backend_fallback``) whenever the
        query needs a feature outside the vectorized subset or the chosen
        strategy has no columnar form; ``"auto"`` compares the priced
        ``backend[python]``/``backend[columnar]`` envelopes.  Requesting
        ``columnar`` under ``mode="auto"`` steers strategy choice to the
        columnar-capable WCOJ strategies when the request can be honored.
    """
    if backend not in BACKENDS:
        raise QueryError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if mode not in MODES:
        raise QueryError(f"unknown engine mode {mode!r}; expected one of {MODES}")
    if aggregate_mode not in AGGREGATE_MODES:
        raise QueryError(
            f"unknown aggregate mode {aggregate_mode!r}; "
            f"expected one of {AGGREGATE_MODES}"
        )
    if ranked_mode not in RANKED_MODES:
        raise QueryError(
            f"unknown ranked mode {ranked_mode!r}; "
            f"expected one of {RANKED_MODES}"
        )
    aggregates = tuple(aggregates)
    order_by = tuple(order_by)
    if aggregate_mode != "auto" and not aggregates:
        raise QueryError(
            f"aggregate_mode={aggregate_mode!r} needs an aggregate query"
        )
    if ranked_mode != "auto" and not order_by:
        raise QueryError(
            f"ranked_mode={ranked_mode!r} needs an ORDER BY query"
        )
    if ranked_mode == "anyk" and aggregates:
        raise QueryError(
            "ranked_mode='anyk' does not apply to aggregate queries; "
            "their ordered output is the folded group stream"
        )
    acyclic = is_alpha_acyclic(query.hypergraph())
    bound = agm_bound(query, database)
    # The elimination-order search only serves auto pricing and the
    # recursion-capable strategies; a forced binary/naive run would
    # discard it (it always folds).
    needs_agg_plan = bool(aggregates) and (mode == "auto"
                                           or mode in RECURSION_CAPABLE)
    agg_plan = (plan_aggregation(query, selections, aggregates, group)
                if needs_agg_plan else None)
    needs_ranked_plan = (bool(order_by) and not aggregates
                         and (mode == "auto" or mode in ANYK_CAPABLE))
    ranked_plan = (plan_ranked(query, selections, order_by, group)
                   if needs_ranked_plan else None)

    backend_resolved = "python"
    backend_fallback: str | None = None
    hybrid_plan: dict | None = None
    if mode == "auto":
        binary_order = greedy_atom_order(query, database)
        sizes, envelope = selection_envelope(query, database, selections,
                                             bound)
        hybrid_plan = plan_hybrid(query, database)
        costs, modes, ranked_modes = _estimate(
            query, database, sizes, envelope, acyclic, binary_order,
            agg_plan, aggregate_mode, ranked_plan, ranked_mode, limit,
            hybrid_plan)
        strategy = min(STRATEGIES,
                       key=lambda s: (costs[s], STRATEGIES.index(s)))
        if costs[strategy] == math.inf:
            raise QueryError(
                f"no feasible strategy for query {query.name!r} under "
                f"aggregate_mode={aggregate_mode!r}, "
                f"ranked_mode={ranked_mode!r}"
            )
        # Price the backend axis: the best columnar-capable strategy at
        # the vectorized constant vs the best python strategy.  Recorded
        # even for default-python requests so explain() always shows both
        # envelopes.
        candidate = min(COLUMNAR_CAPABLE,
                        key=lambda s: (costs[s], STRATEGIES.index(s)))
        columnar_reason = columnar_unsupported_reason(
            selections=selections, aggregates=aggregates,
            ranked_mode=ranked_modes[candidate])
        if columnar_reason is not None or costs[candidate] == math.inf:
            columnar_cost = math.inf
        else:
            columnar_cost = _capped(_COLUMNAR_FACTOR * costs[candidate])
        costs["backend[python]"] = costs[strategy]
        costs["backend[columnar]"] = columnar_cost
        if backend != "python":
            if columnar_cost == math.inf:
                backend_fallback = (columnar_reason
                                    or "no feasible columnar-capable strategy")
            elif backend == "columnar" or columnar_cost < costs[strategy]:
                strategy = candidate
                backend_resolved = "columnar"
            else:
                backend_fallback = "python backend priced cheaper"
        resolved = modes[strategy]
        ranked_resolved = ranked_modes[strategy]
        if order_by and ranked_resolved is None:
            ranked_resolved = "drain"  # ordered aggregate queries
    else:
        strategy = mode
        if strategy == "yannakakis" and not acyclic:
            raise QueryError(
                f"strategy {strategy!r} is infeasible for query {query.name!r} "
                f"(cyclic query?); use mode='auto' or a WCOJ mode"
            )
        binary_order = (greedy_atom_order(query, database)
                        if strategy == "binary" else None)
        costs = {}
        resolved = None
        ranked_resolved = None
        if aggregates:
            # Forced strategies skip the cost comparison; the auto rule is
            # simply "aggregate inside the join when it eliminates
            # something and the strategy supports it" — matching how the
            # priced path resolves equal envelopes.
            if strategy in ("generic", "leapfrog"):
                resolved = (aggregate_mode if aggregate_mode != "auto"
                            else ("recursion" if agg_plan["has_elimination"]
                                  else "fold"))
            elif strategy == "yannakakis":
                if aggregate_mode == "recursion" and not agg_plan["product_ok"]:
                    raise QueryError(
                        "aggregate_mode='recursion' needs product semirings "
                        "for every aggregate under strategy 'yannakakis'"
                    )
                resolved = (aggregate_mode if aggregate_mode != "auto"
                            else ("recursion" if (agg_plan["has_elimination"]
                                                  and agg_plan["product_ok"])
                                  else "fold"))
            else:
                if aggregate_mode == "recursion":
                    raise QueryError(
                        f"strategy {strategy!r} cannot aggregate in-recursion; "
                        "use a WCOJ mode, 'yannakakis', or aggregate_mode='fold'"
                    )
                resolved = "fold"
        if order_by:
            if aggregates:
                ranked_resolved = "drain"
            elif strategy in ANYK_CAPABLE:
                # Forced strategies skip the cost comparison; the auto
                # rule mirrors the priced one: rank-enumerate exactly when
                # a LIMIT bounds the prefix any-k gets to stop at.
                ranked_resolved = (ranked_mode if ranked_mode != "auto"
                                   else ("anyk" if limit is not None
                                         else "drain"))
            else:
                if ranked_mode == "anyk":
                    raise QueryError(
                        f"strategy {strategy!r} cannot enumerate in rank "
                        "order; use a WCOJ mode, 'yannakakis', or "
                        "ranked_mode='drain'"
                    )
                ranked_resolved = "drain"
        if backend != "python":
            if strategy not in COLUMNAR_CAPABLE:
                backend_fallback = (
                    f"strategy {strategy!r} has no columnar implementation")
            else:
                backend_fallback = columnar_unsupported_reason(
                    selections=selections, aggregates=aggregates,
                    ranked_mode=ranked_resolved)
            if backend_fallback is None:
                backend_resolved = "columnar"
    if strategy == "hybrid":
        if hybrid_plan is None:
            hybrid_plan = plan_hybrid(query, database)
        payload = ("hybrid", hybrid_plan["variable"],
                   hybrid_plan["threshold"],
                   hybrid_plan["heavy_strategy"],
                   hybrid_plan["light_strategy"])
    else:
        payload = _payload_for(strategy, resolved, agg_plan,
                               ranked_resolved, ranked_plan)
    return DispatchDecision(
        strategy=strategy, acyclic=acyclic, agm=bound, costs=costs,
        binary_order=binary_order,
        aggregate_mode=resolved,
        ranked_mode=ranked_resolved,
        payload=payload,
        faq_width=agg_plan["width"] if agg_plan is not None else None,
        backend=backend_resolved,
        backend_fallback=backend_fallback,
    )
