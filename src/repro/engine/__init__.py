"""The persistent query-engine subsystem.

Everything in :mod:`repro.joins` is a one-shot function: it rebuilds every
index and re-derives every plan per call.  This subpackage turns those
building blocks into a long-lived engine — the architectural seam the
ROADMAP's production-scale ambitions (sharding, async serving,
multi-backend) plug into:

* :class:`Engine` (:mod:`repro.engine.session`) — the session object:
  ``execute`` / ``stream`` / ``execute_many`` / ``explain`` over one owned
  :class:`~repro.relational.database.Database`;
* :class:`IndexRegistry` (:mod:`repro.engine.registry`) — version-checked
  trie/hash index reuse across queries;
* :class:`PlanCache` (:mod:`repro.engine.plan_cache`) — plans keyed on
  canonical query structure + statistics fingerprint;
* :mod:`repro.engine.cost` — the cost-based dispatcher over naive, binary,
  Generic-Join, Leapfrog and Yannakakis executors;
* :mod:`repro.engine.executors` — the common executor protocol (streaming
  result iteration with ``LIMIT`` pushdown);
* :mod:`repro.engine.fingerprint` — canonical query forms, so isomorphic
  queries share cached work.
"""

from repro.engine.cost import (
    AGGREGATE_MODES,
    BACKENDS,
    COLUMNAR_CAPABLE,
    MODES,
    RANKED_MODES,
    STRATEGIES,
    DispatchDecision,
    dispatch,
    estimate_costs,
    selection_envelope,
)
from repro.engine.executors import (
    EXECUTORS,
    executor_for,
    filtered_instance,
    head_projected,
    pushed_instance,
    split_pushable_selections,
)
from repro.engine.fingerprint import CanonicalQuery, canonical_query
from repro.engine.plan_cache import CachedPlan, LRUCache, PlanCache
from repro.engine.registry import IndexRegistry
from repro.engine.session import Engine, EngineStats, Explanation

__all__ = [
    "AGGREGATE_MODES",
    "BACKENDS",
    "COLUMNAR_CAPABLE",
    "MODES",
    "RANKED_MODES",
    "STRATEGIES",
    "DispatchDecision",
    "dispatch",
    "estimate_costs",
    "selection_envelope",
    "EXECUTORS",
    "filtered_instance",
    "executor_for",
    "head_projected",
    "pushed_instance",
    "split_pushable_selections",
    "CanonicalQuery",
    "canonical_query",
    "CachedPlan",
    "LRUCache",
    "PlanCache",
    "IndexRegistry",
    "Engine",
    "EngineStats",
    "Explanation",
]
