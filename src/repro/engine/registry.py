"""The index registry: build indexes once, reuse them across queries.

Leapfrog Triejoin's practical speed comes from *persistent* trie storage —
the LogicBlox engine keeps every relation materialized as tries and never
rebuilds them per query.  The one-shot functions in :mod:`repro.joins`
instead rebuild every index on every call, which is exactly the overhead a
long-lived engine amortizes away.

The registry caches :class:`TrieIndex` / :class:`HashIndex` structures keyed
by ``(relation name, attribute layout)`` and validates every entry against
the :meth:`Database.version` of its relation, so a mutation (insert /
replace) transparently invalidates all derived indexes without the engine
having to enumerate them eagerly.

Indexes are built on the *stored* relations (original attribute names).  A
trie's shape depends only on the column permutation, not the column names,
so an atom ``R(A, B)`` over a stored relation ``R(X, Y)`` can share the
registry entry for layout ``(X, Y)`` with every other query that scans R in
that column order — including other atoms of the same query (self-joins).
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.database import Database
from repro.relational.index import HashIndex, TrieIndex


class IndexRegistry:
    """A version-checked cache of per-relation index structures.

    Parameters
    ----------
    database:
        The catalog the indexes are built over.  The registry never mutates
        it; it only observes relation versions.
    """

    def __init__(self, database: Database):
        self._database = database
        self._tries: dict[tuple[str, tuple[str, ...]], tuple[int, TrieIndex]] = {}
        self._hashes: dict[tuple[str, tuple[str, ...]], tuple[int, HashIndex]] = {}
        self.builds = 0
        self.reuses = 0
        self.invalidations = 0
        # Columnar backend state: one shared dictionary store plus sorted
        # layouts keyed like tries but validated against *both* the
        # relation version and the store's dictionary epoch.
        self._columnar_store = None
        self._columnar: dict[tuple[str, tuple[str, ...]],
                             tuple[int, int, object]] = {}
        self._columnar_registered: dict[str, int] = {}
        self.layout_builds = 0
        self.layout_reuses = 0

    @property
    def database(self) -> Database:
        """The catalog this registry indexes."""
        return self._database

    def trie(self, relation_name: str, attr_order: Sequence[str]) -> TrieIndex:
        """A trie over ``relation_name`` with levels in ``attr_order``.

        Served from cache when the relation's version is unchanged; rebuilt
        (and re-cached) otherwise.
        """
        key = (relation_name, tuple(attr_order))
        version = self._database.version(relation_name)
        cached = self._tries.get(key)
        if cached is not None and cached[0] == version:
            self.reuses += 1
            return cached[1]
        index = TrieIndex(self._database.get(relation_name), key[1])
        self._tries[key] = (version, index)
        self.builds += 1
        return index

    def hash_index(self, relation_name: str, key_attrs: Sequence[str]) -> HashIndex:
        """A hash index over ``relation_name`` keyed by ``key_attrs``."""
        key = (relation_name, tuple(key_attrs))
        version = self._database.version(relation_name)
        cached = self._hashes.get(key)
        if cached is not None and cached[0] == version:
            self.reuses += 1
            return cached[1]
        index = HashIndex(self._database.get(relation_name), key[1])
        self._hashes[key] = (version, index)
        self.builds += 1
        return index

    @property
    def columnar_store(self):
        """The shared dictionary store (created lazily: needs NumPy)."""
        if self._columnar_store is None:
            from repro.columnar.layout import ColumnarStore
            self._columnar_store = ColumnarStore()
        return self._columnar_store

    def columnar_layouts(self, requests: Sequence) -> dict:
        """Resolve sorted columnar layouts for a batch of index requests.

        ``requests`` are ``(edge_key, relation_name, attr_order)`` triples
        (the same shape the trie path uses); returns ``{edge_key:
        ColumnarLayout}``.  The whole batch is served under one dictionary
        epoch: relations whose versions moved since their values were
        registered are re-registered *first* (a single ``register`` call,
        so at most one epoch bump), then every layout is built or reused
        under the now-stable epoch — codes are comparable across every
        layout in the batch.  Raises ``TypeError`` (store untouched) on
        un-orderable mixed value domains.
        """
        from repro.columnar.layout import build_layout
        store = self.columnar_store
        stale_names = sorted({
            name for _edge_key, name, _attrs in requests
            if self._columnar_registered.get(name)
            != self._database.version(name)
        })
        if stale_names:
            store.register(
                value
                for name in stale_names
                for row in self._database.get(name).tuples
                for value in row)
            for name in stale_names:
                self._columnar_registered[name] = self._database.version(name)
        resolved = {}
        for edge_key, name, attrs in requests:
            key = (name, tuple(attrs))
            version = self._database.version(name)
            cached = self._columnar.get(key)
            if (cached is not None and cached[0] == version
                    and cached[1] == store.epoch):
                self.layout_reuses += 1
                resolved[edge_key] = cached[2]
                continue
            layout = build_layout(self._database.get(name), key[1], store)
            self._columnar[key] = (version, store.epoch, layout)
            self.layout_builds += 1
            resolved[edge_key] = layout
        return resolved

    def columnar_is_warm(self, relation_name: str,
                         attr_order: Sequence[str]) -> bool:
        """True if a current-version, current-epoch layout is built."""
        store = self._columnar_store
        if store is None:
            return False
        cached = self._columnar.get((relation_name, tuple(attr_order)))
        return (cached is not None
                and cached[0] == self._database.version(relation_name)
                and cached[1] == store.epoch)

    def columnar_warm_count(self) -> int:
        """Valid columnar layouts (the layout-occupancy gauge's figure)."""
        store = self._columnar_store
        if store is None:
            return 0
        return sum(
            1 for key, (version, epoch, _) in self._columnar.items()
            if version == self._database.version(key[0])
            and epoch == store.epoch)

    def is_warm(self, relation_name: str, attr_order: Sequence[str]) -> bool:
        """True if a current-version trie for this layout is already built."""
        cached = self._tries.get((relation_name, tuple(attr_order)))
        return (cached is not None
                and cached[0] == self._database.version(relation_name))

    def invalidate(self, relation_name: str | None = None) -> int:
        """Drop cached indexes for one relation (or all) and return the count.

        Version checks already make stale entries unreachable; eager
        invalidation additionally frees their memory.
        """
        def stale(key: tuple[str, tuple[str, ...]]) -> bool:
            return relation_name is None or key[0] == relation_name

        dropped = 0
        for store in (self._tries, self._hashes, self._columnar):
            for key in [k for k in store if stale(k)]:
                del store[key]
                dropped += 1
        for name in [n for n in self._columnar_registered
                     if relation_name is None or n == relation_name]:
            # Re-register on next use so new values enter the dictionary.
            del self._columnar_registered[name]
        self.invalidations += dropped
        return dropped

    def warm_layouts(self) -> list[tuple[str, tuple[str, ...]]]:
        """The (relation, layout) keys of all currently valid trie entries."""
        return [key for key, (version, _) in self._tries.items()
                if version == self._database.version(key[0])]

    def warm_count(self) -> int:
        """How many cached indexes are valid for the current data versions.

        Unlike ``len()`` this excludes entries a version bump has made
        unreachable but eager invalidation has not yet dropped; it is the
        figure the metrics gauge reports.
        """
        return len(self.warm_layouts()) + sum(
            1 for key, (version, _) in self._hashes.items()
            if version == self._database.version(key[0])
        )

    def __len__(self) -> int:
        return len(self._tries) + len(self._hashes)
