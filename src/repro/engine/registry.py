"""The index registry: build indexes once, reuse them across queries.

Leapfrog Triejoin's practical speed comes from *persistent* trie storage —
the LogicBlox engine keeps every relation materialized as tries and never
rebuilds them per query.  The one-shot functions in :mod:`repro.joins`
instead rebuild every index on every call, which is exactly the overhead a
long-lived engine amortizes away.

The registry caches :class:`TrieIndex` / :class:`HashIndex` structures keyed
by ``(relation name, attribute layout)`` and validates every entry against
the :meth:`Database.version` of its relation, so a mutation (insert /
replace) transparently invalidates all derived indexes without the engine
having to enumerate them eagerly.

Indexes are built on the *stored* relations (original attribute names).  A
trie's shape depends only on the column permutation, not the column names,
so an atom ``R(A, B)`` over a stored relation ``R(X, Y)`` can share the
registry entry for layout ``(X, Y)`` with every other query that scans R in
that column order — including other atoms of the same query (self-joins).
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.database import Database
from repro.relational.index import HashIndex, TrieIndex


class IndexRegistry:
    """A version-checked cache of per-relation index structures.

    Parameters
    ----------
    database:
        The catalog the indexes are built over.  The registry never mutates
        it; it only observes relation versions.
    """

    def __init__(self, database: Database):
        self._database = database
        self._tries: dict[tuple[str, tuple[str, ...]], tuple[int, TrieIndex]] = {}
        self._hashes: dict[tuple[str, tuple[str, ...]], tuple[int, HashIndex]] = {}
        self.builds = 0
        self.reuses = 0
        self.invalidations = 0

    @property
    def database(self) -> Database:
        """The catalog this registry indexes."""
        return self._database

    def trie(self, relation_name: str, attr_order: Sequence[str]) -> TrieIndex:
        """A trie over ``relation_name`` with levels in ``attr_order``.

        Served from cache when the relation's version is unchanged; rebuilt
        (and re-cached) otherwise.
        """
        key = (relation_name, tuple(attr_order))
        version = self._database.version(relation_name)
        cached = self._tries.get(key)
        if cached is not None and cached[0] == version:
            self.reuses += 1
            return cached[1]
        index = TrieIndex(self._database.get(relation_name), key[1])
        self._tries[key] = (version, index)
        self.builds += 1
        return index

    def hash_index(self, relation_name: str, key_attrs: Sequence[str]) -> HashIndex:
        """A hash index over ``relation_name`` keyed by ``key_attrs``."""
        key = (relation_name, tuple(key_attrs))
        version = self._database.version(relation_name)
        cached = self._hashes.get(key)
        if cached is not None and cached[0] == version:
            self.reuses += 1
            return cached[1]
        index = HashIndex(self._database.get(relation_name), key[1])
        self._hashes[key] = (version, index)
        self.builds += 1
        return index

    def is_warm(self, relation_name: str, attr_order: Sequence[str]) -> bool:
        """True if a current-version trie for this layout is already built."""
        cached = self._tries.get((relation_name, tuple(attr_order)))
        return (cached is not None
                and cached[0] == self._database.version(relation_name))

    def invalidate(self, relation_name: str | None = None) -> int:
        """Drop cached indexes for one relation (or all) and return the count.

        Version checks already make stale entries unreachable; eager
        invalidation additionally frees their memory.
        """
        def stale(key: tuple[str, tuple[str, ...]]) -> bool:
            return relation_name is None or key[0] == relation_name

        dropped = 0
        for store in (self._tries, self._hashes):
            for key in [k for k in store if stale(k)]:
                del store[key]
                dropped += 1
        self.invalidations += dropped
        return dropped

    def warm_layouts(self) -> list[tuple[str, tuple[str, ...]]]:
        """The (relation, layout) keys of all currently valid trie entries."""
        return [key for key, (version, _) in self._tries.items()
                if version == self._database.version(key[0])]

    def warm_count(self) -> int:
        """How many cached indexes are valid for the current data versions.

        Unlike ``len()`` this excludes entries a version bump has made
        unreachable but eager invalidation has not yet dropped; it is the
        figure the metrics gauge reports.
        """
        return len(self.warm_layouts()) + sum(
            1 for key, (version, _) in self._hashes.items()
            if version == self._database.version(key[0])
        )

    def __len__(self) -> int:
        return len(self._tries) + len(self._hashes)
