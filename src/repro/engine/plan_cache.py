"""The plan cache: skip parsing, ordering and LP work for repeated queries.

Planning a query involves hypergraph construction, acyclicity testing, the
AGM fractional-edge-cover LP, cost estimation and variable ordering — work
that is identical for every repetition of a query (and for every variable
renaming of it) as long as the data statistics stay in the same regime.

Entries are keyed on ``(canonical form, statistics fingerprint, mode)``:

* the *canonical form* (:mod:`repro.engine.fingerprint`) makes isomorphic
  queries share entries — plans are stored in canonical variable names and
  translated on the way out;
* the *statistics fingerprint* (power-of-two size buckets per canonical
  atom) keeps a plan live across small data drift while any
  order-of-magnitude change forces re-optimization;
* the *mode* separates explicitly forced strategies from ``auto`` dispatch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class CachedPlan:
    """An executor decision stored in canonical vocabulary.

    Attributes
    ----------
    strategy:
        Executor name (``"naive"``, ``"binary"``, ``"generic"``,
        ``"leapfrog"``, ``"yannakakis"``).
    payload:
        Strategy-specific plan payload, expressed canonically: a tuple of
        canonical variable names for WCOJ orders, a tuple of canonical atom
        positions for binary join orders, or None.
    acyclic:
        Whether the query hypergraph is alpha-acyclic.
    agm_log2:
        log2 of the AGM bound computed at planning time.
    costs:
        The dispatcher's cost estimates per strategy (sorted tuple of
        ``(strategy, cost)`` pairs so the record stays hashable).
    backend:
        The resolved execution backend (``"python"`` / ``"columnar"``).
    backend_fallback:
        Why a requested non-default backend resolved to python (None when
        honored or never requested).
    """

    strategy: str
    payload: tuple | None
    acyclic: bool
    agm_log2: float
    costs: tuple[tuple[str, float], ...]
    backend: str = "python"
    backend_fallback: str | None = None

    def cost_dict(self) -> dict[str, float]:
        """The cost estimates as a plain dictionary."""
        return dict(self.costs)


class LRUCache:
    """A small least-recently-used cache with hit/miss accounting."""

    def __init__(self, max_size: int = 256):
        if max_size < 1:
            raise ValueError(f"cache size must be positive, got {max_size}")
        self._max_size = max_size
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value, refreshed as most-recent, or None."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least-recently-used entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self._max_size:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are preserved)."""
        self._entries.clear()

    def evict_where(self, predicate) -> int:
        """Drop entries whose key satisfies ``predicate``; returns the count.

        Lets owners free entries that version-tagged keys have already made
        unreachable, instead of waiting for capacity eviction.
        """
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss/occupancy accounting for metrics snapshots."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
            "capacity": self._max_size,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


class PlanCache(LRUCache):
    """An :class:`LRUCache` specialized to :class:`CachedPlan` values.

    Beyond plain LRU bookkeeping it records *invalidations by reason*:
    when a standing query decides its plan no longer fits (the statistics
    fingerprint drifted past its threshold, or an out-of-band version
    bump replaced the data wholesale) the owner calls
    :meth:`record_invalidation` so the re-plan shows up in cache stats
    and the metrics snapshot instead of looking like an ordinary miss.
    """

    def __init__(self, max_size: int = 256):
        super().__init__(max_size)
        self.invalidations: dict[str, int] = {}

    def get(self, key: Hashable) -> CachedPlan | None:
        return super().get(key)

    def put(self, key: Hashable, value: CachedPlan) -> None:
        super().put(key, value)

    def record_invalidation(self, reason: str) -> None:
        """Count one plan invalidation under ``reason``."""
        self.invalidations[reason] = self.invalidations.get(reason, 0) + 1

    def invalidation_counts(self) -> dict[str, int]:
        """Invalidations by reason (a copy, for snapshots)."""
        return dict(self.invalidations)

    def cache_stats(self) -> dict[str, float]:
        stats = super().cache_stats()
        stats["invalidations"] = sum(self.invalidations.values())
        return stats
