"""Canonical query forms: the plan-cache key.

Two queries that differ only in variable names (and atom listing order)
describe the same join problem, so a long-lived engine should plan them
once.  This module computes a *canonical form* for a conjunctive query — a
string that is identical for queries isomorphic up to variable renaming —
together with the variable/atom correspondence needed to translate a cached
plan (expressed over canonical names) back into the vocabulary of the query
at hand.

Canonicalization is a greedy refinement: atoms are emitted in sorted order
by (relation name, arity, canonical indices of already-named variables), and
variables receive canonical names ``v0, v1, ...`` in order of first
appearance in that emission.  The scheme is deterministic and *sound*: equal
forms imply the queries are identical after renaming each query's variables
to its canonical names (the form spells out the full atom structure and
head).  It is not a perfect graph canonization — pathologically symmetric
self-joins may canonicalize differently from a permuted copy — but an
imperfect match only costs a cache miss, never a wrong plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.query.atoms import ConjunctiveQuery
from repro.query.builder import Query


@dataclass(frozen=True)
class CanonicalQuery:
    """A query's canonical form plus the translation tables.

    Attributes
    ----------
    form:
        The canonical string; equal forms mean "same query up to renaming".
    to_canonical:
        Mapping from the query's variable names to canonical names.
    from_canonical:
        The inverse mapping (canonical name -> this query's variable).
    atom_order:
        Original atom indices in canonical emission order: entry ``p`` is
        the index (into ``query.atoms``) of the atom at canonical position
        ``p``.
    """

    form: str
    to_canonical: Mapping[str, str]
    from_canonical: Mapping[str, str]
    atom_order: tuple[int, ...]

    def translate_variables(self, canonical_names: tuple[str, ...]
                            ) -> tuple[str, ...]:
        """Map a tuple of canonical variable names back to query variables."""
        return tuple(self.from_canonical[c] for c in canonical_names)

    def canonicalize_variables(self, variables: tuple[str, ...]
                               ) -> tuple[str, ...]:
        """Map a tuple of this query's variables to canonical names."""
        return tuple(self.to_canonical[v] for v in variables)

    def atom_index_at(self, canonical_position: int) -> int:
        """The original atom index sitting at a canonical position."""
        return self.atom_order[canonical_position]

    def canonical_position_of(self, atom_index: int) -> int:
        """The canonical position of an original atom index."""
        return self.atom_order.index(atom_index)


# WCOJ plan payloads are either a plain variable order (enumeration plans)
# or a (mode tag, variable order) pair once aggregates or ranked
# enumeration are planned — "recursion" for in-recursion semiring
# elimination, "fold" for drain-and-fold over the streamed join, "anyk"
# for any-k ranked enumeration (drain-and-heap ordered plans stay
# untagged: they run the plain enumeration payload and sort above it).
# A "recursion"-tagged payload always runs the component-factorized
# eliminator: the component split is recomputed from the (translated)
# order and the query structure at run time, so the tag needs no extra
# cached state and replays correctly for every isomorphic query.

#: The aggregate-mode tags a structured WCOJ/Yannakakis payload may carry.
AGGREGATE_MODE_TAGS = ("recursion", "fold")

#: The ranked-execution tags ("drain" plans carry no tag).
RANKED_MODE_TAGS = ("anyk",)

_MODE_TAGS = AGGREGATE_MODE_TAGS + RANKED_MODE_TAGS


def _is_mode_tagged(payload) -> bool:
    return (isinstance(payload, tuple) and len(payload) == 2
            and payload[0] in _MODE_TAGS
            and isinstance(payload[1], tuple))


def payload_order(payload: tuple) -> tuple[str, ...]:
    """The variable order inside a (possibly mode-tagged) WCOJ payload."""
    if _is_mode_tagged(payload):
        return payload[1]
    return payload


def payload_aggregate_mode(payload) -> str | None:
    """The aggregate-mode tag of a plan payload (None when untagged)."""
    if _is_mode_tagged(payload) and payload[0] in AGGREGATE_MODE_TAGS:
        return payload[0]
    return None


def payload_ranked_mode(payload) -> str | None:
    """The ranked-execution tag of a plan payload (None when untagged)."""
    if _is_mode_tagged(payload) and payload[0] in RANKED_MODE_TAGS:
        return payload[0]
    return None


def canonicalize_wcoj_payload(payload: tuple, canon: CanonicalQuery) -> tuple:
    """Render a WCOJ plan payload in canonical variable names.

    Plan-cache entries must be expressed over canonical vocabulary so
    isomorphic queries can share them; aggregate-mode and ranked plans
    carry a ``(mode, order)`` pair whose mode tag is name-free and whose
    order translates like a plain payload — keeping the tag inside the
    cached payload is what makes an in-recursion plan replay as an
    in-recursion plan (and an any-k plan as an any-k plan) for every
    isomorphic query.
    """
    if _is_mode_tagged(payload):
        mode, order = payload
        return (mode, canon.canonicalize_variables(order))
    return canon.canonicalize_variables(payload)


def translate_wcoj_payload(payload: tuple, canon: CanonicalQuery) -> tuple:
    """Map a canonical WCOJ plan payload back to a query's vocabulary."""
    if _is_mode_tagged(payload):
        mode, order = payload
        return (mode, canon.translate_variables(order))
    return canon.translate_variables(payload)


def fingerprint_drift(current: tuple[int, ...],
                      planned: tuple[int, ...]) -> int:
    """How far a statistics fingerprint has drifted from plan time.

    Fingerprints are per-canonical-atom power-of-two size buckets
    (:func:`repro.relational.statistics.statistics_fingerprint`); the
    drift is the largest per-atom bucket distance, i.e. the number of
    doublings/halvings the most-changed input relation has gone through.
    Standing queries compare this against their re-plan threshold: a
    drift of 1 already means some input left the size regime its plan
    was priced for.
    """
    if len(current) != len(planned):
        raise ValueError(
            f"fingerprints differ in arity: {len(current)} vs {len(planned)}"
        )
    if not current:
        return 0
    return max(abs(a - b) for a, b in zip(current, planned))


def canonical_query(query: ConjunctiveQuery | Query) -> CanonicalQuery:
    """Compute the canonical form of a (possibly rich) query.

    For a plain :class:`ConjunctiveQuery` the form covers atom structure
    and head — unchanged from the original scheme.  For a rich
    :class:`~repro.query.builder.Query` the form is computed over the
    lowered full-CQ core and extended with canonical renderings of the
    selections (constant values included — two queries selecting different
    constants must not share result-cache entries), the aggregate heads
    (aliases excluded: results translate positionally), the ORDER BY keys,
    and the LIMIT.  Isomorphic projected/selected/aggregated queries
    therefore share one plan-cache entry.
    """
    rich = query if isinstance(query, Query) else None
    core = rich.core if rich is not None else query
    return _canonical_core(core, rich)


def _canonical_core(query: ConjunctiveQuery,
                    rich: Query | None) -> CanonicalQuery:
    atoms = query.atoms
    unnamed = len(query.variables)  # sorts after every assigned index
    assigned: dict[str, int] = {}
    order: list[int] = []
    remaining = set(range(len(atoms)))

    def sort_key(i: int) -> tuple:
        atom = atoms[i]
        return (
            atom.relation,
            len(atom.variables),
            tuple(assigned.get(v, unnamed) for v in atom.variables),
            i,
        )

    while remaining:
        chosen = min(remaining, key=sort_key)
        remaining.remove(chosen)
        order.append(chosen)
        for v in atoms[chosen].variables:
            if v not in assigned:
                assigned[v] = len(assigned)

    to_canonical = {v: f"v{idx}" for v, idx in assigned.items()}
    from_canonical = {c: v for v, c in to_canonical.items()}

    body = ";".join(
        f"{atoms[i].relation}({','.join(to_canonical[v] for v in atoms[i].variables)})"
        for i in order
    )
    if rich is None:
        head = ",".join(to_canonical[v] for v in query.head)
        extras = ""
    else:
        head = ",".join(to_canonical[v] for v in rich.head_vars)
        parts = []
        if rich.all_selections:
            rendered = sorted(sel.canonical_str(to_canonical)
                              for sel in rich.all_selections)
            parts.append("sel:" + ";".join(rendered))
        if rich.aggregates:
            parts.append("agg:" + ";".join(
                f"{a.kind}({to_canonical[a.var] if a.var is not None else '*'})"
                for a in rich.aggregates
            ))
        if rich.order_by:
            # Output columns canonicalize to the head variable's canonical
            # name or to the positional tag of the aggregate column.
            tags = {col: to_canonical[col] for col in rich.head_vars}
            tags.update({a.alias: f"agg{i}"
                         for i, a in enumerate(rich.aggregates)})
            parts.append("ord:" + ",".join(
                ("-" if descending else "") + tags[column]
                for column, descending in rich.order_by
            ))
        if rich.limit is not None:
            parts.append(f"lim:{rich.limit}")
        extras = "".join("|" + p for p in parts)
    return CanonicalQuery(
        form=f"{body}=>{head}{extras}",
        to_canonical=MappingProxyType(to_canonical),
        from_canonical=MappingProxyType(from_canonical),
        atom_order=tuple(order),
    )
