"""The constraint dependency graph G_DC and compatible variable orders.

Definition 3 of the paper: G_DC has the query variables as vertices and, for
every degree constraint (X, Y, N_{Y|X}), all directed edges (x, y) with
x in X and y in Y - X.  The constraint set is *acyclic* when G_DC is a DAG,
and a *compatible* variable order is any topological order of G_DC extended
to all variables.  Cardinality constraints add no edges, so they never affect
acyclicity.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.constraints.degree import DegreeConstraintSet
from repro.errors import ConstraintError


def constraint_dependency_graph(dc: DegreeConstraintSet) -> nx.DiGraph:
    """Build G_DC as a networkx DiGraph over all the query variables."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dc.variables)
    for constraint in dc:
        for x in constraint.x:
            for y in constraint.free_variables:
                graph.add_edge(x, y)
    return graph


def is_acyclic(dc: DegreeConstraintSet) -> bool:
    """True if the constraint dependency graph is a DAG."""
    return nx.is_directed_acyclic_graph(constraint_dependency_graph(dc))


def find_cycle(dc: DegreeConstraintSet) -> list[tuple[str, str]] | None:
    """Return one directed cycle of G_DC as a list of edges, or None."""
    graph = constraint_dependency_graph(dc)
    try:
        return list(nx.find_cycle(graph, orientation="original"))[:]
    except nx.NetworkXNoCycle:
        return None


def compatible_variable_order(dc: DegreeConstraintSet,
                              prefer: Sequence[str] | None = None) -> tuple[str, ...]:
    """A variable order compatible with an acyclic DC.

    The order lists all query variables such that for every constraint
    (X, Y, N), every x in X precedes every y in Y - X.  When ``prefer`` is
    given, ties are broken to follow that ordering as closely as possible
    (useful for deterministic output).

    Raises
    ------
    ConstraintError
        If DC is cyclic (no compatible order exists).
    """
    graph = constraint_dependency_graph(dc)
    if not nx.is_directed_acyclic_graph(graph):
        raise ConstraintError("degree constraints are cyclic; no compatible order exists")
    if prefer is None:
        prefer = dc.variables
    priority = {v: i for i, v in enumerate(prefer)}
    # Kahn's algorithm with a preference-ordered frontier.
    in_degree = {v: graph.in_degree(v) for v in graph.nodes}
    order: list[str] = []
    frontier = sorted(
        [v for v, d in in_degree.items() if d == 0],
        key=lambda v: priority.get(v, len(priority)),
    )
    while frontier:
        v = frontier.pop(0)
        order.append(v)
        for _, w in graph.out_edges(v):
            in_degree[w] -= 1
            if in_degree[w] == 0:
                frontier.append(w)
        frontier.sort(key=lambda u: priority.get(u, len(priority)))
    if len(order) != len(dc.variables):
        raise ConstraintError("internal error: topological sort did not cover all variables")
    return tuple(order)


def order_is_compatible(dc: DegreeConstraintSet, order: Sequence[str]) -> bool:
    """Check whether ``order`` is compatible with DC (Definition 3)."""
    position = {v: i for i, v in enumerate(order)}
    if set(position) != set(dc.variables):
        return False
    for constraint in dc:
        for x in constraint.x:
            for y in constraint.free_variables:
                if position[x] > position[y]:
                    return False
    return True
