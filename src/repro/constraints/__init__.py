"""Degree constraints, their dependency graph, and acyclification."""

from repro.constraints.degree import (
    DegreeConstraint,
    DegreeConstraintSet,
    cardinality_constraints,
    constraints_from_database,
)
from repro.constraints.dependency_graph import (
    constraint_dependency_graph,
    is_acyclic,
    compatible_variable_order,
)
from repro.constraints.fd import FunctionalDependency, fd_closure, fds_to_constraints
from repro.constraints.acyclify import (
    bound_variables,
    all_variables_bound,
    acyclify,
    acyclify_simple_fds,
    best_acyclic_weakening,
)

__all__ = [
    "DegreeConstraint",
    "DegreeConstraintSet",
    "cardinality_constraints",
    "constraints_from_database",
    "constraint_dependency_graph",
    "is_acyclic",
    "compatible_variable_order",
    "FunctionalDependency",
    "fd_closure",
    "fds_to_constraints",
    "bound_variables",
    "all_variables_bound",
    "acyclify",
    "acyclify_simple_fds",
    "best_acyclic_weakening",
]
