"""Functional dependencies as a special case of degree constraints.

A functional dependency A_X -> A_Y is the degree constraint (X, X u Y, 1):
fixing the X-values leaves at most one Y-binding.  This module provides the
classical FD closure computation (Armstrong axioms via the standard chase
loop), conversion between FDs and degree constraints, and detection of
"simple" FDs (single variable to single variable), the class for which
Corollary 5.3 gives an exact acyclification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.errors import ConstraintError


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``determinant -> dependent``.

    Attributes
    ----------
    determinant:
        The left-hand side X.
    dependent:
        The right-hand side Y (need not be disjoint from X; the trivial part
        is ignored by closure computations).
    """

    determinant: frozenset[str]
    dependent: frozenset[str]

    def __init__(self, determinant: Iterable[str], dependent: Iterable[str]):
        object.__setattr__(self, "determinant", frozenset(determinant))
        object.__setattr__(self, "dependent", frozenset(dependent))
        if not self.determinant:
            raise ConstraintError("an FD needs a non-empty determinant")
        if not self.dependent:
            raise ConstraintError("an FD needs a non-empty dependent")

    @property
    def is_trivial(self) -> bool:
        """True when the dependent is contained in the determinant."""
        return self.dependent <= self.determinant

    @property
    def is_simple(self) -> bool:
        """True for single-variable -> single-variable FDs."""
        return len(self.determinant) == 1 and len(self.dependent - self.determinant) == 1

    def to_degree_constraint(self, guard: str | None = None) -> DegreeConstraint:
        """The FD as a degree constraint (X, X u Y, 1)."""
        return DegreeConstraint.functional_dependency(
            self.determinant, self.dependent, guard=guard
        )

    def __str__(self) -> str:
        lhs = ",".join(sorted(self.determinant))
        rhs = ",".join(sorted(self.dependent))
        return f"{lhs} -> {rhs}"


def fd_closure(attributes: Iterable[str], fds: Sequence[FunctionalDependency]
               ) -> frozenset[str]:
    """The closure {attributes}+ under the given FDs (standard fixpoint loop)."""
    closure = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.determinant <= closure and not fd.dependent <= closure:
                closure |= fd.dependent
                changed = True
    return frozenset(closure)


def implies(fds: Sequence[FunctionalDependency], candidate: FunctionalDependency) -> bool:
    """True if ``candidate`` is implied by ``fds`` (via closure)."""
    return candidate.dependent <= fd_closure(candidate.determinant, fds)


def minimal_cover_is_acyclic(fds: Sequence[FunctionalDependency]) -> bool:
    """True when the digraph of simple FDs (x -> y edges) has no directed
    cycle.  Non-simple FDs contribute edges from each determinant variable to
    each dependent variable, mirroring G_DC."""
    import networkx as nx

    graph = nx.DiGraph()
    for fd in fds:
        for x in fd.determinant:
            for y in fd.dependent - fd.determinant:
                graph.add_edge(x, y)
    return nx.is_directed_acyclic_graph(graph)


def fds_to_constraints(variables: Sequence[str], fds: Sequence[FunctionalDependency],
                       guards: dict[FunctionalDependency, str] | None = None
                       ) -> DegreeConstraintSet:
    """Convert a list of FDs into a :class:`DegreeConstraintSet` (FD-only)."""
    constraints = []
    for fd in fds:
        if fd.is_trivial:
            continue
        guard = (guards or {}).get(fd)
        constraints.append(fd.to_degree_constraint(guard=guard))
    return DegreeConstraintSet(variables, constraints)


def keys_of(attributes: Sequence[str], fds: Sequence[FunctionalDependency]
            ) -> list[frozenset[str]]:
    """All minimal keys of a relation schema under the given FDs.

    Brute-force over subsets (fine for query-sized schemas); used by tests
    and by OLAP-style workload generators to place key/foreign-key FDs.
    """
    from itertools import combinations

    attribute_set = frozenset(attributes)
    keys: list[frozenset[str]] = []
    for size in range(1, len(attributes) + 1):
        for candidate in combinations(attributes, size):
            candidate_set = frozenset(candidate)
            if any(k <= candidate_set for k in keys):
                continue
            if fd_closure(candidate_set, fds) >= attribute_set:
                keys.append(candidate_set)
    return keys
