"""Degree constraints (Definition 1 of the paper).

A degree constraint is a triple (X, Y, N_{Y|X}) with X a proper subset of Y,
asserting that in the guarding relation R_F (with Y subseteq F)

    deg_F(A_Y | A_X) = max_t |pi_{A_Y} sigma_{A_X = t}(R_F)| <= N_{Y|X}.

Cardinality constraints are the special case X = emptyset; functional
dependencies are the special case N_{Y|X} = 1.  A
:class:`DegreeConstraintSet` collects constraints together with the query
variables they speak about, can be *validated* against a database, *derived*
from a database, and queried for acyclicity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ConstraintError
from repro.query.atoms import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.statistics import degree as relation_degree


@dataclass(frozen=True)
class DegreeConstraint:
    """One degree constraint (X, Y, N_{Y|X}) with an optional guard.

    Attributes
    ----------
    x:
        The conditioning variable set X (may be empty).
    y:
        The constrained variable set Y; must strictly contain X.
    bound:
        The numeric bound N_{Y|X} (>= 0; a bound of 0 forces emptiness).
    guard:
        Name of the relation (or query edge key) guarding the constraint,
        i.e. a relation whose variables include Y.  ``None`` means "to be
        resolved against a query" — most operations require a guard.
    """

    x: frozenset[str]
    y: frozenset[str]
    bound: float
    guard: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", frozenset(self.x))
        object.__setattr__(self, "y", frozenset(self.y))
        if not self.x < self.y:
            raise ConstraintError(
                f"degree constraint requires X to be a proper subset of Y, got "
                f"X={sorted(self.x)}, Y={sorted(self.y)}"
            )
        if self.bound < 0:
            raise ConstraintError(f"degree bound must be non-negative, got {self.bound}")

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_cardinality(self) -> bool:
        """True if X is empty (a cardinality constraint |R_F| <= N)."""
        return not self.x

    @property
    def is_fd(self) -> bool:
        """True if the bound is 1 (a functional dependency A_X -> A_Y)."""
        return self.bound <= 1

    @property
    def is_simple_fd(self) -> bool:
        """True if it is an FD from one variable to one other variable."""
        return self.is_fd and len(self.x) == 1 and len(self.y - self.x) == 1

    @property
    def free_variables(self) -> frozenset[str]:
        """Y - X: the variables whose multiplicity the constraint limits."""
        return self.y - self.x

    @property
    def log_bound(self) -> float:
        """log2 N_{Y|X}; -inf when the bound is 0."""
        if self.bound == 0:
            return float("-inf")
        return math.log2(self.bound)

    # ------------------------------------------------------------------
    # Constructors and validation
    # ------------------------------------------------------------------
    @classmethod
    def cardinality(cls, variables: Iterable[str], bound: float,
                    guard: str | None = None) -> "DegreeConstraint":
        """A cardinality constraint |R(variables)| <= bound."""
        return cls(x=frozenset(), y=frozenset(variables), bound=bound, guard=guard)

    @classmethod
    def functional_dependency(cls, x: Iterable[str], y: Iterable[str],
                              guard: str | None = None) -> "DegreeConstraint":
        """The FD A_X -> A_Y as the degree constraint (X, X u Y, 1)."""
        x_set = frozenset(x)
        return cls(x=x_set, y=x_set | frozenset(y), bound=1, guard=guard)

    def with_guard(self, guard: str) -> "DegreeConstraint":
        """A copy with the guard set."""
        return DegreeConstraint(x=self.x, y=self.y, bound=self.bound, guard=guard)

    def weaken_to(self, new_y: Iterable[str]) -> "DegreeConstraint":
        """Replace Y by a smaller set Y' (X < Y' <= Y) keeping the same bound.

        This is the constraint-weakening move used by Proposition 5.2 (any
        relation guarding (X, Y, N) also guards (X, Y', N)).
        """
        new_y_set = frozenset(new_y)
        if not (self.x < new_y_set <= self.y):
            raise ConstraintError(
                f"cannot weaken {self} to Y'={sorted(new_y_set)}"
            )
        return DegreeConstraint(x=self.x, y=new_y_set, bound=self.bound, guard=self.guard)

    def is_satisfied_by(self, database: Database,
                        variable_of_column: Mapping[str, Mapping[str, str]] | None = None
                        ) -> bool:
        """Check the constraint against its guard relation in ``database``.

        ``variable_of_column`` optionally maps guard relation name ->
        (column -> variable) when relation column names differ from query
        variables; by default columns are assumed to be named after the
        variables themselves.
        """
        if self.guard is None:
            raise ConstraintError(f"constraint {self} has no guard to validate against")
        relation = database.get(self.guard)
        if variable_of_column and self.guard in variable_of_column:
            renaming = {col: var for col, var in variable_of_column[self.guard].items()}
            relation = relation.rename(renaming)
        for variable in self.y:
            if variable not in relation.schema:
                raise ConstraintError(
                    f"guard {self.guard!r} does not contain variable {variable!r} "
                    f"required by constraint {self}"
                )
        if len(relation) == 0:
            return True
        actual = relation_degree(relation, tuple(self.x), tuple(self.y - self.x))
        return actual <= self.bound

    def __str__(self) -> str:
        x_text = ",".join(sorted(self.x)) or "()"
        y_text = ",".join(sorted(self.y))
        guard_text = f" guarded by {self.guard}" if self.guard else ""
        return f"deg({y_text} | {x_text}) <= {self.bound:g}{guard_text}"


class DegreeConstraintSet:
    """A set DC of degree constraints over a set of query variables.

    Parameters
    ----------
    variables:
        All query variables (the ground set [n]).
    constraints:
        The degree constraints.  Each constraint's variables must be drawn
        from ``variables``.
    """

    def __init__(self, variables: Sequence[str],
                 constraints: Iterable[DegreeConstraint] = ()):
        self._variables = tuple(variables)
        variable_set = set(self._variables)
        self._constraints: list[DegreeConstraint] = []
        for constraint in constraints:
            if not constraint.y <= variable_set:
                raise ConstraintError(
                    f"constraint {constraint} mentions variables outside "
                    f"{sorted(variable_set)}"
                )
            self._constraints.append(constraint)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """The ground set of variables."""
        return self._variables

    @property
    def constraints(self) -> tuple[DegreeConstraint, ...]:
        """The constraints, in insertion order."""
        return tuple(self._constraints)

    def __iter__(self) -> Iterator[DegreeConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def add(self, constraint: DegreeConstraint) -> None:
        """Add one more constraint (mutating)."""
        if not constraint.y <= set(self._variables):
            raise ConstraintError(
                f"constraint {constraint} mentions variables outside "
                f"{self._variables}"
            )
        self._constraints.append(constraint)

    def replace(self, old: DegreeConstraint, new: DegreeConstraint
                ) -> "DegreeConstraintSet":
        """A new set with ``old`` replaced by ``new``."""
        constraints = [new if c == old else c for c in self._constraints]
        return DegreeConstraintSet(self._variables, constraints)

    def without(self, constraint: DegreeConstraint) -> "DegreeConstraintSet":
        """A new set with ``constraint`` removed."""
        constraints = [c for c in self._constraints if c != constraint]
        return DegreeConstraintSet(self._variables, constraints)

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    def cardinality_constraints(self) -> tuple[DegreeConstraint, ...]:
        """The cardinality constraints in the set."""
        return tuple(c for c in self._constraints if c.is_cardinality)

    def proper_degree_constraints(self) -> tuple[DegreeConstraint, ...]:
        """The constraints with non-empty X."""
        return tuple(c for c in self._constraints if not c.is_cardinality)

    def only_cardinalities(self) -> bool:
        """True if every constraint is a cardinality constraint."""
        return all(c.is_cardinality for c in self._constraints)

    def only_cardinalities_and_simple_fds(self) -> bool:
        """True if every constraint is a cardinality constraint or a simple FD
        (the setting of Corollary 5.3 / Gottlob et al.)."""
        return all(c.is_cardinality or c.is_simple_fd for c in self._constraints)

    # ------------------------------------------------------------------
    # Structure / validation
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """True if the constraint dependency graph G_DC is acyclic (Def. 3)."""
        from repro.constraints.dependency_graph import is_acyclic
        return is_acyclic(self)

    def validate(self, database: Database,
                 variable_of_column: Mapping[str, Mapping[str, str]] | None = None
                 ) -> bool:
        """True if the database satisfies every constraint (D |= DC)."""
        return all(
            c.is_satisfied_by(database, variable_of_column) for c in self._constraints
        )

    def violated_constraints(self, database: Database,
                             variable_of_column: Mapping[str, Mapping[str, str]] | None = None
                             ) -> list[DegreeConstraint]:
        """The constraints the database does *not* satisfy."""
        return [
            c for c in self._constraints
            if not c.is_satisfied_by(database, variable_of_column)
        ]

    def guards(self) -> dict[str, list[DegreeConstraint]]:
        """Group constraints by guard relation name."""
        grouped: dict[str, list[DegreeConstraint]] = {}
        for constraint in self._constraints:
            if constraint.guard is not None:
                grouped.setdefault(constraint.guard, []).append(constraint)
        return grouped

    def constraints_bounding(self, variable: str) -> tuple[DegreeConstraint, ...]:
        """Constraints whose free set Y - X contains ``variable``."""
        return tuple(c for c in self._constraints if variable in c.free_variables)

    def __str__(self) -> str:
        lines = [str(c) for c in self._constraints]
        return "DC{" + "; ".join(lines) + "}"

    def __repr__(self) -> str:
        return f"DegreeConstraintSet({len(self._constraints)} constraints over {self._variables})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def cardinality_constraints(query: ConjunctiveQuery, database: Database
                            ) -> DegreeConstraintSet:
    """Build the cardinality-only constraint set |R_F| <= current size, one
    per query atom, guarded by the atom's edge key."""
    query.validate_against(database)
    constraints = []
    for i, atom in enumerate(query.atoms):
        relation = database.get(atom.relation)
        constraints.append(
            DegreeConstraint.cardinality(atom.variables, len(relation),
                                         guard=query.edge_key(i))
        )
    return DegreeConstraintSet(query.variables, constraints)


def constraints_from_database(query: ConjunctiveQuery, database: Database,
                              max_key_size: int = 1,
                              include_cardinalities: bool = True
                              ) -> DegreeConstraintSet:
    """Derive degree constraints from the data itself.

    For every atom and every conditioning set X of at most ``max_key_size``
    atom variables, add the constraint (X, F, observed degree) guarded by the
    atom.  This mirrors what an engine with degree statistics in its catalog
    would know about the instance.
    """
    from itertools import combinations

    query.validate_against(database)
    constraints: list[DegreeConstraint] = []
    for i, atom in enumerate(query.atoms):
        relation = database.get(atom.relation)
        renamed = relation.rename(dict(zip(relation.attributes, atom.variables)))
        edge_key = query.edge_key(i)
        if include_cardinalities:
            constraints.append(
                DegreeConstraint.cardinality(atom.variables, len(renamed), guard=edge_key)
            )
        attrs = atom.variables
        for size in range(1, min(max_key_size, len(attrs) - 1) + 1):
            for x in combinations(attrs, size):
                rest = tuple(a for a in attrs if a not in x)
                observed = relation_degree(renamed, x, rest) if len(renamed) else 0
                constraints.append(
                    DegreeConstraint(x=frozenset(x), y=frozenset(attrs),
                                     bound=max(observed, 1 if len(renamed) else 0),
                                     guard=edge_key)
                )
    return DegreeConstraintSet(query.variables, constraints)
