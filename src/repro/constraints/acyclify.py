"""Boundedness and acyclification of degree constraints (Proposition 5.2).

The worst-case output size sup_{D |= DC} |Q(D)| is finite exactly when every
query variable is *bound*: reachable from cardinality constraints by chasing
degree constraints (Claim 1 in the proof of Proposition 5.2).  When DC is
cyclic, Proposition 5.2 shows one can repeatedly weaken constraints — drop a
variable y from some (X, Y, N) lying on a cycle — without losing boundedness,
until the constraint dependency graph becomes acyclic.  Corollary 5.3 gives
the exact (bound-preserving) version when all non-cardinality constraints are
simple FDs.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable

import networkx as nx

from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.constraints.dependency_graph import constraint_dependency_graph, is_acyclic
from repro.errors import ConstraintError, UnboundedQueryError


def bound_variables(dc: DegreeConstraintSet) -> frozenset[str]:
    """The set of bound variables under DC.

    A variable is bound if it belongs to the Y of some constraint whose X is
    already entirely bound; cardinality constraints (empty X) seed the
    fixpoint.
    """
    bound: set[str] = set()
    changed = True
    while changed:
        changed = False
        for constraint in dc:
            if constraint.x <= bound and not constraint.y <= bound:
                bound |= constraint.y
                changed = True
    return frozenset(bound)


def all_variables_bound(dc: DegreeConstraintSet) -> bool:
    """True when every query variable is bound (finite worst-case output)."""
    return bound_variables(dc) >= set(dc.variables)


def require_bounded(dc: DegreeConstraintSet) -> None:
    """Raise :class:`UnboundedQueryError` when some variable is unbound."""
    unbound = set(dc.variables) - bound_variables(dc)
    if unbound:
        raise UnboundedQueryError(
            f"variables {sorted(unbound)} are not bound by the degree constraints; "
            "the worst-case output size is unbounded"
        )


def acyclify(dc: DegreeConstraintSet) -> DegreeConstraintSet:
    """Weaken a cyclic DC into an acyclic DC' per Proposition 5.2.

    The result satisfies: (i) any database satisfying DC satisfies DC'
    (weakening only shrinks Y sets), and (ii) the worst-case output size
    under DC' remains finite.  The greedy choice follows Claim 2's proof: on
    each cycle of G_DC there is a constraint edge (x, y) whose removal (by
    dropping y from that constraint's Y) keeps every variable bound.

    Raises
    ------
    UnboundedQueryError
        If DC itself leaves some variable unbound.
    ConstraintError
        If no bound-preserving weakening exists on some cycle (cannot happen
        for bounded DC by Proposition 5.2; raised defensively).
    """
    require_bounded(dc)
    current = DegreeConstraintSet(dc.variables, dc.constraints)
    while not is_acyclic(current):
        graph = constraint_dependency_graph(current)
        cycle_edges = list(nx.find_cycle(graph, orientation="original"))
        cycle_vertices = {edge[0] for edge in cycle_edges} | {edge[1] for edge in cycle_edges}
        weakened = _weaken_one_on_cycle(current, cycle_edges, cycle_vertices)
        if weakened is None:
            raise ConstraintError(
                "could not find a bound-preserving weakening on a constraint cycle; "
                "this contradicts Proposition 5.2 for bounded DC"
            )
        current = weakened
    return current


def _weaken_one_on_cycle(dc: DegreeConstraintSet,
                         cycle_edges: Iterable[tuple],
                         cycle_vertices: set[str]) -> DegreeConstraintSet | None:
    """Try every (constraint, y) pair on the cycle; return the first
    weakening that keeps all variables bound, or None."""
    cycle_edge_pairs = {(e[0], e[1]) for e in cycle_edges}
    for constraint in dc:
        for y in sorted(constraint.free_variables):
            if y not in cycle_vertices:
                continue
            # The constraint must contribute an edge (x, y) on the cycle.
            if not any((x, y) in cycle_edge_pairs for x in constraint.x):
                continue
            new_y = constraint.y - {y}
            if new_y == constraint.x:
                candidate = dc.without(constraint)
            else:
                candidate = dc.replace(constraint, constraint.weaken_to(new_y))
            if all_variables_bound(candidate):
                return candidate
    return None


def acyclify_simple_fds(dc: DegreeConstraintSet) -> DegreeConstraintSet:
    """Corollary 5.3: for DC with only cardinality constraints and simple FDs,
    drop FDs to break every cycle without changing the worst-case bound.

    Cycles among simple FDs are equivalence classes (h(i) = h(j) for all
    members), so within each strongly connected component of the FD digraph
    it suffices to keep a spanning path of FDs; FDs between components never
    lie on cycles because the condensation is a DAG.
    """
    if not dc.only_cardinalities_and_simple_fds():
        raise ConstraintError(
            "acyclify_simple_fds applies only to cardinality constraints and simple FDs"
        )
    graph = nx.DiGraph()
    graph.add_nodes_from(dc.variables)
    fd_for_edge: dict[tuple[str, str], DegreeConstraint] = {}
    for constraint in dc:
        if constraint.is_cardinality:
            continue
        (x,) = tuple(constraint.x)
        (y,) = tuple(constraint.free_variables)
        graph.add_edge(x, y)
        fd_for_edge.setdefault((x, y), constraint)

    keep: set[DegreeConstraint] = {c for c in dc if c.is_cardinality}
    components = list(nx.strongly_connected_components(graph))
    component_of = {}
    for i, comp in enumerate(components):
        for v in comp:
            component_of[v] = i

    # Keep cross-component FDs: they cannot participate in a cycle.
    for (x, y), constraint in fd_for_edge.items():
        if component_of[x] != component_of[y]:
            keep.add(constraint)

    # Within a component, keep a spanning path of existing FD edges; all
    # members are entropy-equal so the dropped FDs do not change the bound.
    for comp in components:
        if len(comp) <= 1:
            continue
        members = sorted(comp)
        sub = graph.subgraph(comp)
        # A DFS tree of the strongly connected subgraph reaches every member.
        root = members[0]
        tree_edges = list(nx.dfs_edges(sub, source=root))
        for x, y in tree_edges:
            keep.add(fd_for_edge[(x, y)])
        # Also keep one edge back to the root so every member determines the
        # root (preserving full equivalence of the component in the closure).
        for x, y in sub.edges():
            if y == root and x != root:
                keep.add(fd_for_edge[(x, y)])
                break

    result = DegreeConstraintSet(dc.variables, [c for c in dc if c in keep])
    if not is_acyclic(result):
        # Keeping both a DFS tree and one return edge can in rare shapes keep a
        # cycle; fall back to the general weakening which preserves soundness.
        return acyclify(result)
    return result


def best_acyclic_weakening(dc: DegreeConstraintSet,
                           objective: Callable[[DegreeConstraintSet], float],
                           max_options: int = 200_000) -> DegreeConstraintSet:
    """Exhaustively search bound-preserving weakenings for the acyclic DC'
    minimizing ``objective`` (e.g. the polymatroid/modular bound).

    Every constraint may keep any subset of its free variables (dropping the
    rest), including being dropped entirely; candidates that are cyclic or
    leave a variable unbound are discarded.  The search is exponential in the
    total number of free variables, which is fine at query scale; it refuses
    to run past ``max_options`` candidate combinations.

    Raises
    ------
    UnboundedQueryError
        If DC itself is unbounded.
    ConstraintError
        If the search space exceeds ``max_options``.
    """
    require_bounded(dc)
    option_lists: list[list[DegreeConstraint | None]] = []
    total = 1
    for constraint in dc:
        options: list[DegreeConstraint | None] = []
        free = sorted(constraint.free_variables)
        # Subsets of free variables to *keep* (non-empty keeps a constraint).
        for mask in range(1 << len(free)):
            kept = frozenset(v for i, v in enumerate(free) if mask >> i & 1)
            if not kept:
                options.append(None)
            else:
                options.append(constraint.weaken_to(constraint.x | kept))
        option_lists.append(options)
        total *= len(options)
        if total > max_options:
            raise ConstraintError(
                f"acyclification search space too large ({total} > {max_options})"
            )

    best: tuple[float, DegreeConstraintSet] | None = None
    for combo in product(*option_lists):
        constraints = [c for c in combo if c is not None]
        candidate = DegreeConstraintSet(dc.variables, constraints)
        if not all_variables_bound(candidate):
            continue
        if not is_acyclic(candidate):
            continue
        value = objective(candidate)
        if best is None or value < best[0] - 1e-12:
            best = (value, candidate)
    if best is None:
        raise ConstraintError("no acyclic bound-preserving weakening found")
    return best[1]
