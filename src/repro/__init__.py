"""repro — worst-case optimal join algorithms, bounds, and benchmarks.

A from-scratch reproduction of the systems described in

    Hung Q. Ngo, "Worst-Case Optimal Join Algorithms: Techniques, Results,
    and Open Problems", PODS 2018 (arXiv:1803.09930).

The package is organized bottom-up:

* :mod:`repro.relational`  — relations, indexes, relational algebra;
* :mod:`repro.query`       — conjunctive queries, hypergraphs, parsing;
* :mod:`repro.covers`      — LPs and fractional edge covers;
* :mod:`repro.infotheory`  — entropy, polymatroids, Shannon inequalities;
* :mod:`repro.constraints` — degree constraints and acyclification;
* :mod:`repro.bounds`      — AGM, polymatroid, modular/acyclic bounds;
* :mod:`repro.joins`       — Generic-Join, Leapfrog Triejoin, Algorithm 1-3,
  pairwise-plan baselines;
* :mod:`repro.panda`       — Shannon-flow inequalities, proof sequences,
  the PANDA interpreter, Example 1 / Table 2;
* :mod:`repro.datagen`     — synthetic workloads;
* :mod:`repro.engine`      — the persistent query engine: plan cache, index
  registry, cost-based dispatch, streaming execution;
* :mod:`repro.obs`         — observability: query-lifecycle tracing, a
  metrics registry, EXPLAIN ANALYZE cost-model calibration;
* :mod:`repro.experiments` — one module per table / figure / claim.

The most common entry points are re-exported here.
"""

from repro.relational import Database, Relation
from repro.query import ConjunctiveQuery, Atom, parse_query
from repro.query.builder import Q, Query, QueryBuilder
from repro.query.semiring import (
    Aggregate,
    Semiring,
    avg_,
    count,
    max_,
    min_,
    register_semiring,
    sum_,
)
from repro.query.terms import Comparison, Constant
from repro.query.atoms import (
    triangle_query,
    clique_query,
    cycle_query,
    path_query,
    loomis_whitney_query,
)
from repro.constraints import DegreeConstraint, DegreeConstraintSet
from repro.bounds import (
    agm_bound,
    polymatroid_bound,
    modular_bound,
    output_size_bound,
)
from repro.joins import (
    generic_join,
    leapfrog_triejoin,
    nested_loop_join,
    backtracking_join,
    OperationCounter,
)
from repro.engine import Engine, EngineStats, Explanation
from repro.obs import MetricsRegistry, ProfileReport, Tracer
from repro.panda.interpreter import panda_evaluate

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Relation",
    "ConjunctiveQuery",
    "Atom",
    "Q",
    "Query",
    "QueryBuilder",
    "Aggregate",
    "Semiring",
    "count",
    "sum_",
    "min_",
    "max_",
    "avg_",
    "register_semiring",
    "Comparison",
    "Constant",
    "parse_query",
    "triangle_query",
    "clique_query",
    "cycle_query",
    "path_query",
    "loomis_whitney_query",
    "DegreeConstraint",
    "DegreeConstraintSet",
    "agm_bound",
    "polymatroid_bound",
    "modular_bound",
    "output_size_bound",
    "generic_join",
    "leapfrog_triejoin",
    "nested_loop_join",
    "backtracking_join",
    "OperationCounter",
    "Engine",
    "EngineStats",
    "Explanation",
    "MetricsRegistry",
    "ProfileReport",
    "Tracer",
    "panda_evaluate",
    "__version__",
]
