"""Standing queries: a subscription that keeps one result current.

A :class:`Subscription` pairs a query with an engine session.  It
materializes once through the engine's ordinary dispatch path, then keeps
the result relation current as the catalog changes — incrementally via the
:class:`~repro.ivm.view.ViewState` delta propagation whenever the query
shape allows it, by a *tracked full refresh* (re-execution with an
operation counter, so the cost is visible) whenever it does not.  The
fallback decision has two granularities:

* **structural** (:func:`incremental_decision`, fixed at subscribe time):
  cyclic hypergraphs, plus-only aggregate semirings, ``LIMIT`` without an
  ``ORDER BY`` (no deterministic row set to maintain) and any-k ranked
  plans (their output is a lazy enumeration, not a materialized state)
  never maintain incrementally;
* **per-delta** (reported by ``ViewState.apply`` returning None): a delta
  on a relation that several atoms read (the FAQ delta rule needs the
  query to be *linear* in the changed relation), or a delete under a
  non-invertible aggregate semiring (MIN/MAX — insert-only deltas still
  maintain), refreshes just that batch and keeps the state for future
  deltas.

Subscriptions also watch the *statistics fingerprint* their plan was
priced against: when :func:`repro.engine.fingerprint.fingerprint_drift`
reaches the configurable ``replan_threshold`` the subscription records a
``stats-drift`` plan invalidation, evicts the stale plan-cache entries and
re-plans through the dispatch path; out-of-band whole-relation rebinding
(``replace_relation`` / ``remove_relation``) does the same under the
``version-bump`` reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.fingerprint import (canonical_query, fingerprint_drift,
                                      payload_ranked_mode)
from repro.errors import QueryError
from repro.ivm.view import ViewState
from repro.joins.instrumentation import OperationCounter
from repro.joins.yannakakis import join_tree_of
from repro.query.builder import Query, sort_rows
from repro.relational.relation import Relation
from repro.relational.statistics import statistics_fingerprint


@dataclass(frozen=True)
class MaintenanceRecord:
    """What one maintenance step did and what it cost.

    ``kind`` is ``"incremental"`` (delta propagation through the stored
    messages) or ``"refresh"`` (full re-execution through the dispatch
    path); ``reason`` says why that path ran; ``operations`` is the
    executor-operation total of the step (the number the IVM benchmark
    compares against cold re-execution); ``replanned`` marks steps that
    also re-entered the planner.
    """

    kind: str
    reason: str
    seconds: float
    operations: int
    replanned: bool = False


def incremental_decision(spec: Query) -> str | None:
    """Why ``spec`` cannot be maintained incrementally, or None if it can.

    This is the *structural* half of the fallback matrix — properties of
    the query alone.  Data-dependent cases (self-join deltas, deletes
    under MIN/MAX) are decided per delta batch by ``ViewState.apply``.
    """
    if spec.limit is not None and not spec.order_by:
        return ("LIMIT without ORDER BY: the kept rows are not a "
                "deterministic function of the data")
    for agg in spec.aggregates:
        semiring = agg.semiring()
        if not semiring.has_product:
            return (f"aggregate semiring {semiring.name!r} has no product; "
                    "join-tree messages cannot combine annotations")
    try:
        join_tree_of(spec.core)
    except QueryError:
        return "cyclic hypergraph: no join tree to store messages on"
    return None


class Subscription:
    """One standing query registered with an engine session.

    Created through :meth:`repro.engine.session.Engine.subscribe`; the
    engine pushes every catalog change into it.  ``result`` is the current
    result relation, ``rows()`` the current rows honoring ORDER BY/LIMIT,
    and ``last_maintenance`` describes the most recent maintenance step.

    ``on_change`` (when given) is called with the subscription after any
    step that changed the result relation.
    """

    def __init__(self, engine, query, *, mode: str = "auto",
                 aggregate_mode: str = "auto", ranked_mode: str = "auto",
                 on_change: Callable[["Subscription"], Any] | None = None,
                 replan_threshold: int = 1):
        if replan_threshold < 1:
            raise QueryError(
                f"replan_threshold must be >= 1, got {replan_threshold}"
            )
        self._engine = engine
        self._spec = Query.coerce(query)
        self._mode = mode
        self._aggregate_mode = aggregate_mode
        self._ranked_mode = ranked_mode
        self._on_change = on_change
        self._replan_threshold = replan_threshold
        self._canon = canonical_query(self._spec)
        self._relations = frozenset(
            atom.relation for atom in self._spec.core.atoms)
        self._active = True
        self._state: ViewState | None = None
        self._fallback_reason: str | None = incremental_decision(self._spec)
        self._result: Relation | None = None
        self._planned_fingerprint: tuple[int, ...] = ()
        self.last_maintenance: MaintenanceRecord | None = None
        self._materialize("initial materialization")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query(self) -> Query:
        """The standing query."""
        return self._spec

    @property
    def result(self) -> Relation:
        """The current result relation (set semantics)."""
        return self._result

    @property
    def active(self) -> bool:
        """False once unsubscribed (or deactivated by a relation drop)."""
        return self._active

    @property
    def incremental(self) -> bool:
        """True while a ViewState is live (deltas can propagate)."""
        return self._state is not None

    @property
    def fallback_reason(self) -> str | None:
        """Why the subscription maintains by refresh (None = incremental)."""
        return self._fallback_reason

    def rows(self) -> list[tuple]:
        """The current rows, ordered and limited per the query."""
        rows = list(self._result.tuples)
        if self._spec.order_by:
            return sort_rows(rows, self._spec.output_columns,
                             self._spec.order_by, self._spec.limit)
        rows.sort()  # deterministic presentation for unordered views
        return rows

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh(self, reason: str = "manual refresh",
                replanned: bool = False) -> MaintenanceRecord:
        """Re-execute through the dispatch path and rebuild the state.

        The full cost (re-execution plus message-state rebuild) is
        charged to one counter, so ``last_maintenance.operations`` stays
        an honest account of what the fallback really did.
        """
        counter = OperationCounter()
        start = time.perf_counter()
        result = self._engine.execute(
            self._spec, mode=self._mode, counter=counter,
            aggregate_mode=self._aggregate_mode,
            ranked_mode=self._ranked_mode)
        self._rebuild_state(counter)
        self._planned_fingerprint = self._current_fingerprint()
        record = MaintenanceRecord(
            "refresh", reason, time.perf_counter() - start,
            counter.total(), replanned)
        self._finish(result, record)
        return record

    def _materialize(self, reason: str) -> None:
        """First materialization: the dispatch path plus, when the shape
        allows it, the any-k check that only a resolved plan can answer."""
        if self._fallback_reason is None:
            prepared = self._engine._prepare(
                self._spec, self._mode, self._aggregate_mode,
                self._ranked_mode)
            if payload_ranked_mode(prepared.payload) is not None:
                self._fallback_reason = (
                    "any-k ranked plan: output is a lazy enumeration, "
                    "not maintainable state")
            elif prepared.plan.strategy == "hybrid":
                self._fallback_reason = (
                    "hybrid heavy/light plan: a delta can move keys "
                    "across the partition boundary, so sub-plans are "
                    "not independently maintainable; tracked refresh")
        self.refresh(reason)

    def _on_delta(self, applied) -> None:
        """Engine callback: one effective tuple-delta batch was applied."""
        if not self._active or applied.name not in self._relations:
            return
        drift = fingerprint_drift(self._current_fingerprint(),
                                  self._planned_fingerprint)
        if drift >= self._replan_threshold:
            self._engine._record_plan_invalidation(
                "stats-drift", self._canon.form)
            self.refresh(
                f"statistics drifted {drift} size bucket(s) "
                f"(threshold {self._replan_threshold}); re-planned",
                replanned=True)
            return
        if self._state is None:
            self._refresh_after(applied, self._fallback_reason
                                or "no incremental state")
            return
        counter = OperationCounter()
        start = time.perf_counter()
        outcome = self._state.apply(applied.name, applied.inserted,
                                    applied.deleted, counter)
        if outcome is None:
            self._refresh_after(applied, self._per_delta_reason(applied))
            return
        record = MaintenanceRecord(
            "incremental", f"delta on {applied.name!r}",
            time.perf_counter() - start, counter.total())
        result = self._result_from_state()
        self._finish(result, record)

    def _refresh_after(self, applied, reason: str) -> None:
        """Fall back to a tracked refresh for one delta batch.

        The catalog already holds the post-delta contents, so re-execution
        (and the state rebuild inside :meth:`refresh`) picks them up; a
        per-delta fallback does not retire the state machinery.
        """
        try:
            self.refresh(reason)
        except QueryError:
            # e.g. a relation this query reads was dropped: the standing
            # query can no longer be evaluated — deactivate rather than
            # poisoning every future catalog mutation.
            self._active = False
            raise

    def _on_version_bump(self, name: str) -> None:
        """Engine callback: ``name`` was wholesale rebound or dropped."""
        if not self._active or name not in self._relations:
            return
        self._engine._record_plan_invalidation(
            "version-bump", self._canon.form)
        if name not in self._engine.database:
            self._active = False
            self.last_maintenance = MaintenanceRecord(
                "refresh", f"relation {name!r} was removed; "
                "subscription deactivated", 0.0, 0, replanned=True)
            return
        self.refresh(f"version bump on {name!r}; re-planned",
                     replanned=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _current_fingerprint(self) -> tuple[int, ...]:
        core = self._spec.core
        return statistics_fingerprint(
            self._engine.database,
            [core.atoms[i].relation for i in self._canon.atom_order])

    def _rebuild_state(self, counter: OperationCounter) -> None:
        if self._fallback_reason is not None:
            self._state = None
            return
        try:
            self._state = ViewState(self._spec, self._engine.database,
                                    counter)
        except QueryError as exc:  # defensive: decision said yes
            self._state = None
            self._fallback_reason = str(exc)

    def _per_delta_reason(self, applied) -> str:
        if self._state is not None and len(
                self._state.relation_edges(applied.name)) > 1:
            return (f"relation {applied.name!r} appears in several atoms; "
                    "the delta rule needs the query to be linear in it")
        return ("delete under a non-invertible aggregate semiring "
                "(no additive inverse to retract with)")

    def _result_from_state(self) -> Relation:
        rows = self._state.rows()
        columns = self._spec.output_columns
        if self._spec.order_by:
            rows = sort_rows(rows, columns, self._spec.order_by,
                             self._spec.limit)
        return Relation(self._result.name, columns, rows)

    def _finish(self, result: Relation, record: MaintenanceRecord) -> None:
        changed = self._result is not None and result != self._result
        self._result = result
        self.last_maintenance = record
        self._engine._observe_maintenance(record)
        if changed and self._on_change is not None:
            self._on_change(self)

    def _deactivate(self) -> None:
        self._active = False

    def __repr__(self) -> str:
        mode = ("incremental" if self._state is not None
                else f"refresh ({self._fallback_reason})")
        return (f"Subscription({self._canon.form!r}, {mode}, "
                f"active={self._active})")
