"""Per-view maintenance state: annotated join-tree messages that repair.

A standing acyclic view is held as the *materialized message passing* of
:func:`repro.joins.yannakakis.yannakakis_aggregate_stream`: one annotated
table per join-tree node (tuples annotated with one semiring value per
aggregate), one ``⊕``-projected message per non-root node, and the root's
group accumulators.  The FAQ delta rule is what makes this state
repairable: the view is *linear* in each atom's annotation table (as long
as the relation appears in exactly one atom), so a tuple-level delta is
itself an annotated table — inserted tuples lifted normally, deleted
tuples lifted and **negated** through the ring protocol
(:func:`repro.query.semiring.negate_value`) — and

    ΔM_n = π_keep( ΔT_n ⊗ M_c₁ ⊗ ... ⊗ M_cₖ )

re-derives only the messages on the changed leaf's root path, joining the
delta against the *unchanged* sibling messages instead of re-running the
semijoin passes.  Two deliberate deviations from the one-shot pipeline:

* **no semijoin reduction** — reduction is an optimization whose reduced
  state a delta would invalidate; the inner hash-joins of the message
  pass drop dangling tuples by themselves, so skipping it changes cost,
  never results;
* a hidden **support coordinate** (the COUNT ring) is threaded as
  annotation 0 of every tuple: it counts the join assignments behind each
  message entry and each group, so deletes know when an entry's support
  hits zero and the entry (or group) must disappear — a SUM of 0 alone
  cannot distinguish "cancelled to zero" from "no longer derivable".

Every propagation join probes a maintained hash index keyed on the
child's separator (the running-intersection property guarantees the join
columns *are* exactly the separator), so a single-tuple delta costs work
proportional to the affected entries, not to the database.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.joins.yannakakis import AnnTable, ann_join, ann_project, join_tree_of
from repro.query.builder import Query
from repro.query.semiring import SEMIRINGS, Semiring, negate_value
from repro.relational.database import Database

#: The hidden support ring: coordinate 0 of every annotation vector.
_SUPPORT: Semiring = SEMIRINGS["count"]


class _Node:
    """One join-tree node's maintained state."""

    __slots__ = ("edge", "relation", "schema", "parent", "children", "sep",
                 "keep", "lift", "selections", "table", "table_index",
                 "message_schema", "message_rows", "message_index")

    def __init__(self, edge: str, relation: str, schema: tuple[str, ...],
                 parent: str | None, children: tuple[str, ...],
                 lift: Callable[[tuple], list],
                 selections: tuple):
        self.edge = edge
        self.relation = relation
        self.schema = schema
        self.parent = parent
        self.children = children
        #: Separator columns with the parent (child-schema order).
        self.sep: tuple[str, ...] = ()
        #: Message columns (separator ∪ group ∪ residual-selection vars).
        self.keep: tuple[str, ...] = ()
        self.lift = lift
        self.selections = selections
        #: The annotated base table: row -> annotation vector.
        self.table: dict[tuple, list] = {}
        #: Per child edge: (separator columns, sep-key -> set of rows).
        self.table_index: dict[str, tuple[tuple[str, ...],
                                          dict[tuple, set]]] = {}
        #: The stored message (non-root nodes only).
        self.message_schema: tuple[str, ...] = ()
        self.message_rows: dict[tuple, list] = {}
        #: sep-key -> set of message rows, for sibling/ancestor probes.
        self.message_index: dict[tuple, set] = {}


def _pick(row: tuple, positions: Sequence[int]) -> tuple:
    return tuple(row[p] for p in positions)


class ViewState:
    """The repairable materialization of one acyclic standing query.

    Build it from the query spec and the current database, then feed it
    effective tuple deltas through :meth:`apply`; :meth:`rows` yields the
    current (unordered) output rows.  Construction mirrors the annotated
    aggregate pass: single-atom selections filter each node's base table,
    each aggregate's designated atom lifts its input variable (all other
    atoms lift ``one``), cross-atom residual selections fire at the root.

    Raises :class:`QueryError` when the query cannot be held this way
    (cyclic hypergraph, or an aggregate over a product-less semiring).
    """

    def __init__(self, spec: Query, database: Database,
                 counter: OperationCounter | None = None):
        self._spec = spec
        core = spec.core
        tree = join_tree_of(core)  # raises QueryError when cyclic
        self._root = tree.root
        self._semirings: list[Semiring] = [_SUPPORT]
        for agg in spec.aggregates:
            sr = agg.semiring()
            if not sr.has_product:
                raise QueryError(
                    f"aggregate {agg} uses the plus-only semiring "
                    f"{sr.name!r}; view maintenance needs a product semiring"
                )
            self._semirings.append(sr)
        self._group = tuple(spec.head_vars)

        # Designated atom per aggregate (first body atom holding its var),
        # mirroring yannakakis_aggregate_stream.
        designated: dict[int, str] = {}
        for i, agg in enumerate(spec.aggregates):
            if agg.var is None:
                continue
            for j, atom in enumerate(core.atoms):
                if agg.var in atom.variable_set:
                    designated[i] = core.edge_key(j)
                    break
            else:
                raise QueryError(
                    f"aggregate {agg} reads {agg.var!r}, which no atom binds"
                )

        # Selections: single-atom ones filter every covering node's base
        # table; the cross-atom residue fires on root-path join results.
        atoms_by_edge = {core.edge_key(j): atom
                         for j, atom in enumerate(core.atoms)}
        covered: dict[str, list] = {edge: [] for edge in atoms_by_edge}
        residual = []
        for sel in spec.all_selections:
            hit = False
            for edge, atom in atoms_by_edge.items():
                if sel.variables <= atom.variable_set:
                    covered[edge].append(sel)
                    hit = True
            if not hit:
                residual.append(sel)
        self._residual = tuple(residual)

        still_needed = set(self._group)
        for sel in residual:
            still_needed |= sel.variables

        #: Edge keys per relation name (len > 1 marks a self-join, which
        #: breaks the delta rule's linearity for that relation).
        self._edges_of: dict[str, list[str]] = {}
        for j, atom in enumerate(core.atoms):
            self._edges_of.setdefault(atom.relation, []).append(
                core.edge_key(j))

        # Children in bottom-up absorption order: the deterministic
        # schema-construction order both build and repair must share.
        order_index = {edge: i for i, edge in enumerate(tree.order)}
        self._nodes: dict[str, _Node] = {}
        for j, atom in enumerate(core.atoms):
            edge = core.edge_key(j)
            kids = tuple(sorted(tree.children.get(edge, ()),
                                key=order_index.__getitem__))
            schema = tuple(atom.variables)
            self._nodes[edge] = _Node(
                edge, atom.relation, schema, tree.parent.get(edge), kids,
                self._make_lift(edge, schema, designated),
                tuple(covered[edge]),
            )
        for node in self._nodes.values():
            if node.parent is not None:
                parent_vars = set(self._nodes[node.parent].schema)
                node.sep = tuple(v for v in node.schema if v in parent_vars)

        # ---- build: annotated tables, then messages bottom-up ----------
        bound = core.bind(database)
        for edge, relation in bound.items():
            node = self._nodes[edge]
            schema = node.schema
            for t in relation:
                if node.selections:
                    binding = dict(zip(schema, t))
                    if not all(sel.evaluate(binding)
                               for sel in node.selections):
                        continue
                node.table[t] = node.lift(t)
            if counter is not None:
                counter.charge(tuples_scanned=len(relation))
            for child in node.children:
                sep = self._nodes[child].sep
                positions = [schema.index(v) for v in sep]
                index: dict[tuple, set] = {}
                for t in node.table:
                    index.setdefault(_pick(t, positions), set()).add(t)
                node.table_index[child] = (sep, index)

        acc: dict[str, AnnTable] = {
            edge: (node.schema, node.table)
            for edge, node in self._nodes.items()
        }
        for edge in tree.order:
            node = self._nodes[edge]
            if node.parent is None:
                continue
            schema = acc[edge][0]
            node.keep = tuple(v for v in schema
                              if v in node.sep or v in still_needed)
            message = ann_project(acc[edge], node.keep, self._semirings,
                                  counter)
            # _ann_project returns shared state when keep == schema; the
            # stored message must own its rows (repair mutates them).
            node.message_schema = message[0]
            node.message_rows = {row: list(ann)
                                 for row, ann in message[1].items()}
            sep_positions = [node.message_schema.index(v) for v in node.sep]
            node.message_index = {}
            for row in node.message_rows:
                node.message_index.setdefault(
                    _pick(row, sep_positions), set()).add(row)
            acc[node.parent] = ann_join(
                acc[node.parent], (node.message_schema, node.message_rows),
                self._semirings, counter)
            del acc[edge]

        root_joined = acc[self._root]
        self._groups: dict[tuple, list] = {}
        self._merge_groups(self._project_groups(root_joined, counter))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_lift(self, edge: str, schema: tuple[str, ...],
                   designated: dict[int, str]) -> Callable[[tuple], list]:
        plan: list[tuple[Semiring, int | None]] = []
        positions = {v: p for p, v in enumerate(schema)}
        for i, agg in enumerate(self._spec.aggregates):
            sr = self._semirings[i + 1]
            if designated.get(i) == edge:
                plan.append((sr, positions[agg.var]))
            else:
                plan.append((sr, None))

        def lift(row: tuple) -> list:
            ann: list = [1]  # support: one assignment per base tuple
            for sr, pos in plan:
                ann.append(sr.lift(row[pos]) if pos is not None else sr.one)
            return ann

        return lift

    def _project_groups(self, joined: AnnTable,
                        counter: OperationCounter | None) -> AnnTable:
        """Filter the root join by the residual selections, project onto
        the group columns."""
        schema, rows = joined
        if self._residual:
            filtered: dict[tuple, list] = {}
            for row, ann in rows.items():
                binding = dict(zip(schema, row))
                if all(sel.evaluate(binding) for sel in self._residual):
                    filtered[row] = ann
            if counter is not None:
                counter.charge(tuples_scanned=len(rows))
            rows = filtered
        return ann_project((schema, rows), self._group, self._semirings,
                           counter)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> Query:
        """The standing query this state materializes."""
        return self._spec

    @property
    def supports_deletes(self) -> bool:
        """True when every aggregate semiring is a ring (has ``negate``)."""
        return all(sr.has_inverse for sr in self._semirings)

    def relation_edges(self, name: str) -> tuple[str, ...]:
        """The join-tree edges bound to relation ``name`` (may be empty)."""
        return tuple(self._edges_of.get(name, ()))

    def group_count(self) -> int:
        """Number of live groups (root accumulator entries)."""
        return len(self._groups)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def apply(self, name: str, inserted: Iterable[tuple],
              deleted: Iterable[tuple],
              counter: OperationCounter | None = None) -> bool | None:
        """Propagate an effective delta on relation ``name``.

        Returns True when the root groups changed, False when the state
        absorbed the delta without any output-visible change, and None
        when this state *cannot* repair for the delta — the relation
        appears in several atoms (the delta rule needs linearity) or the
        batch deletes under a non-invertible semiring — in which case the
        state is untouched and the caller must rebuild from scratch.
        """
        edges = self._edges_of.get(name)
        if not edges:
            return False  # the view does not read this relation
        if len(edges) > 1:
            return None  # self-join: Q is not linear in this relation
        deleted = list(deleted)
        if deleted and not self.supports_deletes:
            return None

        node = self._nodes[edges[0]]
        delta_rows: dict[tuple, list] = {}
        for row in inserted:
            if node.selections:
                binding = dict(zip(node.schema, row))
                if not all(sel.evaluate(binding)
                           for sel in node.selections):
                    continue
            if row in node.table:
                continue  # effective deltas should never resend these
            ann = node.lift(row)
            node.table[row] = list(ann)
            self._index_table_row(node, row, add=True)
            delta_rows[row] = ann
        for row in deleted:
            if row not in node.table:
                continue  # filtered out at load time, or never present
            del node.table[row]
            self._index_table_row(node, row, add=False)
            ann = node.lift(row)
            delta_rows[row] = [negate_value(sr, a)
                               for sr, a in zip(self._semirings, ann)]
        if counter is not None:
            counter.charge(tuples_scanned=len(delta_rows))
        if not delta_rows:
            return False

        # Walk the root path, joining the delta against unchanged sibling
        # messages (and the ancestor base tables) via the separator
        # indexes, merging each re-derived message as we go.
        acc: AnnTable = (node.schema, delta_rows)
        incoming: str | None = None
        while True:
            for child_edge in node.children:
                if child_edge == incoming:
                    continue
                child = self._nodes[child_edge]
                acc = self._probe_join(
                    acc, child.message_schema, child.message_rows,
                    child.message_index, child.sep, counter)
                if not acc[1]:
                    return False  # delta died against a sibling subtree
            if node.parent is None:
                break
            delta_message = ann_project(acc, node.keep, self._semirings,
                                        counter)
            self._merge_message(node, delta_message)
            if not delta_message[1]:
                return False
            parent = self._nodes[node.parent]
            sep, table_index = parent.table_index[node.edge]
            acc = self._probe_join(delta_message, parent.schema,
                                   parent.table, table_index, sep, counter)
            if not acc[1]:
                return False
            incoming, node = node.edge, parent

        return self._merge_groups(self._project_groups(acc, counter))

    def _index_table_row(self, node: _Node, row: tuple, add: bool) -> None:
        for child_edge, (sep, index) in node.table_index.items():
            positions = [node.schema.index(v) for v in sep]
            key = _pick(row, positions)
            if add:
                index.setdefault(key, set()).add(row)
            else:
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del index[key]

    def _probe_join(self, delta: AnnTable, other_schema: tuple[str, ...],
                    other_rows: dict[tuple, list],
                    index: dict[tuple, set], sep: tuple[str, ...],
                    counter: OperationCounter | None) -> AnnTable:
        """Join a (small) delta table against an indexed stored table.

        The join columns are exactly ``sep`` by the running-intersection
        property, so each delta row costs one probe plus the matched
        entries — never a scan of the stored side.
        """
        d_schema, d_rows = delta
        sep_positions = [d_schema.index(v) for v in sep]
        extra = [v for v in other_schema if v not in d_schema]
        extra_positions = [other_schema.index(v) for v in extra]
        out_schema = d_schema + tuple(extra)
        out: dict[tuple, list] = {}
        semirings = self._semirings
        for row, ann in d_rows.items():
            if counter is not None:
                counter.charge(tuples_scanned=1, hash_probes=1)
            for other in index.get(_pick(row, sep_positions), ()):
                other_ann = other_rows[other]
                joined = row + _pick(other, extra_positions)
                out[joined] = [sr.times(a, b) for sr, a, b
                               in zip(semirings, ann, other_ann)]
                if counter is not None:
                    counter.charge(tuples_emitted=1)
        return out_schema, out

    def _merge_message(self, node: _Node, delta: AnnTable) -> None:
        """``⊕``-merge a delta message into a node's stored message,
        pruning entries whose support reaches zero."""
        _schema, rows = delta
        sep_positions = [node.message_schema.index(v) for v in node.sep]
        for row, ann in rows.items():
            existing = node.message_rows.get(row)
            if existing is None:
                if ann[0] == 0:
                    continue  # a cancelled entry never materializes
                node.message_rows[row] = list(ann)
                node.message_index.setdefault(
                    _pick(row, sep_positions), set()).add(row)
                continue
            merged = [sr.plus(a, b) for sr, a, b
                      in zip(self._semirings, existing, ann)]
            if merged[0] == 0:
                del node.message_rows[row]
                key = _pick(row, sep_positions)
                bucket = node.message_index.get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del node.message_index[key]
            else:
                node.message_rows[row] = merged

    def _merge_groups(self, delta: AnnTable) -> bool:
        _schema, rows = delta
        changed = False
        for key, ann in rows.items():
            existing = self._groups.get(key)
            if existing is None:
                if ann[0] == 0:
                    continue
                self._groups[key] = list(ann)
                changed = True
                continue
            merged = [sr.plus(a, b) for sr, a, b
                      in zip(self._semirings, existing, ann)]
            if merged[0] == 0:
                del self._groups[key]
            else:
                self._groups[key] = merged
            changed = True
        return changed

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def rows(self) -> list[tuple]:
        """The current output rows (group keys + finalized aggregates)."""
        aggregate_srs = self._semirings[1:]
        out = [
            key + tuple(sr.finish(a)
                        for sr, a in zip(aggregate_srs, ann[1:]))
            for key, ann in self._groups.items()
        ]
        if not self._groups and not self._group and self._spec.aggregates:
            # SQL-style group-free aggregate of an empty join.
            out.append(tuple(sr.finish(sr.zero) for sr in aggregate_srs))
        return out
