"""Incremental view maintenance: standing queries over the engine.

The subsystem keeps subscribed query results current under tuple-level
catalog deltas by propagating semiring-annotated changes through the
stored Yannakakis join-tree messages (:mod:`repro.ivm.view`), falling
back to tracked full refresh for the shapes the FAQ delta rule cannot
repair (:mod:`repro.ivm.subscription`).  Entry point:
:meth:`repro.engine.session.Engine.subscribe`.
"""

from repro.ivm.subscription import (MaintenanceRecord, Subscription,
                                    incremental_decision)
from repro.ivm.view import ViewState

__all__ = [
    "MaintenanceRecord",
    "Subscription",
    "ViewState",
    "incremental_decision",
]
