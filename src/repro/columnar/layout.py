"""Dictionary-encoded, lexicographically sorted columnar relation layouts.

A :class:`ColumnarStore` owns one *global* sorted dictionary mapping every
value that appears in any registered relation to a dense ``int64`` code.
Because the dictionary is sorted, code order equals value order, so (a)
binary search over code columns is binary search over values, and (b)
enumerating codes in ascending order enumerates values in exactly the
order the pure-Python oracle's sorted tries produce — the property that
makes cross-backend output order bit-identical.

A :class:`ColumnarLayout` is one relation materialized under one column
order (the per-atom variable order a WCOJ plan needs), encoded and sorted
lexicographically: the trie node for a bound prefix is simply the
half-open row range whose columns match the prefix, found by galloping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

#: SUM folds run in int64; values beyond this magnitude (or non-integers)
#: force the oracle path so exactness can never silently degrade.
_SUM_SAFE_MAGNITUDE = 2**31


class ColumnarStore:
    """Global sorted dictionary shared by every columnar layout.

    Registration is transactional: the merged dictionary is computed (and
    may raise ``TypeError`` for un-orderable mixed domains) *before* any
    state changes, so a failed registration leaves the store untouched.
    Every successful registration that actually adds values bumps
    ``epoch``, invalidating all layouts encoded under older dictionaries.
    """

    def __init__(self) -> None:
        self.values: list = []
        self.codes: dict = {}
        self.epoch: int = 0
        self._int_domain: tuple[int, np.ndarray | None] | None = None

    def __len__(self) -> int:
        return len(self.values)

    def register(self, values: Iterable) -> None:
        """Add ``values`` to the dictionary (one epoch bump at most)."""
        codes = self.codes
        fresh = {v for v in values if v not in codes}
        if not fresh:
            return
        try:
            merged = sorted(set(self.values) | fresh)
        except TypeError as exc:
            raise TypeError(
                "columnar dictionary encoding requires a totally ordered "
                f"value domain; cannot sort mixed values: {exc}"
            ) from exc
        self.values = merged
        self.codes = {v: i for i, v in enumerate(merged)}
        self.epoch += 1

    def encode(self, value) -> int:
        return self.codes[value]

    def decode(self, code: int):
        return self.values[code]

    def decode_column(self, codes: np.ndarray) -> list:
        """Decode a code column back to the exact registered objects."""
        values = self.values
        return [values[c] for c in codes.tolist()]

    def int_domain(self) -> np.ndarray | None:
        """The dictionary as an exact ``int64`` array, or ``None``.

        ``None`` means the domain contains non-integers or integers too
        large for exact int64 SUM folds; callers must degrade to the
        python oracle for SUM.  Cached per epoch.
        """
        cached = self._int_domain
        if cached is not None and cached[0] == self.epoch:
            return cached[1]
        domain: np.ndarray | None
        if all(
            isinstance(v, int) and abs(v) <= _SUM_SAFE_MAGNITUDE
            for v in self.values
        ):
            domain = np.asarray(self.values, dtype=np.int64)
        else:
            domain = None
        self._int_domain = (self.epoch, domain)
        return domain


@dataclass(frozen=True)
class ColumnarLayout:
    """One relation, one column order, sorted and dictionary-encoded."""

    relation: str
    attributes: tuple[str, ...]
    columns: tuple = field(repr=False)  # tuple of int64 arrays, lex-sorted
    epoch: int = 0
    n: int = 0


def build_layout(relation, attributes: Sequence[str],
                 store: ColumnarStore) -> ColumnarLayout:
    """Encode + lexicographically sort ``relation`` under ``attributes``.

    Every value must already be registered in ``store`` (the registry
    registers whole relations before building layouts, so one epoch covers
    a whole batch of layouts).
    """
    attributes = tuple(attributes)
    positions = [relation.attributes.index(a) for a in attributes]
    rows = relation.tuples
    n = len(rows)
    codes = store.codes
    columns = [
        np.fromiter((codes[t[p]] for t in rows), dtype=np.int64, count=n)  # lint: disable=counter-honesty -- layout builds are registry-amortized (tracked by the layout_builds metric), symmetric with the python backend's uncharged trie builds
        for p in positions
    ]
    if n and len(columns) > 1:
        order = np.lexsort(tuple(reversed(columns)))
        columns = [column[order] for column in columns]
    elif n and columns:
        columns = [np.sort(columns[0], kind="stable")]
    return ColumnarLayout(relation.name, attributes, tuple(columns),
                          store.epoch, n)
