"""Engine executor running WCOJ plans on the columnar backend.

Shares the plan/payload/index-request protocol with the streaming WCOJ
executors (it subclasses their base), but resolves sorted columnar
layouts from the registry instead of hash tries and runs the batched
:func:`repro.columnar.join.columnar_rows`.  Any :class:`ColumnarFallback`
— planned-around features that slipped through, or data-dependent cases
like un-orderable mixed domains and non-integer SUMs — transparently
reruns the query through the pure-Python oracle executor, so a columnar
dispatch can never produce an error (or a different answer) the python
backend would not.
"""

from __future__ import annotations

from typing import Iterator

from repro.columnar import ColumnarFallback
from repro.columnar.join import columnar_rows
from repro.engine.executors import GenericJoinExecutor, _WcojExecutor, _trie_requests
from repro.engine.fingerprint import payload_order, payload_ranked_mode


class ColumnarExecutor(_WcojExecutor):
    """Columnar evaluation of generic/leapfrog plans (never dispatched
    directly — the session swaps it in when a plan resolves to the
    columnar backend, keeping ``strategy`` semantics untouched).

    ``oracle`` is the python executor of the plan's strategy, so a
    fallback reruns the exact run the python backend would have done —
    bit-identical rows in bit-identical order, by construction.
    """

    name = "columnar"

    def __init__(self, oracle: _WcojExecutor | None = None) -> None:
        self._oracle = oracle if oracle is not None else GenericJoinExecutor()

    def stream(self, spec, database, payload, registry=None,
               counter=None) -> Iterator[tuple]:
        try:
            rows = self._columnar_rows(spec, database, payload, registry,
                                       counter)
        except ColumnarFallback:
            return self._oracle.stream(spec, database, payload,
                                       registry=registry, counter=counter)
        return iter(rows)

    def _columnar_rows(self, spec, database, payload, registry,
                       counter) -> list[tuple]:
        if registry is None:
            raise ColumnarFallback("columnar layouts need an index registry")
        if payload_ranked_mode(payload) == "anyk":
            raise ColumnarFallback("any-k ranked mode is tuple-at-a-time")
        core = spec.core
        order = payload_order(payload)
        requests = _trie_requests(core, database, order)
        try:
            layouts = registry.columnar_layouts(requests)
        except TypeError as exc:  # un-orderable mixed value domain
            raise ColumnarFallback(str(exc)) from exc
        store = registry.columnar_store
        if spec.aggregates and self.handles_aggregation(spec, payload):
            return columnar_rows(core, order, layouts, store,
                                 selections=spec.all_selections,
                                 head=spec.head_vars,
                                 aggregates=spec.aggregates, counter=counter)
        # Fold-mode aggregates drain full bindings (the engine folds
        # above the stream), exactly like the oracle's head=None path.
        head = None if spec.aggregates else spec.head_vars
        return columnar_rows(core, order, layouts, store,
                             selections=spec.all_selections, head=head,
                             counter=counter)
