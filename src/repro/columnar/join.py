"""Batched columnar WCOJ execution over sorted, dictionary-encoded columns.

The pure-Python cores expand one search-tree node at a time; this module
expands one *level* at a time over a frontier of partial bindings held in
NumPy arrays.  Per level it plays exactly the Generic-Join / Leapfrog
move: pick the atom with the smallest total candidate span as the probe,
enumerate its distinct (parent, value) runs, and intersect against every
other relevant atom with a vectorized per-row binary search — Veldhuizen's
``seek``/``next`` iterator idiom, batched.  Because the frontier stays
lexicographically sorted by code (and codes are value-sorted by
construction of the dictionary), the breadth-first emission order equals
the oracle's depth-first order, which keeps streams bit-identical.

Three emission modes mirror ``generic_join_stream``:

* plain / full-prefix projection — descend every level, decode rows;
* early-distinct projection — descend the head prefix, then decide each
  prefix's survival with a *component-factorized* boolean existential
  tail (one batched descent per residual component, exactly the
  factorization the oracle uses);
* in-recursion aggregation — descend the group prefix, then fold each
  residual component with segment reductions (``np.add.reduceat`` over
  runs of equal origins) and combine components per surviving prefix with
  exact Python-int arithmetic.

Anything outside this subset raises :class:`ColumnarFallback`, which the
executor converts into a transparent rerun on the oracle.
"""

from __future__ import annotations

import numpy as np

from repro.columnar import ColumnarFallback

#: Component folds beyond this many rows could overflow exact int64 SUMs
#: (|value| <= 2**31 and 2**28 rows keep |sum| < 2**59); degrade instead.
_SUM_SAFE_ROWS = 1 << 28


# ----------------------------------------------------------------------
# Vectorized primitives
# ----------------------------------------------------------------------

def _bounds(column: np.ndarray, lo: np.ndarray, hi: np.ndarray,
            values: np.ndarray, left: bool) -> np.ndarray:
    """Per-row binary search with independent ``[lo, hi)`` windows.

    Returns, for each row ``i``, the first position in
    ``column[lo[i]:hi[i]]`` where ``values[i]`` could be inserted keeping
    the column sorted (``left=True`` → leftmost, ``left=False`` →
    rightmost).  This is ``np.searchsorted`` generalized to a different
    window per row — the batched form of Leapfrog's ``seek``.
    """
    lo = lo.astype(np.int64, copy=True)
    hi = hi.astype(np.int64, copy=True)
    while True:
        active = lo < hi
        if not active.any():
            return lo
        mid = (lo + hi) >> 1
        probe = column[np.where(active, mid, 0)]
        go_right = (probe < values) if left else (probe <= values)
        go_right &= active
        lo[go_right] = mid[go_right] + 1
        stay = active & ~go_right
        hi[stay] = mid[stay]


def _expand(column: np.ndarray, lo: np.ndarray, hi: np.ndarray):
    """Enumerate the distinct-value runs of every row's ``[lo, hi)`` span.

    Returns ``(parents, values, run_lo, run_hi)``: for each maximal run of
    one value inside one parent's span, the parent's frontier index, the
    code, and the run's row range in ``column`` (the child trie node).
    Runs appear in (parent, value) order, preserving the frontier's
    lexicographic invariant.
    """
    counts = hi - lo
    total = int(counts.sum())
    empty = np.zeros(0, dtype=np.int64)
    if total == 0:
        return empty, empty, empty, empty
    parents = np.repeat(np.arange(len(lo), dtype=np.int64), counts)
    starts = np.zeros(len(lo), dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    rows = np.arange(total, dtype=np.int64) - starts[parents] + lo[parents]
    values = column[rows]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    np.not_equal(values[1:], values[:-1], out=boundary[1:])
    boundary[1:] |= parents[1:] != parents[:-1]
    run_lo_idx = np.flatnonzero(boundary)
    run_end_idx = np.append(run_lo_idx[1:], total)
    return (parents[run_lo_idx], values[run_lo_idx], rows[run_lo_idx],
            rows[run_lo_idx] + (run_end_idx - run_lo_idx))


# ----------------------------------------------------------------------
# Batched descent
# ----------------------------------------------------------------------

class _Descent:
    """Shared machinery of one batched join: atoms, masks, level steps.

    A *state* is a dict describing one frontier of partial bindings:
    ``size`` (frontier length), ``origins`` (int64 map back to the row of
    the frontier the descent segment started from), ``ranges`` (per
    edge-key pair of int64 arrays — each frontier row's trie node as a
    half-open row range in that atom's layout) and ``values`` (tracked
    variable → int64 code array aligned with the frontier).
    """

    def __init__(self, core, order, layouts, store, selections, counter):
        self.order = tuple(order)
        self.position = {v: i for i, v in enumerate(self.order)}
        self.layouts = layouts
        self.store = store
        self.counter = counter
        self.atom_vars: dict[str, tuple[str, ...]] = {}
        for i, atom in enumerate(core.atoms):
            edge_key = core.edge_key(i)
            present = set(atom.variables)
            self.atom_vars[edge_key] = tuple(
                v for v in self.order if v in present)
        # Selections become boolean masks over dictionary codes, applied
        # the moment their variable binds — identical placement (and
        # per-value TypeError → False semantics) to the oracle's checks.
        domain = store.values
        masks: list[np.ndarray | None] = [None] * len(self.order)
        for sel in selections:
            if len(sel.variables) > 1:
                raise ColumnarFallback(
                    "multi-variable comparison selections are not vectorized")
            variable = sel.lhs
            depth = self.position.get(variable)
            if depth is None:
                raise ColumnarFallback(
                    f"selection variable {variable!r} missing from the order")
            mask = np.fromiter(
                (bool(sel.evaluate({variable: value})) for value in domain),
                dtype=bool, count=len(domain))
            masks[depth] = mask if masks[depth] is None else masks[depth] & mask
        self.masks = masks

    def initial_state(self) -> dict:
        ranges = {
            edge_key: (np.zeros(1, dtype=np.int64),
                       np.full(1, self.layouts[edge_key].n, dtype=np.int64))
            for edge_key in self.atom_vars
        }
        return {"size": 1, "origins": np.zeros(1, dtype=np.int64),
                "ranges": ranges, "values": {}}

    def component_state(self, state: dict, component) -> dict:
        """Restrict ``state`` to the atoms touching ``component``'s vars."""
        ranges = {
            edge_key: pair for edge_key, pair in state["ranges"].items()
            if set(self.atom_vars[edge_key]) & set(component)
        }
        return {"size": state["size"],
                "origins": np.arange(state["size"], dtype=np.int64),
                "ranges": ranges, "values": {}}

    def step(self, state: dict, depth: int, track_value: bool) -> dict:
        """Bind ``order[depth]`` across the whole frontier at once.

        The probe atom is chosen *per frontier row* (the atom whose
        candidate span is smallest for that row — Generic-Join's
        O(min size) intersection discipline; a single global probe would
        do quadratic work on skewed instances).  The frontier is
        partitioned by best atom, each partition expands against the
        others, and the children merge back into (parent, value) order so
        the lexicographic invariant survives.
        """
        variable = self.order[depth]
        ranges = state["ranges"]
        relevant = [edge_key for edge_key in ranges
                    if variable in self.atom_vars[edge_key]]
        if not relevant:
            raise ColumnarFallback(
                f"variable {variable!r} is covered by no atom in this scope")
        size = state["size"]
        counter = self.counter
        if counter is not None:
            counter.charge(search_nodes=size)
        spans = np.stack([ranges[edge_key][1] - ranges[edge_key][0]
                          for edge_key in relevant])
        if len(relevant) == 1:
            best = np.zeros(size, dtype=np.int64)
        else:
            best = np.argmin(spans, axis=0)
        if counter is not None and size:
            counter.charge(intersection_steps=int(
                spans[best, np.arange(size)].sum()))
        mask = self.masks[depth]
        parts = []
        for k, probe in enumerate(relevant):
            rows_idx = np.flatnonzero(best == k)
            if not len(rows_idx):
                continue
            level = self.atom_vars[probe].index(variable)
            column = self.layouts[probe].columns[level]
            lo, hi = ranges[probe]
            local_parents, values, run_lo, run_hi = _expand(
                column, lo[rows_idx], hi[rows_idx])
            parents = rows_idx[local_parents]
            keep = np.ones(len(values), dtype=bool)
            probed: dict[str, tuple[np.ndarray, np.ndarray]] = {}
            for edge_key in relevant:
                if edge_key == probe:
                    continue
                other_level = self.atom_vars[edge_key].index(variable)
                other_column = self.layouts[edge_key].columns[other_level]
                other_lo, other_hi = ranges[edge_key]
                left = _bounds(other_column, other_lo[parents],
                               other_hi[parents], values, True)
                right = _bounds(other_column, other_lo[parents],
                                other_hi[parents], values, False)
                if counter is not None:
                    counter.charge(seeks=len(values))
                keep &= left < right
                probed[edge_key] = (left, right)
            if mask is not None:
                keep &= mask[values]
            kept = np.flatnonzero(keep)
            parents_kept = parents[kept]
            child_ranges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
            for edge_key in ranges:
                if edge_key == probe:
                    child_ranges[edge_key] = (run_lo[kept], run_hi[kept])
                elif edge_key in probed:
                    left, right = probed[edge_key]
                    child_ranges[edge_key] = (left[kept], right[kept])
                else:
                    other_lo, other_hi = ranges[edge_key]
                    child_ranges[edge_key] = (other_lo[parents_kept],
                                              other_hi[parents_kept])
            parts.append((parents_kept, values[kept], child_ranges))
        if not parts:
            empty = np.zeros(0, dtype=np.int64)
            next_values = {v: empty for v in state["values"]}
            if track_value:
                next_values[variable] = empty
            return {"size": 0, "origins": empty,
                    "ranges": {edge_key: (empty, empty) for edge_key in ranges},
                    "values": next_values}
        if len(parts) == 1:
            parents_all, values_all, ranges_all = parts[0]
        else:
            parents_all = np.concatenate([p[0] for p in parts])
            values_all = np.concatenate([p[1] for p in parts])
            merge = np.lexsort((values_all, parents_all))
            parents_all = parents_all[merge]
            values_all = values_all[merge]
            ranges_all = {}
            for edge_key in ranges:
                lo_all = np.concatenate([p[2][edge_key][0] for p in parts])
                hi_all = np.concatenate([p[2][edge_key][1] for p in parts])
                ranges_all[edge_key] = (lo_all[merge], hi_all[merge])
        next_values = {v: column_codes[parents_all]
                       for v, column_codes in state["values"].items()}
        if track_value:
            next_values[variable] = values_all
        return {"size": int(len(values_all)),
                "origins": state["origins"][parents_all],
                "ranges": ranges_all, "values": next_values}


# ----------------------------------------------------------------------
# Emission modes
# ----------------------------------------------------------------------

def columnar_rows(core, order, layouts, store, selections=(), head=None,
                  aggregates=None, counter=None) -> list[tuple]:
    """Run one query columnar and return its rows in oracle stream order.

    Mirrors ``generic_join_stream``'s mode selection: ``aggregates`` not
    ``None`` selects in-recursion aggregation grouped by ``head``;
    otherwise ``head`` ``None`` emits full bindings over
    ``core.variables`` and a head tuple selects projection.  Raises
    :class:`ColumnarFallback` when the plan or the data leaves the
    vectorized subset.
    """
    selections = tuple(selections)
    descent = _Descent(core, order, layouts, store, selections, counter)
    order = descent.order
    position = descent.position
    pinned = {sel.lhs for sel in selections if sel.is_constant_equality}
    if aggregates is not None:
        return _aggregate_rows(descent, core, store, selections,
                               tuple(head or ()), tuple(aggregates),
                               pinned, counter)
    if head is None:
        return _full_rows(descent, core.variables, store, counter)
    head = tuple(head)
    prefix_depth = (max(position[h] for h in head) + 1) if head else 0
    head_set = set(head)
    early_distinct = all(v in head_set or v in pinned
                         for v in order[:prefix_depth])
    if not early_distinct and head_set != set(core.variables):
        # The oracle falls back to a seen-set here; engine plans always
        # produce head-prefix orders, so keep columnar out of this case.
        raise ColumnarFallback(
            "variable order interleaves non-head, non-pinned variables "
            "before the head prefix")
    if prefix_depth >= len(order) or not early_distinct:
        # Full descent: either every variable is head/pinned up to the last
        # level, or the head is a permutation of all variables — both emit
        # one head tuple per full binding, exactly like the oracle.
        return _full_rows(descent, head, store, counter)
    state = descent.initial_state()
    for depth in range(prefix_depth):
        state = descent.step(state, depth, track_value=order[depth] in head_set)
        if state["size"] == 0:
            return []
    alive = _existential_alive(descent, core, state, prefix_depth, selections)
    kept = np.flatnonzero(alive)
    if not head:  # boolean query: one empty row iff the join is non-empty
        rows = [()] if len(kept) else []
        if counter is not None and rows:
            counter.charge(tuples_emitted=1)
        return rows
    columns = [store.decode_column(state["values"][h][kept]) for h in head]
    rows = list(zip(*columns))
    if counter is not None:
        counter.charge(tuples_emitted=len(rows))
    return rows


def _full_rows(descent: _Descent, emit_vars, store, counter) -> list[tuple]:
    """Descend every level and decode the frontier as full bindings."""
    state = descent.initial_state()
    for depth in range(len(descent.order)):
        state = descent.step(state, depth, track_value=True)
        if state["size"] == 0:
            return []
    columns = [store.decode_column(state["values"][v]) for v in emit_vars]
    if not columns:
        rows = [()] if state["size"] else []
    else:
        rows = list(zip(*columns))
    if counter is not None:
        counter.charge(tuples_emitted=len(rows))
    return rows


def _existential_alive(descent: _Descent, core, state: dict, depth: int,
                       selections) -> np.ndarray:
    """Which frontier rows have at least one completion of the tail?

    One batched boolean descent per residual component — the same
    factorization ``generic_join_stream`` applies, so a star projection
    costs the sum of its arms, not their product.
    """
    size = state["size"]
    alive = np.ones(size, dtype=bool)
    components = core.hypergraph().residual_components(
        descent.order[:depth],
        couplings=[sel.variables for sel in selections])
    position = descent.position
    for component in components:
        sub = descent.component_state(state, component)
        for d in sorted(position[v] for v in component):
            sub = descent.step(sub, d, track_value=False)
            if sub["size"] == 0:
                return np.zeros(size, dtype=bool)
        witnessed = np.zeros(size, dtype=bool)
        # Witness scatter: one pass over the component's surviving rows.
        if descent.counter is not None:
            descent.counter.charge(intersection_steps=len(sub["origins"]))
        witnessed[sub["origins"]] = True
        alive &= witnessed
    return alive


def _aggregate_rows(descent: _Descent, core, store, selections, group,
                    aggregates, pinned, counter) -> list[tuple]:
    """In-recursion semiring aggregation, component-factorized.

    Matches the oracle's grouped elimination: descend the group prefix,
    fold every residual component independently, then combine folds per
    surviving prefix with the semiring ⊗ — evaluated here in exact Python
    ints so cross-component COUNT/SUM products can never overflow int64.
    """
    order = descent.order
    position = descent.position
    group_set = set(group)
    agg_start = max((position[g] for g in group), default=-1) + 1
    if any(v not in group_set and v not in pinned
           for v in order[:agg_start]):
        raise ColumnarFallback(
            "variable order interleaves non-group variables before the "
            "group prefix")
    semirings = []
    for agg in aggregates:
        if agg.kind not in ("count", "sum", "min", "max"):
            raise ColumnarFallback(
                f"no vectorized fold for aggregate kind {agg.kind!r}")
        semirings.append(agg.semiring())
    needs_sum = any(agg.kind == "sum" for agg in aggregates)
    int_domain = store.int_domain() if needs_sum else None
    if needs_sum and int_domain is None:
        raise ColumnarFallback(
            "SUM over a non-integer (or overflow-prone) value domain")

    state = descent.initial_state()
    for depth in range(agg_start):
        state = descent.step(state, depth, track_value=True)
        if state["size"] == 0:
            break
    size = state["size"]
    if size == 0:
        if group:
            return []
        row = tuple(sr.finish(sr.zero) for sr in semirings)
        if counter is not None:
            counter.charge(tuples_emitted=1)
        return [row]

    components = core.hypergraph().residual_components(
        order[:agg_start], couplings=[sel.variables for sel in selections])
    component_of = {v: ci for ci, comp in enumerate(components) for v in comp}
    alive = np.ones(size, dtype=bool)
    counts_by_component: list[np.ndarray] = []
    folds: dict[int, tuple[str, np.ndarray]] = {}  # aggregate idx -> fold
    for ci, component in enumerate(components):
        track = {agg.var for agg in aggregates if agg.var in component}
        sub = descent.component_state(state, component)
        for d in sorted(position[v] for v in component):
            sub = descent.step(sub, d, track_value=order[d] in track)
        origins = sub["origins"]
        # The COUNT fold: one pass over the component's frontier rows —
        # the vectorized face of the python eliminator's per-tuple ⊕.
        if counter is not None:
            counter.charge(intersection_steps=len(origins))
        counts = np.bincount(origins, minlength=size)
        counts_by_component.append(counts)
        alive &= counts > 0
        if len(origins) == 0:
            continue
        # Frontier rows arrive grouped by origin (the descent preserves
        # lexicographic order), so per-origin folds are segment reductions.
        change = np.empty(len(origins), dtype=bool)
        change[0] = True
        np.not_equal(origins[1:], origins[:-1], out=change[1:])
        segment_starts = np.flatnonzero(change)
        segment_origins = origins[segment_starts]
        for ai, agg in enumerate(aggregates):
            if agg.var not in component or agg.kind == "count":
                continue
            codes = sub["values"][agg.var]
            # Each segment reduction below re-walks the component's rows.
            if counter is not None:
                counter.charge(intersection_steps=len(codes))
            fold = np.zeros(size, dtype=np.int64)
            if agg.kind == "sum":
                if len(codes) > _SUM_SAFE_ROWS:
                    raise ColumnarFallback(
                        "SUM fold too large for exact int64 arithmetic")
                fold[segment_origins] = np.add.reduceat(
                    int_domain[codes], segment_starts)
                folds[ai] = ("sum", fold)
            elif agg.kind == "min":
                fold[segment_origins] = np.minimum.reduceat(
                    codes, segment_starts)
                folds[ai] = ("code", fold)
            else:  # max — code order equals value order
                fold[segment_origins] = np.maximum.reduceat(
                    codes, segment_starts)
                folds[ai] = ("code", fold)

    kept = np.flatnonzero(alive)
    rows: list[tuple] = []
    if len(kept):
        decoded_prefix = {
            v: store.decode_column(state["values"][v][kept])
            for v in state["values"]
        }
        kept_counts = [counts[kept].tolist() for counts in counts_by_component]
        plans = []  # per aggregate: (tag, component idx or None, data)
        for ai, agg in enumerate(aggregates):
            if agg.kind == "count":
                plans.append(("count", None, None))
            elif agg.var in component_of:
                ci = component_of[agg.var]
                kind, fold = folds.get(ai, ("code", None))
                if fold is None:
                    # Var in a component but never tracked: impossible —
                    # tracked above whenever agg.var ∈ component.
                    raise ColumnarFallback("missing component fold")
                data = fold[kept].tolist()
                plans.append((agg.kind, ci, data))
            else:  # aggregate over a group/pinned prefix variable
                plans.append((agg.kind + "@prefix", None,
                              decoded_prefix[agg.var]))
        group_columns = [decoded_prefix[g] for g in group]
        dictionary = store.values
        for r in range(len(kept)):
            total = 1
            for counts in kept_counts:
                total *= int(counts[r])
            outputs = []
            for tag, ci, data in plans:
                if tag == "count":
                    value = total
                elif tag == "sum":
                    value = int(data[r]) * (total // int(kept_counts[ci][r]))
                elif tag in ("min", "max"):
                    value = dictionary[data[r]]
                elif tag == "sum@prefix":
                    value = data[r] * total
                else:  # min@prefix / max@prefix: the value itself
                    value = data[r]
                outputs.append(value)
            rows.append(tuple(column[r] for column in group_columns)
                        + tuple(sr.finish(v)
                                for sr, v in zip(semirings, outputs)))
    if not rows and not group:
        rows.append(tuple(sr.finish(sr.zero) for sr in semirings))
    if counter is not None:
        counter.charge(tuples_emitted=len(rows))
    return rows
