"""Columnar NumPy execution backend.

Relations are materialized once per (relation-version, column-order) as
lexicographically sorted, dictionary-encoded ``int64`` NumPy columns; the
trie a streaming WCOJ core walks node-by-node becomes offset ranges over
those sorted columns, and Leapfrog's seek/next iterator discipline becomes
vectorized binary search (galloping) over per-atom ranges.  Semiring folds
for COUNT/SUM/MIN/MAX and the boolean existential tail run over runs of
equal separator keys instead of per-tuple Python ⊕ calls.

The pure-Python cores in :mod:`repro.joins` remain the reference oracle:
the columnar backend must produce bit-identical rows, aggregate values,
and output order, and it transparently degrades to the oracle whenever a
query uses a feature outside its vectorized subset (see
:func:`unsupported_reason`).

This module itself never imports NumPy so that ``repro.engine`` (which
imports it for planning) stays importable on NumPy-free installs; only the
sibling modules :mod:`repro.columnar.layout`, ``.join`` and ``.executor``
require NumPy, and the planner refuses the backend when it is missing.
"""

from __future__ import annotations

from typing import Iterable

try:  # pragma: no cover - exercised via tools/check_no_numpy_in_core.py
    import importlib.util as _ilu

    HAS_NUMPY = _ilu.find_spec("numpy") is not None
except Exception:  # pragma: no cover - importlib failure == no numpy
    HAS_NUMPY = False

#: Aggregate kinds with a vectorized semiring fold.  Anything else —
#: user-registered semirings, AVG-style finalized folds — degrades to the
#: python oracle at plan time.
SUPPORTED_AGGREGATE_KINDS = ("count", "sum", "min", "max")


class ColumnarFallback(Exception):
    """Raised when a query (or its data) leaves the vectorized subset.

    The executor catches this and transparently re-runs the query through
    the pure-Python oracle; it must never escape to the caller.
    """


def unsupported_reason(
    selections: Iterable = (),
    aggregates: Iterable = (),
    ranked_mode: str | None = None,
) -> str | None:
    """Plan-time feature gate: why a query cannot run columnar (or ``None``).

    The v1 vectorized subset excludes: multi-variable comparison
    selections (cross-atom predicates such as ``A < B``, and the equality
    couplings repeated-variable atoms lower to), aggregate kinds without a
    vectorized fold, and any-k ranked enumeration (tuple-at-a-time by
    construction).  Data-dependent cases — mixed un-orderable domains,
    SUM over non-integer values — are only detectable at run time and
    degrade inside the executor instead.
    """
    if not HAS_NUMPY:
        return "NumPy is not installed"
    for sel in selections:
        if len(sel.variables) > 1:
            variables = ", ".join(sorted(sel.variables))
            return f"cross-atom comparison selection over {variables}"
    for agg in aggregates:
        if agg.kind not in SUPPORTED_AGGREGATE_KINDS:
            return f"no vectorized fold for aggregate kind {agg.kind!r}"
    if ranked_mode == "anyk":
        return "any-k ranked enumeration is tuple-at-a-time"
    return None
