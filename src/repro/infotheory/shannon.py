"""A prover for Shannon-type inequalities.

A *Shannon-type inequality* is a linear inequality sum_S c_S h(S) >= 0 that
holds for every polymatroid h in Gamma_n (and therefore for every entropic
function).  Deciding validity reduces to a linear program: minimize the
left-hand side over the polymatroid cone intersected with a box; the optimum
is 0 exactly when the inequality is valid, and any strictly negative optimum
comes with an explicit polymatroid counterexample.

This machinery is what Section 2's "Second Algorithm" and Section 5.2's
Shannon-flow inequalities are built on, and it lets the test-suite verify
Shearer's inequality, the specific inequality (20), the Example 1 inequality,
and the *failure* of the Zhang–Yeung inequality over Gamma_4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.covers.lp import LinearProgram
from repro.errors import LPError
from repro.infotheory.set_functions import SetFunction, all_subsets


def _subset_key(subset: frozenset[str]) -> str:
    return "h[" + ",".join(sorted(subset)) + "]"


@dataclass(frozen=True)
class LinearEntropyExpression:
    """A linear expression sum_S c_S h(S) over subsets of a ground set.

    The expression is stored as a mapping from subsets to coefficients; the
    empty set is allowed but its coefficient is irrelevant (h(0) = 0).
    """

    ground_set: frozenset[str]
    coefficients: tuple[tuple[frozenset[str], float], ...]

    @classmethod
    def from_dict(cls, ground_set: Iterable[str],
                  coefficients: Mapping[Iterable[str] | frozenset[str], float]
                  ) -> "LinearEntropyExpression":
        """Build an expression from a subset -> coefficient mapping."""
        ground = frozenset(ground_set)
        normalized: dict[frozenset[str], float] = {}
        for key, value in coefficients.items():
            subset = frozenset(key)
            if not subset <= ground:
                raise LPError(
                    f"subset {sorted(subset)} not contained in ground set {sorted(ground)}"
                )
            normalized[subset] = normalized.get(subset, 0.0) + float(value)
        items = tuple(sorted(normalized.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))))
        return cls(ground_set=ground, coefficients=items)

    def as_dict(self) -> dict[frozenset[str], float]:
        """The subset -> coefficient mapping (a copy)."""
        return dict(self.coefficients)

    def evaluate(self, h: SetFunction) -> float:
        """Evaluate the expression on a concrete set function."""
        return sum(c * h(s) for s, c in self.coefficients if s)

    def scaled(self, factor: float) -> "LinearEntropyExpression":
        """The expression multiplied by ``factor``."""
        return LinearEntropyExpression.from_dict(
            self.ground_set, {s: factor * c for s, c in self.coefficients}
        )

    def plus(self, other: "LinearEntropyExpression") -> "LinearEntropyExpression":
        """Sum of two expressions over the same ground set."""
        if other.ground_set != self.ground_set:
            raise LPError("cannot add expressions over different ground sets")
        combined: dict[frozenset[str], float] = dict(self.coefficients)
        for s, c in other.coefficients:
            combined[s] = combined.get(s, 0.0) + c
        return LinearEntropyExpression.from_dict(self.ground_set, combined)

    def __str__(self) -> str:
        parts = []
        for s, c in self.coefficients:
            if not s or abs(c) < 1e-12:
                continue
            parts.append(f"{c:+.3g}*h({','.join(sorted(s))})")
        return " ".join(parts) if parts else "0"


def elemental_inequalities(ground_set: Iterable[str]
                           ) -> Iterator[LinearEntropyExpression]:
    """Yield the elemental Shannon inequalities (each as an expression >= 0).

    * Monotonicity:   h(V) - h(V - {i}) >= 0 for every element i.
    * Submodularity:  h(S+i) + h(S+j) - h(S+i+j) - h(S) >= 0 for every pair
      i != j and every S disjoint from {i, j}.

    Every Shannon-type inequality is a non-negative combination of these.
    """
    ground = frozenset(ground_set)
    elements = sorted(ground)
    full = frozenset(elements)
    for i in elements:
        yield LinearEntropyExpression.from_dict(
            ground, {full: 1.0, full - {i}: -1.0}
        )
    for a_idx in range(len(elements)):
        for b_idx in range(a_idx + 1, len(elements)):
            i, j = elements[a_idx], elements[b_idx]
            rest = ground - {i, j}
            for s in all_subsets(rest):
                yield LinearEntropyExpression.from_dict(
                    ground,
                    {
                        s | {i}: 1.0,
                        s | {j}: 1.0,
                        s | {i, j}: -1.0,
                        s: -1.0,
                    },
                )


def _polymatroid_lp(ground_set: frozenset[str], box: float) -> LinearProgram:
    """An LP whose feasible region is Gamma_n intersected with [0, box]^(2^n)."""
    lp = LinearProgram("polymatroid-cone")
    for subset in all_subsets(ground_set):
        if not subset:
            continue
        lp.add_variable(_subset_key(subset), lower=0.0, upper=box)
    for idx, ineq in enumerate(elemental_inequalities(ground_set)):
        coeffs = {
            _subset_key(s): c for s, c in ineq.coefficients if s
        }
        lp.add_constraint(f"elemental[{idx}]", coeffs, ">=", 0.0)
    return lp


def _minimize_over_polymatroids(expression: LinearEntropyExpression,
                                box: float = 1.0
                                ) -> tuple[float, SetFunction]:
    lp = _polymatroid_lp(expression.ground_set, box)
    objective = {
        _subset_key(s): c for s, c in expression.coefficients if s
    }
    # Variables not mentioned get 0 coefficient implicitly.
    for subset in all_subsets(expression.ground_set):
        if subset and _subset_key(subset) not in objective:
            objective[_subset_key(subset)] = 0.0
    lp.minimize(objective)
    solution = lp.solve()
    values = {
        subset: solution.values[_subset_key(subset)]
        for subset in all_subsets(expression.ground_set)
        if subset
    }
    values[frozenset()] = 0.0
    witness = SetFunction(expression.ground_set, values)
    return solution.objective, witness


def is_shannon_valid(expression: LinearEntropyExpression,
                     tolerance: float = 1e-7) -> bool:
    """Decide whether ``expression >= 0`` holds for every polymatroid.

    Because the polymatroid cone is scale-invariant, minimizing the
    expression over the cone intersected with a unit box is 0 iff the
    inequality is valid and strictly negative iff it fails.
    """
    minimum, _ = _minimize_over_polymatroids(expression)
    return minimum >= -tolerance


def find_polymatroid_counterexample(expression: LinearEntropyExpression,
                                    tolerance: float = 1e-7
                                    ) -> SetFunction | None:
    """Return a polymatroid h with ``expression(h) < 0``, or None if the
    inequality is Shannon-valid."""
    minimum, witness = _minimize_over_polymatroids(expression)
    if minimum >= -tolerance:
        return None
    return witness


def conditional_term(ground_set: Iterable[str], y: Iterable[str], x: Iterable[str],
                     coefficient: float = 1.0) -> LinearEntropyExpression:
    """The expression ``coefficient * h(Y | X) = coefficient * (h(Y u X) - h(X))``."""
    ground = frozenset(ground_set)
    x_set = frozenset(x)
    y_set = frozenset(y) | x_set
    return LinearEntropyExpression.from_dict(
        ground, {y_set: coefficient, x_set: -coefficient}
    )
