"""The Zhang–Yeung non-Shannon inequality and the gap Gamma*_4 != Gamma_4.

Zhang and Yeung (1998) proved that, for any four jointly distributed random
variables A, B, C, D, the inequality

    2 I(C;D) <= I(A;B) + I(A;CD) + 3 I(C;D|A) + I(C;D|B)

holds, yet it is *not* implied by the Shannon-type (polymatroid) inequalities:
there is a polymatroid in Gamma_4 violating it.  This is the fact the paper
uses (Section 4.2) to prove that the polymatroid bound is not tight under
general degree constraints.

This module builds the inequality as a :class:`LinearEntropyExpression`,
exposes the classical violating polymatroid, and verifies the inequality on
entropic functions coming from concrete distributions.
"""

from __future__ import annotations

from typing import Sequence

from repro.infotheory.entropy import entropy_function_of_distribution
from repro.infotheory.set_functions import SetFunction
from repro.infotheory.shannon import (
    LinearEntropyExpression,
    find_polymatroid_counterexample,
    is_shannon_valid,
)

_DEFAULT_VARS = ("A", "B", "C", "D")


def _mutual_information_coefficients(ground: frozenset[str], x: frozenset[str],
                                     y: frozenset[str], z: frozenset[str]
                                     ) -> dict[frozenset[str], float]:
    """Coefficients of I(X;Y|Z) = h(XZ) + h(YZ) - h(XYZ) - h(Z)."""
    return {
        x | z: 1.0,
        y | z: 1.0,
        x | y | z: -1.0,
        z: -1.0,
    }


def _add(target: dict[frozenset[str], float], source: dict[frozenset[str], float],
         factor: float) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0.0) + factor * value


def zhang_yeung_expression(variables: Sequence[str] = _DEFAULT_VARS
                           ) -> LinearEntropyExpression:
    """The Zhang–Yeung inequality as ``expression >= 0``.

    The expression is RHS - LHS of

        2 I(C;D) <= I(A;B) + I(A;CD) + 3 I(C;D|A) + I(C;D|B)

    so the inequality holds for a set function h iff the returned expression
    evaluates to >= 0 on h.
    """
    if len(variables) != 4:
        raise ValueError("the Zhang-Yeung inequality is a statement about 4 variables")
    a, b, c, d = (frozenset([v]) for v in variables)
    ground = frozenset(variables)
    empty: frozenset[str] = frozenset()

    coefficients: dict[frozenset[str], float] = {}
    # RHS terms.
    _add(coefficients, _mutual_information_coefficients(ground, a, b, empty), 1.0)
    _add(coefficients, _mutual_information_coefficients(ground, a, c | d, empty), 1.0)
    _add(coefficients, _mutual_information_coefficients(ground, c, d, a), 3.0)
    _add(coefficients, _mutual_information_coefficients(ground, c, d, b), 1.0)
    # Minus LHS.
    _add(coefficients, _mutual_information_coefficients(ground, c, d, empty), -2.0)
    return LinearEntropyExpression.from_dict(variables, coefficients)


def zhang_yeung_is_non_shannon(variables: Sequence[str] = _DEFAULT_VARS) -> bool:
    """True if the Zhang–Yeung inequality is *not* Shannon-provable, i.e.
    there is a polymatroid violating it.  (This is the Zhang–Yeung theorem;
    the function re-derives it with the LP prover.)"""
    return not is_shannon_valid(zhang_yeung_expression(variables))


def zhang_yeung_violating_polymatroid(variables: Sequence[str] = _DEFAULT_VARS
                                      ) -> SetFunction | None:
    """A polymatroid in Gamma_4 violating the Zhang–Yeung inequality.

    Returns None only if (contrary to the theorem) no violator exists, which
    would indicate a bug in the prover.
    """
    return find_polymatroid_counterexample(zhang_yeung_expression(variables))


def verify_zhang_yeung_on_entropic(variables: Sequence[str],
                                   distribution: dict[tuple, float],
                                   tolerance: float = 1e-9) -> bool:
    """Check the Zhang–Yeung inequality on the entropy function of a concrete
    4-variable distribution (it must hold: the inequality is valid on
    Gamma*_4)."""
    h = entropy_function_of_distribution(variables, distribution)
    return zhang_yeung_expression(tuple(variables)).evaluate(h) >= -tolerance
