"""Set functions on a finite ground set and the polymatroid axioms.

A set function h : 2^V -> R_+ with h(emptyset) = 0 is

* *modular*      if h(S) = sum_{v in S} h({v}),
* *monotone*     if h(X) <= h(Y) whenever X subseteq Y,
* *subadditive*  if h(X u Y) <= h(X) + h(Y),
* *submodular*   if h(X u Y) + h(X n Y) <= h(X) + h(Y),
* a *polymatroid* if it is non-negative, monotone, submodular and h(0) = 0.

These are exactly the cones M_n ⊆ Γ*_n ⊆ closure(Γ*_n) ⊆ Γ_n ⊆ SA_n of
Definition 2 in the paper (Γ*_n, the entropic functions, is handled in
:mod:`repro.infotheory.entropy`).
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, Iterator, Mapping

from repro.errors import NotEntropicError

Subset = frozenset


def all_subsets(ground_set: Iterable[str]) -> Iterator[frozenset[str]]:
    """Yield every subset of ``ground_set`` (including the empty set)."""
    items = tuple(ground_set)
    return (
        frozenset(c)
        for c in chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))
    )


class SetFunction:
    """A real-valued set function over subsets of a ground set.

    Values are stored for every subset; the constructor fills in missing
    subsets only if ``require_complete`` is False, in which case the value 0
    is used (useful when building functions incrementally).

    Parameters
    ----------
    ground_set:
        The variables V.
    values:
        Mapping from subsets (any iterable of variable names) to values.
        The empty set defaults to 0 and must map to 0 if present.
    """

    __slots__ = ("_ground_set", "_values")

    def __init__(self, ground_set: Iterable[str],
                 values: Mapping[Iterable[str] | frozenset[str], float],
                 require_complete: bool = True):
        self._ground_set = frozenset(ground_set)
        normalized: dict[frozenset[str], float] = {}
        for key, value in values.items():
            subset = frozenset(key)
            if not subset <= self._ground_set:
                raise NotEntropicError(
                    f"subset {sorted(subset)} is not contained in the ground set "
                    f"{sorted(self._ground_set)}"
                )
            normalized[subset] = float(value)
        normalized.setdefault(frozenset(), 0.0)
        if abs(normalized[frozenset()]) > 1e-12:
            raise NotEntropicError("a set function must have h(emptyset) = 0")
        if require_complete:
            missing = [s for s in all_subsets(self._ground_set) if s not in normalized]
            if missing:
                raise NotEntropicError(
                    f"missing values for {len(missing)} subsets, e.g. "
                    f"{sorted(missing[0])}"
                )
        else:
            for subset in all_subsets(self._ground_set):
                normalized.setdefault(subset, 0.0)
        self._values = normalized

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def ground_set(self) -> frozenset[str]:
        """The ground set V."""
        return self._ground_set

    def __call__(self, subset: Iterable[str]) -> float:
        """Value h(S) for a subset S."""
        return self._values[frozenset(subset)]

    def value(self, subset: Iterable[str]) -> float:
        """Alias of :meth:`__call__`."""
        return self(subset)

    def conditional(self, y: Iterable[str], x: Iterable[str]) -> float:
        """Conditional value h(Y | X) = h(Y u X) - h(X) (chain rule, eq. 29)."""
        x_set = frozenset(x)
        y_set = frozenset(y) | x_set
        return self._values[y_set] - self._values[x_set]

    def items(self) -> Iterator[tuple[frozenset[str], float]]:
        """Iterate (subset, value) pairs."""
        return iter(self._values.items())

    def as_dict(self) -> dict[frozenset[str], float]:
        """A copy of the underlying subset -> value mapping."""
        return dict(self._values)

    def total(self) -> float:
        """h(V), the value on the full ground set."""
        return self._values[self._ground_set]

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------
    def is_nonnegative(self, tolerance: float = 1e-9) -> bool:
        """True if h(S) >= 0 for every S."""
        return all(v >= -tolerance for v in self._values.values())

    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        """True if h(X) <= h(Y) whenever X subseteq Y (checked on covers:
        X and X u {v})."""
        for subset, value in self._values.items():
            for v in self._ground_set - subset:
                if value > self._values[subset | {v}] + tolerance:
                    return False
        return True

    def is_submodular(self, tolerance: float = 1e-9) -> bool:
        """True if h satisfies all elemental submodularity inequalities
        h(S+i) + h(S+j) >= h(S+i+j) + h(S), which imply the general form."""
        elements = sorted(self._ground_set)
        for i_idx in range(len(elements)):
            for j_idx in range(i_idx + 1, len(elements)):
                i, j = elements[i_idx], elements[j_idx]
                rest = self._ground_set - {i, j}
                for s in all_subsets(rest):
                    lhs = self._values[s | {i}] + self._values[s | {j}]
                    rhs = self._values[s | {i, j}] + self._values[s]
                    if lhs + tolerance < rhs:
                        return False
        return True

    def is_subadditive(self, tolerance: float = 1e-9) -> bool:
        """True if h(X u Y) <= h(X) + h(Y) for all X, Y."""
        subsets = list(all_subsets(self._ground_set))
        for x in subsets:
            for y in subsets:
                if self._values[x | y] > self._values[x] + self._values[y] + tolerance:
                    return False
        return True

    def is_modular(self, tolerance: float = 1e-9) -> bool:
        """True if h(S) = sum of singleton values for every S."""
        for subset, value in self._values.items():
            expected = sum(self._values[frozenset([v])] for v in subset)
            if abs(value - expected) > tolerance:
                return False
        return True

    def is_polymatroid(self, tolerance: float = 1e-9) -> bool:
        """True if h is a polymatroid (non-negative, monotone, submodular)."""
        return (
            self.is_nonnegative(tolerance)
            and self.is_monotone(tolerance)
            and self.is_submodular(tolerance)
        )

    # ------------------------------------------------------------------
    # Arithmetic (the cones are closed under these)
    # ------------------------------------------------------------------
    def scale(self, factor: float) -> "SetFunction":
        """The function factor * h."""
        return SetFunction(
            self._ground_set,
            {s: factor * v for s, v in self._values.items()},
        )

    def add(self, other: "SetFunction") -> "SetFunction":
        """Pointwise sum h + g (ground sets must match)."""
        if other.ground_set != self._ground_set:
            raise NotEntropicError("cannot add set functions over different ground sets")
        return SetFunction(
            self._ground_set,
            {s: v + other._values[s] for s, v in self._values.items()},
        )

    def __add__(self, other: "SetFunction") -> "SetFunction":
        return self.add(other)

    def __mul__(self, factor: float) -> "SetFunction":
        return self.scale(factor)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetFunction):
            return NotImplemented
        if other.ground_set != self._ground_set:
            return False
        return all(
            abs(v - other._values[s]) <= 1e-12 for s, v in self._values.items()
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash((self._ground_set, tuple(sorted(
            (tuple(sorted(s)), round(v, 12)) for s, v in self._values.items()
        ))))

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{{{','.join(sorted(s))}}}: {v:.4g}"
            for s, v in sorted(self._values.items(), key=lambda kv: (len(kv[0]), sorted(kv[0])))
            if s
        )
        return f"SetFunction({entries})"


def modular_from_singletons(ground_set: Iterable[str],
                            singleton_values: Mapping[str, float]) -> SetFunction:
    """Build the modular function f(S) = sum_{v in S} singleton_values[v].

    This is the construction used in the proof of Proposition 4.4 (eq. 46).
    """
    ground = frozenset(ground_set)
    missing = ground - set(singleton_values)
    if missing:
        raise NotEntropicError(f"missing singleton values for {sorted(missing)}")
    negative = [v for v in ground if singleton_values[v] < 0]
    if negative:
        raise NotEntropicError(f"negative singleton values for {sorted(negative)}")
    values = {
        s: sum(singleton_values[v] for v in s)
        for s in all_subsets(ground)
    }
    return SetFunction(ground, values)


def uniform_step_function(ground_set: Iterable[str], threshold: int,
                          height: float = 1.0) -> SetFunction:
    """The "step" polymatroid h(S) = height * min(|S|, threshold).

    These step functions are the classic extreme rays of the polymatroid
    cone and are useful for exercising the Shannon-inequality prover.
    """
    ground = frozenset(ground_set)
    if threshold < 0:
        raise NotEntropicError("threshold must be non-negative")
    values = {
        s: height * min(len(s), threshold)
        for s in all_subsets(ground)
    }
    return SetFunction(ground, values)


def from_callable(ground_set: Iterable[str], func) -> SetFunction:
    """Materialize a set function from a Python callable on frozensets."""
    ground = frozenset(ground_set)
    values = {s: float(func(s)) for s in all_subsets(ground)}
    return SetFunction(ground, values)
