"""Information-theory substrate: set functions, entropy, Shannon inequalities.

This package implements Section 3.2 of the paper: entropy functions of joint
distributions, the polymatroid axioms (non-negativity, monotonicity,
submodularity), modular and subadditive set functions, a prover for
Shannon-type inequalities (linear inequalities valid over the polymatroid
cone Gamma_n), Shearer's lemma, and the Zhang–Yeung non-Shannon inequality
witnessing Gamma*_4 != Gamma_4.
"""

from repro.infotheory.set_functions import (
    SetFunction,
    all_subsets,
    modular_from_singletons,
    uniform_step_function,
)
from repro.infotheory.entropy import (
    entropy_of_distribution,
    entropy_function_of_distribution,
    entropy_function_of_relation,
)
from repro.infotheory.shannon import (
    LinearEntropyExpression,
    is_shannon_valid,
    find_polymatroid_counterexample,
    elemental_inequalities,
)
from repro.infotheory.shearer import (
    shearer_holds_for,
    shearer_is_valid,
    verify_friedgut_inequality,
)
from repro.infotheory.nonshannon import (
    zhang_yeung_expression,
    zhang_yeung_is_non_shannon,
    verify_zhang_yeung_on_entropic,
)

__all__ = [
    "SetFunction",
    "all_subsets",
    "modular_from_singletons",
    "uniform_step_function",
    "entropy_of_distribution",
    "entropy_function_of_distribution",
    "entropy_function_of_relation",
    "LinearEntropyExpression",
    "is_shannon_valid",
    "find_polymatroid_counterexample",
    "elemental_inequalities",
    "shearer_holds_for",
    "shearer_is_valid",
    "verify_friedgut_inequality",
    "zhang_yeung_expression",
    "zhang_yeung_is_non_shannon",
    "verify_zhang_yeung_on_entropic",
]
