"""Entropy of discrete distributions and entropy functions of relations.

The key construction behind every bound in the paper (Section 2 and
Section 4.2) is: pick a tuple *uniformly at random from the query output*
Q(D); the entropy function H of that distribution satisfies

* H[[n]] = log2 |Q(D)|                      (uniformity), and
* H[Y | X] <= log2 N_{Y|X}                  for every degree constraint
                                            guarded by an input relation.

This module computes exact empirical entropy functions (all marginals) of
finite distributions and of the uniform distribution over a relation, so
those steps of the argument can be *checked numerically* in tests and
experiments rather than taken on faith.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.errors import NotEntropicError
from repro.infotheory.set_functions import SetFunction, all_subsets
from repro.relational.relation import Relation


def entropy_of_distribution(probabilities: Iterable[float]) -> float:
    """Shannon entropy (base 2) of a probability vector.

    Zero-probability entries are allowed and contribute nothing; the vector
    must sum to 1 within a small tolerance.
    """
    probs = [p for p in probabilities]
    total = sum(probs)
    if any(p < -1e-12 for p in probs):
        raise NotEntropicError("negative probability")
    if abs(total - 1.0) > 1e-6:
        raise NotEntropicError(f"probabilities sum to {total}, expected 1")
    return -sum(p * math.log2(p) for p in probs if p > 0)


def _marginal(distribution: Mapping[tuple, float], variables: Sequence[str],
              subset: frozenset[str]) -> dict[tuple, float]:
    positions = [i for i, v in enumerate(variables) if v in subset]
    marginal: dict[tuple, float] = {}
    for outcome, p in distribution.items():
        key = tuple(outcome[i] for i in positions)
        marginal[key] = marginal.get(key, 0.0) + p
    return marginal


def entropy_function_of_distribution(variables: Sequence[str],
                                     distribution: Mapping[tuple, float]
                                     ) -> SetFunction:
    """The entropy function H : 2^V -> R_+ of a joint distribution.

    Parameters
    ----------
    variables:
        Variable names; the i-th component of every outcome tuple is the
        value of ``variables[i]``.
    distribution:
        Mapping from outcome tuples to probabilities (must sum to 1).

    Returns
    -------
    SetFunction
        H[S] = entropy of the marginal distribution on S, for every S.
        The result is entropic by construction, hence a polymatroid.
    """
    variables = tuple(variables)
    for outcome in distribution:
        if len(outcome) != len(variables):
            raise NotEntropicError(
                f"outcome {outcome!r} has arity {len(outcome)}, expected {len(variables)}"
            )
    values = {}
    for subset in all_subsets(variables):
        if not subset:
            values[subset] = 0.0
            continue
        marginal = _marginal(distribution, variables, subset)
        values[subset] = entropy_of_distribution(marginal.values())
    return SetFunction(variables, values)


def entropy_function_of_relation(relation: Relation,
                                 variables: Sequence[str] | None = None
                                 ) -> SetFunction:
    """Entropy function of the *uniform* distribution over a relation's tuples.

    This is exactly the distribution used in the entropy argument: each tuple
    of ``relation`` gets probability 1/|relation|.  The value on the full
    variable set therefore equals log2 |relation|.

    Parameters
    ----------
    relation:
        A non-empty relation.
    variables:
        Names to use for the relation's columns (defaults to the relation's
        own attribute names).
    """
    if len(relation) == 0:
        raise NotEntropicError("cannot build the entropy function of an empty relation")
    names = tuple(variables) if variables is not None else relation.attributes
    if len(names) != relation.arity:
        raise NotEntropicError(
            f"{len(names)} variable names given for a relation of arity {relation.arity}"
        )
    p = 1.0 / len(relation)
    distribution = {t: p for t in relation}
    return entropy_function_of_distribution(names, distribution)


def support_size(relation: Relation, attributes: Sequence[str]) -> int:
    """|supp_F(D)|: the number of distinct projections onto ``attributes``."""
    return len(relation.columns(attributes))


def verify_support_bound(relation: Relation) -> bool:
    """Numerically verify inequality (31): H[X] <= log2 |supp_X| for every X,
    for the uniform distribution over ``relation``.

    Returns True when the inequality holds for all subsets (it always should;
    this function exists so tests exercise the textbook fact directly).
    """
    h = entropy_function_of_relation(relation)
    for subset in all_subsets(relation.attributes):
        if not subset:
            continue
        support = support_size(relation, tuple(subset))
        if h(subset) > math.log2(support) + 1e-9:
            return False
    return True


def mutual_information(h: SetFunction, x: Iterable[str], y: Iterable[str],
                       given: Iterable[str] = ()) -> float:
    """(Conditional) mutual information I(X ; Y | Z) computed from an entropy
    function: I(X;Y|Z) = h(XZ) + h(YZ) - h(XYZ) - h(Z)."""
    x_set, y_set, z_set = frozenset(x), frozenset(y), frozenset(given)
    return (
        h(x_set | z_set)
        + h(y_set | z_set)
        - h(x_set | y_set | z_set)
        - h(z_set)
    )
