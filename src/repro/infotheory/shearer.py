"""Shearer's lemma and Friedgut's inequality, in checkable form.

Shearer's inequality (Corollary 5.5 in the paper): for a hypergraph
H = ([n], E) and non-negative weights delta = (delta_F),

    h([n]) <= sum_F delta_F * h(F)    for every polymatroid h
        <=>  delta is a fractional edge cover of H.

Friedgut's inequality (Theorem 4.1) is the weighted-sum generalisation whose
all-weights-equal-one specialisation is the AGM bound.  We provide a direct
numerical verifier for it on concrete relations and weight functions, used by
the property-based tests.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from repro.infotheory.set_functions import SetFunction
from repro.infotheory.shannon import LinearEntropyExpression, is_shannon_valid
from repro.query.atoms import ConjunctiveQuery
from repro.query.hypergraph import Hypergraph
from repro.relational.database import Database


def shearer_expression(hypergraph: Hypergraph,
                       weights: Mapping[str, float]) -> LinearEntropyExpression:
    """The expression ``sum_F delta_F h(F) - h(V)`` (>= 0 iff Shearer holds)."""
    coefficients: dict[frozenset[str], float] = {}
    for key, weight in weights.items():
        edge = hypergraph.edge(key)
        coefficients[edge] = coefficients.get(edge, 0.0) + weight
    full = frozenset(hypergraph.vertices)
    coefficients[full] = coefficients.get(full, 0.0) - 1.0
    return LinearEntropyExpression.from_dict(hypergraph.vertices, coefficients)


def shearer_holds_for(h: SetFunction, hypergraph: Hypergraph,
                      weights: Mapping[str, float], tolerance: float = 1e-9) -> bool:
    """Check Shearer's inequality for one concrete set function."""
    return shearer_expression(hypergraph, weights).evaluate(h) >= -tolerance


def shearer_is_valid(hypergraph: Hypergraph, weights: Mapping[str, float]) -> bool:
    """Decide whether ``h(V) <= sum_F delta_F h(F)`` holds for *all*
    polymatroids, via the Shannon-inequality prover.

    By Corollary 5.5 this is equivalent to ``weights`` being a fractional
    edge cover; the equivalence itself is exercised in tests.
    """
    for key, weight in weights.items():
        if weight < 0:
            return False
        hypergraph.edge(key)
    return is_shannon_valid(shearer_expression(hypergraph, weights))


def verify_friedgut_inequality(query: ConjunctiveQuery, database: Database,
                               cover: Mapping[str, float],
                               weight_functions: Mapping[
                                   str, Callable[[tuple], float]] | None = None,
                               tolerance: float = 1e-7) -> bool:
    """Numerically verify Friedgut's inequality (Theorem 4.1) on an instance.

    Parameters
    ----------
    query:
        A full conjunctive query.
    database:
        The database instance providing the relations R_F.
    cover:
        A fractional edge cover delta of the query hypergraph, keyed by the
        query's edge keys.
    weight_functions:
        Optional per-edge non-negative weight functions w_F mapping a tuple
        (in the *query-variable order of the atom*) to a weight.  Defaults to
        the constant-1 functions, which turns the statement into the AGM
        bound.

    Returns
    -------
    bool
        True when

        sum_{a in Q} prod_F [w_F(a_F)]^{delta_F}
            <= prod_F ( sum_{t in R_F} w_F(t) )^{delta_F}

        holds within a small relative tolerance.
    """
    from repro.joins.generic_join import generic_join  # lint: disable=import-layering -- witness construction drives the join layer above; lazy so the theory layer imports stand alone

    hypergraph = query.hypergraph()
    if not hypergraph.is_cover(cover):
        raise ValueError("the supplied weights are not a fractional edge cover")

    bound_relations = query.bind(database)
    output = generic_join(query, database)

    def weight(edge_key: str, values: tuple) -> float:
        if weight_functions is None or edge_key not in weight_functions:
            return 1.0
        w = weight_functions[edge_key](values)
        if w < 0:
            raise ValueError(f"negative weight from weight function for {edge_key!r}")
        return w

    # Left-hand side: sum over output tuples of the product of weights.
    variables = query.variables
    lhs = 0.0
    for tup in output:
        product = 1.0
        for i, atom in enumerate(query.atoms):
            key = query.edge_key(i)
            delta = cover.get(key, 0.0)
            positions = [variables.index(v) for v in atom.variables]
            values = tuple(tup[p] for p in positions)
            w = weight(key, values)
            if w == 0.0:
                if delta > 0:
                    product = 0.0
                    break
                continue
            product *= w ** delta
        lhs += product

    # Right-hand side: product over edges of (sum of weights)^delta.
    rhs = 1.0
    for i, atom in enumerate(query.atoms):
        key = query.edge_key(i)
        delta = cover.get(key, 0.0)
        relation = bound_relations[key]
        total = sum(weight(key, t) for t in relation)
        if total == 0.0:
            if delta > 0:
                rhs = 0.0
                break
            continue
        rhs *= total ** delta

    return lhs <= rhs * (1 + tolerance) + tolerance


def agm_inequality_holds(query: ConjunctiveQuery, database: Database,
                         cover: Mapping[str, float], output_size: int,
                         tolerance: float = 1e-9) -> bool:
    """Check |Q(D)| <= prod_F |R_F|^{delta_F} for a given output size.

    The comparison is done in log-space for numerical robustness.
    """
    bound_relations = query.bind(database)
    log_bound = 0.0
    for key, delta in cover.items():
        size = len(bound_relations[key])
        if size == 0:
            return output_size == 0
        log_bound += delta * math.log2(size)
    if output_size == 0:
        return True
    return math.log2(output_size) <= log_bound + tolerance
