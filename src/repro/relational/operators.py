"""Classical relational algebra operators over :class:`Relation`.

These are the "one pair at a time" building blocks that traditional query
plans (and the binary-plan baselines in :mod:`repro.joins.binary_plans`) are
made of: selection, projection, renaming, natural join (hash join),
semijoin, union, difference and cartesian product.

Every operator optionally reports work done to an
:class:`repro.joins.instrumentation.OperationCounter`, so that the benchmark
harness can compare operation counts of traditional plans against WCOJ
algorithms on equal footing.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence, TYPE_CHECKING

from repro.errors import SchemaError
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.joins.instrumentation import OperationCounter

Value = Any


def _charge(counter: "OperationCounter | None", **kwargs: int) -> None:
    if counter is not None:
        counter.charge(**kwargs)


def select(relation: Relation, bindings: Mapping[str, Value],
           counter: "OperationCounter | None" = None) -> Relation:
    """Selection sigma_{bindings}(relation); scans every tuple once."""
    _charge(counter, tuples_scanned=len(relation))
    return relation.select(bindings)


def project(relation: Relation, attributes: Sequence[str],
            counter: "OperationCounter | None" = None) -> Relation:
    """Projection pi_{attributes}(relation) with duplicate elimination."""
    _charge(counter, tuples_scanned=len(relation))
    result = relation.project(attributes)
    _charge(counter, tuples_emitted=len(result))
    return result


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Rename attributes (old name -> new name); free of data movement."""
    return relation.rename(mapping)


def natural_join(left: Relation, right: Relation, name: str | None = None,
                 counter: "OperationCounter | None" = None) -> Relation:
    """Natural join via the classic build/probe hash join.

    The smaller relation is used as the build side.  Joins on the common
    attributes of the two schemas; a join with no common attributes
    degenerates to the cartesian product.
    """
    common = left.schema.intersection(right.schema)
    if not common:
        return cartesian_product(left, right, name=name, counter=counter)

    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    build_pos = build.schema.positions(common)
    probe_pos = probe.schema.positions(common)

    table: dict[tuple, list[tuple]] = {}
    for t in build:
        table.setdefault(tuple(t[p] for p in build_pos), []).append(t)
    _charge(counter, tuples_scanned=len(build), hash_inserts=len(build))

    out_schema = left.schema.union(right.schema)
    # Positions used to assemble the output tuple from (left tuple, right tuple).
    assembly: list[tuple[int, int]] = []
    for attr in out_schema:
        if attr in left.schema:
            assembly.append((0, left.schema.position(attr)))
        else:
            assembly.append((1, right.schema.position(attr)))

    result: set[tuple] = set()
    for t in probe:
        _charge(counter, tuples_scanned=1, hash_probes=1)
        key = tuple(t[p] for p in probe_pos)
        matches = table.get(key)
        if not matches:
            continue
        for m in matches:
            if build is left:
                pair = (m, t)
            else:
                pair = (t, m)
            out = tuple(pair[side][pos] for side, pos in assembly)
            result.add(out)
            _charge(counter, tuples_emitted=1)
    join_name = name or f"({left.name} JOIN {right.name})"
    return Relation(join_name, out_schema, result)


def semijoin(left: Relation, right: Relation, name: str | None = None,
             counter: "OperationCounter | None" = None) -> Relation:
    """Left semijoin: tuples of ``left`` that join with at least one tuple of
    ``right`` on their common attributes."""
    common = left.schema.intersection(right.schema)
    if not common:
        # With no common attributes, the semijoin keeps everything unless the
        # right side is empty.
        return left if len(right) else left.with_tuples(())
    right_keys = right.columns(common)
    _charge(counter, tuples_scanned=len(right), hash_inserts=len(right))
    left_pos = left.schema.positions(common)
    kept = set()
    for t in left:
        _charge(counter, tuples_scanned=1, hash_probes=1)
        if tuple(t[p] for p in left_pos) in right_keys:
            kept.add(t)
            _charge(counter, tuples_emitted=1)
    return Relation(name or left.name, left.schema, kept)


def union(left: Relation, right: Relation, name: str | None = None,
          counter: "OperationCounter | None" = None) -> Relation:
    """Set union of two relations with identical schemas."""
    _charge(counter, tuples_scanned=len(left) + len(right))
    return left.union(right, name=name)


def difference(left: Relation, right: Relation, name: str | None = None,
               counter: "OperationCounter | None" = None) -> Relation:
    """Set difference ``left - right`` of relations with identical schemas."""
    _charge(counter, tuples_scanned=len(left) + len(right))
    return left.difference(right, name=name)


def cartesian_product(left: Relation, right: Relation, name: str | None = None,
                      counter: "OperationCounter | None" = None) -> Relation:
    """Cartesian product; schemas must be disjoint."""
    common = left.schema.intersection(right.schema)
    if common:
        raise SchemaError(
            f"cartesian product requires disjoint schemas, both contain {common}"
        )
    out_schema = left.schema.union(right.schema)
    result = set()
    for lt in left:
        for rt in right:
            result.add(lt + rt)
            _charge(counter, tuples_emitted=1)
    _charge(counter, tuples_scanned=len(left) + len(right))
    return Relation(name or f"({left.name} X {right.name})", out_schema, result)


def intersect_sorted(lists: Sequence[Sequence[Value]],
                     counter: "OperationCounter | None" = None) -> list[Value]:
    """Intersect several sorted, duplicate-free value lists.

    The iteration starts from the smallest list and probes the others using
    hash sets, honouring the paper's O(min size) intersection assumption.
    Returns a sorted list.
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    smallest = ordered[0]
    others = [set(lst) for lst in ordered[1:]]
    _charge(counter, intersection_steps=len(smallest))
    result = [v for v in smallest if all(v in o for o in others)]
    return result


def intersect_value_sets(sets: Sequence[Iterable[Value]],
                         counter: "OperationCounter | None" = None) -> set[Value]:
    """Intersect several value collections, iterating the smallest one."""
    materialized = [s if isinstance(s, (set, frozenset)) else set(s) for s in sets]
    if not materialized:
        return set()
    materialized.sort(key=len)
    smallest = materialized[0]
    others = materialized[1:]
    _charge(counter, intersection_steps=len(smallest))
    return {v for v in smallest if all(v in o for o in others)}
