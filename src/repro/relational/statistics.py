"""Statistics extraction: cardinalities and degrees.

Degree constraints (Definition 1 in the paper) are statements about

    deg_F(A_Y | A_X) = max_t |pi_{A_Y} sigma_{A_X = t}(R_F)|,

the maximum number of distinct Y-bindings per X-binding in a relation R_F.
This module computes these statistics directly from data so that constraint
sets can be *derived from* instances as well as validated against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation


def cardinality(relation: Relation) -> int:
    """Number of tuples in the relation (|R|)."""
    return len(relation)


def degree(relation: Relation, x_attrs: Sequence[str], y_attrs: Sequence[str]) -> int:
    """Compute ``deg_R(A_Y | A_X)``: the max number of distinct Y-projections
    per X-binding.

    ``x_attrs`` may be empty, in which case the degree is simply the number
    of distinct Y-projections (a cardinality-style statistic).  ``y_attrs``
    must be non-empty and every named attribute must exist in the relation.
    An empty relation has degree 0.
    """
    x_attrs = tuple(x_attrs)
    y_attrs = tuple(y_attrs)
    if not y_attrs:
        raise SchemaError("degree requires at least one Y attribute")
    for attr in (*x_attrs, *y_attrs):
        if attr not in relation.schema:
            raise SchemaError(
                f"attribute {attr!r} not in relation {relation.name!r}"
            )
    if len(relation) == 0:
        return 0
    x_pos = relation.schema.positions(x_attrs)
    y_pos = relation.schema.positions(y_attrs)
    groups: dict[tuple, set[tuple]] = {}
    for t in relation:
        x_val = tuple(t[p] for p in x_pos)
        y_val = tuple(t[p] for p in y_pos)
        groups.setdefault(x_val, set()).add(y_val)
    return max(len(v) for v in groups.values())


def max_degree(relation: Relation, attribute: str) -> int:
    """Maximum number of tuples sharing a single value of ``attribute``.

    For an edge relation E(A, B) this is the maximum out-degree when
    ``attribute == "A"`` and the maximum in-degree when ``attribute == "B"``.
    """
    pos = relation.schema.position(attribute)
    counts: dict[object, int] = {}
    for t in relation:
        counts[t[pos]] = counts.get(t[pos], 0) + 1
    return max(counts.values()) if counts else 0


def is_functional_dependency(relation: Relation, x_attrs: Sequence[str],
                             y_attrs: Sequence[str]) -> bool:
    """True if the relation satisfies the FD ``A_X -> A_Y``.

    Equivalent to ``degree(relation, x_attrs, y_attrs) <= 1``.
    """
    if len(relation) == 0:
        return True
    return degree(relation, x_attrs, y_attrs) <= 1


@dataclass(frozen=True)
class RelationStatistics:
    """A summary of the statistics of one relation.

    Attributes
    ----------
    name:
        Relation name.
    cardinality:
        Number of tuples.
    attribute_cardinalities:
        Distinct count per attribute.
    degrees:
        Mapping ``(X, Y) -> deg(A_Y | A_X)`` over all single-attribute X and
        the remaining attributes Y (the statistics a simple catalog would
        maintain).
    """

    name: str
    cardinality: int
    attribute_cardinalities: dict[str, int]
    degrees: dict[tuple[tuple[str, ...], tuple[str, ...]], int]

    def degree_of(self, x_attrs: Sequence[str], y_attrs: Sequence[str]) -> int | None:
        """Look up a collected degree statistic, or None if absent."""
        return self.degrees.get((tuple(x_attrs), tuple(y_attrs)))


def relation_statistics(relation: Relation, max_key_size: int = 1) -> RelationStatistics:
    """Collect cardinality and degree statistics from a relation.

    Degrees are collected for every key set X of size at most ``max_key_size``
    (including the empty key) and, for each X, the Y set of all remaining
    attributes.  This mirrors what a practical catalog (or the "degree
    constraints" a query planner would know) looks like.
    """
    attrs = relation.attributes
    attribute_cardinalities = {a: len(relation.column(a)) for a in attrs}
    degrees: dict[tuple[tuple[str, ...], tuple[str, ...]], int] = {}
    degrees[((), attrs)] = len(relation)
    for size in range(1, min(max_key_size, len(attrs) - 1) + 1):
        for x in combinations(attrs, size):
            y = tuple(a for a in attrs if a not in x)
            if not y:
                continue
            degrees[(x, attrs)] = degree(relation, x, attrs)
            degrees[(x, y)] = degree(relation, x, y)
    return RelationStatistics(
        name=relation.name,
        cardinality=len(relation),
        attribute_cardinalities=attribute_cardinalities,
        degrees=degrees,
    )


def database_statistics(database: Database, max_key_size: int = 1
                        ) -> dict[str, RelationStatistics]:
    """Collect :func:`relation_statistics` for every relation in the catalog."""
    return {rel.name: relation_statistics(rel, max_key_size=max_key_size)
            for rel in database}


def size_bucket(n: int) -> int:
    """Bucket a cardinality by order of magnitude (``n.bit_length()``).

    Two relation sizes in the same power-of-two bucket are treated as
    equivalent by the plan cache: a plan chosen for one is reused for the
    other, so small inserts do not evict otherwise-identical plans while any
    order-of-magnitude shift forces a fresh optimization.
    """
    if n < 0:
        raise SchemaError(f"cardinality cannot be negative, got {n}")
    return int(n).bit_length()


def statistics_fingerprint(database: Database, relation_names: Sequence[str]
                           ) -> tuple[int, ...]:
    """A coarse statistics fingerprint: bucketed sizes of the named relations.

    The fingerprint is positional — callers pass relation names in a
    canonical atom order so that isomorphic queries over the same data
    produce identical fingerprints (and hence share plan-cache entries).
    """
    return tuple(size_bucket(len(database.get(name))) for name in relation_names)
