"""The :class:`Relation` class: a named set of tuples over a schema.

Relations follow set semantics (no duplicate tuples), as in the paper's
conjunctive-query setting.  A relation is immutable once constructed; all
operations return new relations.  Tuples are plain Python tuples whose i-th
component is the value of the i-th schema attribute.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.schema import Schema, as_schema

Tuple_ = tuple
Value = Any


class Relation:
    """An immutable relation: a schema plus a frozen set of tuples.

    Parameters
    ----------
    name:
        Relation name (used in query atoms and error messages).
    schema:
        A :class:`Schema` or sequence of attribute names.
    tuples:
        Iterable of tuples; each must have the same arity as the schema.
        Duplicates are silently removed (set semantics).

    Examples
    --------
    >>> R = Relation("R", ["A", "B"], [(1, 2), (1, 3), (2, 3)])
    >>> len(R)
    3
    >>> sorted(R.column("A"))
    [1, 2]
    """

    __slots__ = ("_name", "_schema", "_tuples")

    def __init__(
        self,
        name: str,
        schema: Schema | Sequence[str],
        tuples: Iterable[Sequence[Value]] = (),
    ):
        self._name = name
        self._schema = as_schema(schema)
        arity = self._schema.arity
        frozen = set()
        for t in tuples:
            tup = tuple(t)
            if len(tup) != arity:
                raise SchemaError(
                    f"tuple {tup!r} has arity {len(tup)}, expected {arity} "
                    f"for schema {self._schema.attributes}"
                )
            frozen.add(tup)
        self._tuples = frozenset(frozen)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The relation schema."""
        return self._schema

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names, in schema order."""
        return self._schema.attributes

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self._schema.arity

    @property
    def tuples(self) -> frozenset[Tuple_]:
        """The underlying frozen set of tuples."""
        return self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def __contains__(self, item: object) -> bool:
        return tuple(item) in self._tuples if isinstance(item, (tuple, list)) else False

    def __eq__(self, other: object) -> bool:
        """Two relations are equal if they have the same schema and tuples.

        The relation *name* does not participate in equality: it is metadata.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._schema, self._tuples))

    def __repr__(self) -> str:
        return (
            f"Relation({self._name!r}, {list(self._schema.attributes)!r}, "
            f"{len(self._tuples)} tuples)"
        )

    def is_empty(self) -> bool:
        """True when the relation has no tuples."""
        return not self._tuples

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, name: str, edges: Iterable[tuple[Value, Value]],
                   attributes: Sequence[str] = ("A", "B")) -> "Relation":
        """Build a binary relation from an iterable of (source, target) pairs."""
        return cls(name, attributes, edges)

    @classmethod
    def empty(cls, name: str, schema: Schema | Sequence[str]) -> "Relation":
        """Build an empty relation with the given schema."""
        return cls(name, schema, ())

    def with_name(self, name: str) -> "Relation":
        """Return the same relation under a different name."""
        new = Relation.__new__(Relation)
        new._name = name
        new._schema = self._schema
        new._tuples = self._tuples
        return new

    def with_tuples(self, tuples: Iterable[Sequence[Value]]) -> "Relation":
        """Return a relation with the same name and schema but new tuples."""
        return Relation(self._name, self._schema, tuples)

    # ------------------------------------------------------------------
    # Column / value access
    # ------------------------------------------------------------------
    def column(self, attribute: str) -> set[Value]:
        """The set of distinct values of ``attribute``."""
        pos = self._schema.position(attribute)
        return {t[pos] for t in self._tuples}

    def columns(self, attributes: Sequence[str]) -> set[Tuple_]:
        """The set of distinct value combinations of ``attributes``."""
        positions = self._schema.positions(attributes)
        return {tuple(t[p] for p in positions) for t in self._tuples}

    def active_domain(self) -> set[Value]:
        """All values appearing anywhere in the relation."""
        domain: set[Value] = set()
        for t in self._tuples:
            domain.update(t)
        return domain

    def tuple_as_dict(self, tup: Sequence[Value]) -> dict[str, Value]:
        """Convert a positional tuple into an attribute->value mapping."""
        return dict(zip(self._schema.attributes, tup))

    # ------------------------------------------------------------------
    # Core relational operations (also exposed functionally in operators.py)
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Project onto ``attributes`` (duplicates eliminated)."""
        positions = self._schema.positions(attributes)
        tuples = {tuple(t[p] for p in positions) for t in self._tuples}
        return Relation(name or self._name, attributes, tuples)

    def select(self, bindings: Mapping[str, Value], name: str | None = None) -> "Relation":
        """Select tuples whose values agree with ``bindings`` (attr -> value)."""
        items = [(self._schema.position(a), v) for a, v in bindings.items()]
        tuples = (
            t for t in self._tuples if all(t[p] == v for p, v in items)
        )
        return Relation(name or self._name, self._schema, tuples)

    def filter(self, predicate: Callable[[dict[str, Value]], bool],
               name: str | None = None) -> "Relation":
        """Select tuples for which ``predicate(attribute_dict)`` is true."""
        attrs = self._schema.attributes
        tuples = (
            t for t in self._tuples if predicate(dict(zip(attrs, t)))
        )
        return Relation(name or self._name, self._schema, tuples)

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename attributes according to ``mapping`` (old -> new)."""
        new_schema = self._schema.rename(dict(mapping))
        new = Relation.__new__(Relation)
        new._name = name or self._name
        new._schema = new_schema
        new._tuples = self._tuples
        return new

    def reorder(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Reorder columns so the schema becomes exactly ``attributes``.

        ``attributes`` must be a permutation of the current schema.
        """
        if set(attributes) != set(self._schema.attributes) or len(attributes) != self.arity:
            raise SchemaError(
                f"{attributes!r} is not a permutation of {self._schema.attributes!r}"
            )
        positions = self._schema.positions(attributes)
        tuples = {tuple(t[p] for p in positions) for t in self._tuples}
        return Relation(name or self._name, attributes, tuples)

    def distinct_values(self, attribute: str, where: Mapping[str, Value] | None = None
                        ) -> set[Value]:
        """Distinct values of ``attribute`` among tuples matching ``where``."""
        if not where:
            return self.column(attribute)
        pos = self._schema.position(attribute)
        items = [(self._schema.position(a), v) for a, v in where.items()]
        return {
            t[pos]
            for t in self._tuples
            if all(t[p] == v for p, v in items)
        }

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union; schemas must list the same attributes in the same order."""
        if self._schema != other._schema:
            raise SchemaError(
                f"union requires identical schemas, got {self._schema} and {other._schema}"
            )
        new = Relation.__new__(Relation)
        new._name = name or self._name
        new._schema = self._schema
        new._tuples = self._tuples | other._tuples
        return new

    def difference(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set difference; schemas must match."""
        if self._schema != other._schema:
            raise SchemaError(
                f"difference requires identical schemas, got {self._schema} and {other._schema}"
            )
        new = Relation.__new__(Relation)
        new._name = name or self._name
        new._schema = self._schema
        new._tuples = self._tuples - other._tuples
        return new

    def sorted_tuples(self) -> list[Tuple_]:
        """Tuples in lexicographic order (useful for deterministic output)."""
        return sorted(self._tuples)
