"""Relation schemas: ordered collections of uniquely named attributes.

Attributes are plain strings (e.g. ``"A"``, ``"B"``); a :class:`Schema` is an
ordered, duplicate-free tuple of attribute names.  Schemas are immutable and
hashable so they can be used as dictionary keys and set members.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError


class Schema:
    """An ordered, duplicate-free sequence of attribute names.

    Parameters
    ----------
    attributes:
        The attribute names in positional order.

    Raises
    ------
    SchemaError
        If the attribute list contains duplicates or non-string entries.
    """

    __slots__ = ("_attributes", "_positions")

    def __init__(self, attributes: Iterable[str]):
        attrs = tuple(attributes)
        for attr in attrs:
            if not isinstance(attr, str) or not attr:
                raise SchemaError(f"attribute names must be non-empty strings, got {attr!r}")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in schema: {attrs}")
        self._attributes = attrs
        self._positions = {attr: i for i, attr in enumerate(attrs)}

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names in positional order."""
        return self._attributes

    @property
    def arity(self) -> int:
        """Number of attributes in the schema."""
        return len(self._attributes)

    def position(self, attribute: str) -> int:
        """Return the position of ``attribute`` in the schema.

        Raises
        ------
        SchemaError
            If the attribute is not part of the schema.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self._attributes}"
            ) from None

    def positions(self, attributes: Sequence[str]) -> tuple[int, ...]:
        """Return positions of several attributes, in the order given."""
        return tuple(self.position(a) for a in attributes)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __getitem__(self, index: int) -> str:
        return self._attributes[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._attributes == other._attributes
        if isinstance(other, tuple):
            return self._attributes == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({list(self._attributes)!r})"

    # ------------------------------------------------------------------
    # Derived schemas
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``attributes`` (given order).

        All requested attributes must exist in this schema.
        """
        for attr in attributes:
            self.position(attr)
        return Schema(attributes)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with attributes renamed according to ``mapping``.

        Attributes not mentioned in the mapping keep their names.
        """
        return Schema(tuple(mapping.get(a, a) for a in self._attributes))

    def union(self, other: "Schema") -> "Schema":
        """Schema of the natural join: this schema's attributes followed by
        the attributes of ``other`` that are not already present."""
        extra = tuple(a for a in other.attributes if a not in self)
        return Schema(self._attributes + extra)

    def intersection(self, other: "Schema") -> tuple[str, ...]:
        """Attributes common to both schemas, in this schema's order."""
        return tuple(a for a in self._attributes if a in other)

    def is_prefix_of(self, other: "Schema") -> bool:
        """True if this schema is a positional prefix of ``other``."""
        return other.attributes[: len(self._attributes)] == self._attributes


def as_schema(value: "Schema | Sequence[str]") -> Schema:
    """Coerce a schema-like value (Schema or sequence of names) to a Schema."""
    if isinstance(value, Schema):
        return value
    return Schema(value)
